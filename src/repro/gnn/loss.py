"""Softmax cross-entropy loss with gradient."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .activations import softmax

__all__ = ["softmax_cross_entropy", "accuracy"]


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy over rows; returns ``(loss, d_logits)``."""
    if logits.ndim != 2:
        raise ValueError("logits must be (n, classes)")
    if labels.shape != (logits.shape[0],):
        raise ValueError("labels must be a vector matching logits rows")
    n = logits.shape[0]
    if n == 0:
        return 0.0, np.zeros_like(logits)
    probs = softmax(logits, axis=1)
    picked = probs[np.arange(n), labels]
    loss = float(-np.log(np.maximum(picked, 1e-12)).mean())
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax equals the label."""
    if logits.shape[0] == 0:
        return 0.0
    return float((logits.argmax(axis=1) == labels).mean())
