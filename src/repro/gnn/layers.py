"""GNN layers with explicit numpy forward and backward passes.

Implements the three architectures used in the paper's experiments:
GraphSAGE (mean aggregator), GCN, and GAT. Each layer owns its parameters
and gradients, caches what its backward pass needs, and message-passes over
a :class:`~repro.gnn.blocks.Block`.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterator, Tuple

import numpy as np

from .activations import leaky_relu, leaky_relu_grad
from .blocks import Block

__all__ = [
    "GraphLayer",
    "SageLayer",
    "GcnLayer",
    "GatLayer",
    "MultiHeadGatLayer",
]


def _glorot(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    scale = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-scale, scale, size=(fan_in, fan_out))


class GraphLayer(abc.ABC):
    """Base class: parameter store plus forward/backward contract."""

    def __init__(self, dim_in: int, dim_out: int) -> None:
        if dim_in <= 0 or dim_out <= 0:
            raise ValueError("dimensions must be positive")
        self.dim_in = dim_in
        self.dim_out = dim_out
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self._cache: dict = {}

    def add_param(self, name: str, value: np.ndarray) -> None:
        """Register a parameter and its zero-initialised gradient."""
        self.params[name] = value
        self.grads[name] = np.zeros_like(value)

    def zero_grad(self) -> None:
        """Reset all gradients to zero in place."""
        for grad in self.grads.values():
            grad.fill(0.0)

    def parameters(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(param, grad)`` pairs for the optimizer."""
        for name in self.params:
            yield self.params[name], self.grads[name]

    @property
    def num_params(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.params.values())

    @abc.abstractmethod
    def forward(self, block: Block, x_src: np.ndarray) -> np.ndarray:
        """Compute destination representations, caching for backward."""

    @abc.abstractmethod
    def backward(self, upstream: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads, return gradient w.r.t. ``x_src``."""


def _scatter_sum(
    values: np.ndarray, index: np.ndarray, num_segments: int
) -> np.ndarray:
    out = np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
    np.add.at(out, index, values)
    return out


class SageLayer(GraphLayer):
    """GraphSAGE with mean aggregation.

    ``h_v = x_v W_self + mean_{u in N(v)} x_u W_neigh + b``
    """

    def __init__(self, dim_in: int, dim_out: int, seed: int = 0) -> None:
        super().__init__(dim_in, dim_out)
        rng = np.random.default_rng(seed)
        self.add_param("w_self", _glorot(rng, dim_in, dim_out))
        self.add_param("w_neigh", _glorot(rng, dim_in, dim_out))
        self.add_param("bias", np.zeros(dim_out))

    def forward(self, block: Block, x_src: np.ndarray) -> np.ndarray:
        """Mean-aggregate neighbours, then linear + bias (GraphSAGE)."""
        x_dst = x_src[: block.num_dst]
        sums = _scatter_sum(
            x_src[block.edge_src], block.edge_dst, block.num_dst
        )
        degrees = np.maximum(block.in_degrees(), 1).astype(np.float64)
        mean = sums / degrees[:, None]
        out = (
            x_dst @ self.params["w_self"]
            + mean @ self.params["w_neigh"]
            + self.params["bias"]
        )
        self._cache = {
            "block": block,
            "x_src": x_src,
            "mean": mean,
            "degrees": degrees,
        }
        return out

    def backward(self, upstream: np.ndarray) -> np.ndarray:
        """Backpropagate through the SAGE layer; returns grad wrt ``x_src``."""
        block: Block = self._cache["block"]
        x_src = self._cache["x_src"]
        mean = self._cache["mean"]
        degrees = self._cache["degrees"]
        x_dst = x_src[: block.num_dst]

        self.grads["w_self"] += x_dst.T @ upstream
        self.grads["w_neigh"] += mean.T @ upstream
        self.grads["bias"] += upstream.sum(axis=0)

        dx_src = np.zeros_like(x_src)
        dx_src[: block.num_dst] += upstream @ self.params["w_self"].T
        d_mean = upstream @ self.params["w_neigh"].T
        d_sums = d_mean / degrees[:, None]
        np.add.at(dx_src, block.edge_src, d_sums[block.edge_dst])
        self._cache = {}
        return dx_src


class GcnLayer(GraphLayer):
    """GCN with self-loop mean normalisation.

    ``h_v = ((x_v + sum_{u in N(v)} x_u) / (deg(v) + 1)) W + b``
    """

    def __init__(self, dim_in: int, dim_out: int, seed: int = 0) -> None:
        super().__init__(dim_in, dim_out)
        rng = np.random.default_rng(seed)
        self.add_param("weight", _glorot(rng, dim_in, dim_out))
        self.add_param("bias", np.zeros(dim_out))

    def forward(self, block: Block, x_src: np.ndarray) -> np.ndarray:
        """Symmetric-normalised sum aggregation, then linear + bias (GCN)."""
        x_dst = x_src[: block.num_dst]
        sums = _scatter_sum(
            x_src[block.edge_src], block.edge_dst, block.num_dst
        )
        degrees = (block.in_degrees() + 1).astype(np.float64)
        normed = (sums + x_dst) / degrees[:, None]
        out = normed @ self.params["weight"] + self.params["bias"]
        self._cache = {
            "block": block,
            "x_src_shape": x_src.shape,
            "normed": normed,
            "degrees": degrees,
        }
        return out

    def backward(self, upstream: np.ndarray) -> np.ndarray:
        """Backpropagate through the GCN layer; returns grad wrt ``x_src``."""
        block: Block = self._cache["block"]
        normed = self._cache["normed"]
        degrees = self._cache["degrees"]

        self.grads["weight"] += normed.T @ upstream
        self.grads["bias"] += upstream.sum(axis=0)

        d_normed = upstream @ self.params["weight"].T
        d_pre = d_normed / degrees[:, None]
        dx_src = np.zeros(self._cache["x_src_shape"])
        dx_src[: block.num_dst] += d_pre
        np.add.at(dx_src, block.edge_src, d_pre[block.edge_dst])
        self._cache = {}
        return dx_src


class GatLayer(GraphLayer):
    """Single-head graph attention (GAT).

    ``e_uv = leakyrelu(a_src . z_u + a_dst . z_v)``,
    ``alpha = softmax_v(e)``, ``h_v = sum_u alpha_uv z_u + b`` with
    ``z = x W``. The per-edge attention math makes GAT noticeably more
    expensive than SAGE/GCN, which the paper's Figure 25 relies on.
    """

    negative_slope = 0.2

    def __init__(self, dim_in: int, dim_out: int, seed: int = 0) -> None:
        super().__init__(dim_in, dim_out)
        rng = np.random.default_rng(seed)
        self.add_param("weight", _glorot(rng, dim_in, dim_out))
        self.add_param("a_src", _glorot(rng, dim_out, 1)[:, 0])
        self.add_param("a_dst", _glorot(rng, dim_out, 1)[:, 0])
        self.add_param("bias", np.zeros(dim_out))

    def forward(self, block: Block, x_src: np.ndarray) -> np.ndarray:
        """Attention-weighted aggregation over the block's edges (GAT)."""
        z = x_src @ self.params["weight"]
        s_src = z @ self.params["a_src"]
        s_dst = z[: block.num_dst] @ self.params["a_dst"]
        pre = s_src[block.edge_src] + s_dst[block.edge_dst]
        act = leaky_relu(pre, self.negative_slope)
        # Segment softmax over incoming edges of each destination.
        seg_max = np.full(block.num_dst, -np.inf)
        np.maximum.at(seg_max, block.edge_dst, act)
        seg_max[np.isneginf(seg_max)] = 0.0
        exp = np.exp(act - seg_max[block.edge_dst])
        seg_sum = _scatter_sum(exp, block.edge_dst, block.num_dst)
        seg_sum = np.maximum(seg_sum, 1e-12)
        alpha = exp / seg_sum[block.edge_dst]
        out = _scatter_sum(
            alpha[:, None] * z[block.edge_src],
            block.edge_dst,
            block.num_dst,
        )
        out += self.params["bias"]
        self._cache = {
            "block": block,
            "x_src": x_src,
            "z": z,
            "alpha": alpha,
            "pre": pre,
        }
        return out

    def backward(self, upstream: np.ndarray) -> np.ndarray:
        """Backpropagate through the GAT layer; returns grad wrt ``x_src``."""
        block: Block = self._cache["block"]
        x_src = self._cache["x_src"]
        z = self._cache["z"]
        alpha = self._cache["alpha"]
        pre = self._cache["pre"]

        self.grads["bias"] += upstream.sum(axis=0)
        dz = np.zeros_like(z)
        # Through the aggregation: out_v = sum_e alpha_e z_src(e).
        d_edge = upstream[block.edge_dst]  # (E, d_out)
        d_alpha = (d_edge * z[block.edge_src]).sum(axis=1)
        np.add.at(dz, block.edge_src, alpha[:, None] * d_edge)
        # Segment softmax backward.
        weighted = alpha * d_alpha
        seg_weighted = _scatter_sum(weighted, block.edge_dst, block.num_dst)
        d_act = weighted - alpha * seg_weighted[block.edge_dst]
        d_pre = leaky_relu_grad(pre, d_act, self.negative_slope)
        # Through the attention scores.
        ds_src = _scatter_sum(d_pre, block.edge_src, block.num_src)
        ds_dst = _scatter_sum(d_pre, block.edge_dst, block.num_dst)
        self.grads["a_src"] += z.T @ ds_src
        self.grads["a_dst"] += z[: block.num_dst].T @ ds_dst
        dz += ds_src[:, None] * self.params["a_src"][None, :]
        dz[: block.num_dst] += ds_dst[:, None] * self.params["a_dst"][None, :]
        # Through the projection.
        self.grads["weight"] += x_src.T @ dz
        dx_src = dz @ self.params["weight"].T
        self._cache = {}
        return dx_src


class MultiHeadGatLayer(GraphLayer):
    """Multi-head GAT with head concatenation.

    ``num_heads`` independent single-head attention layers run over the
    same block; their outputs are concatenated, so ``dim_out`` must be a
    multiple of ``num_heads`` (each head produces ``dim_out/num_heads``).
    """

    def __init__(
        self, dim_in: int, dim_out: int, num_heads: int = 4, seed: int = 0
    ) -> None:
        super().__init__(dim_in, dim_out)
        if num_heads < 1:
            raise ValueError("need at least one head")
        if dim_out % num_heads != 0:
            raise ValueError("dim_out must be divisible by num_heads")
        self.num_heads = num_heads
        self.head_dim = dim_out // num_heads
        self.heads = [
            GatLayer(dim_in, self.head_dim, seed=seed + 101 * h)
            for h in range(num_heads)
        ]
        # Expose head parameters through the usual dict interface.
        for h, head in enumerate(self.heads):
            for name, value in head.params.items():
                self.params[f"h{h}_{name}"] = value
                self.grads[f"h{h}_{name}"] = head.grads[name]

    def forward(self, block: Block, x_src: np.ndarray) -> np.ndarray:
        """Run every head and concatenate their outputs feature-wise."""
        outputs = [head.forward(block, x_src) for head in self.heads]
        return np.concatenate(outputs, axis=1)

    def backward(self, upstream: np.ndarray) -> np.ndarray:
        """Backpropagate each head on its feature slice and sum the grads."""
        dx = None
        for h, head in enumerate(self.heads):
            chunk = upstream[:, h * self.head_dim : (h + 1) * self.head_dim]
            head_dx = head.backward(chunk)
            dx = head_dx if dx is None else dx + head_dx
        assert dx is not None
        return dx

    def zero_grad(self) -> None:
        """Reset the gradients of every head."""
        for head in self.heads:
            head.zero_grad()
