"""Multi-layer GNN models over message-flow blocks."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from .activations import relu, relu_grad
from .blocks import Block
from .layers import (
    GatLayer,
    GcnLayer,
    GraphLayer,
    MultiHeadGatLayer,
    SageLayer,
)

__all__ = ["GnnModel", "build_model", "ARCHITECTURES"]

ARCHITECTURES = ("sage", "gcn", "gat")

_LAYER_TYPES = {"sage": SageLayer, "gcn": GcnLayer, "gat": GatLayer}


class GnnModel:
    """A stack of graph layers with ReLU between (none after the last)."""

    def __init__(self, layers: Sequence[GraphLayer]) -> None:
        if not layers:
            raise ValueError("model needs at least one layer")
        self.layers: List[GraphLayer] = list(layers)
        self._pre_activations: List[np.ndarray] = []

    @property
    def num_layers(self) -> int:
        """Number of stacked graph layers."""
        return len(self.layers)

    @property
    def num_params(self) -> int:
        """Total scalar parameters across layers."""
        return sum(layer.num_params for layer in self.layers)

    def parameters(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(param, grad)`` pairs of every layer."""
        for layer in self.layers:
            yield from layer.parameters()

    def zero_grad(self) -> None:
        """Reset all layer gradients to zero."""
        for layer in self.layers:
            layer.zero_grad()

    def forward(
        self, blocks: Sequence[Block], features: np.ndarray
    ) -> np.ndarray:
        """Run all layers; ``blocks[i]`` feeds layer ``i``.

        For full-batch training pass the same whole-graph block for every
        layer; for mini-batch training pass the sampled blocks outermost
        first (layer 0 consumes the largest block).
        """
        if len(blocks) != self.num_layers:
            raise ValueError(
                f"need {self.num_layers} blocks, got {len(blocks)}"
            )
        self._pre_activations = []
        h = features
        for i, (layer, block) in enumerate(zip(self.layers, blocks)):
            if h.shape[0] != block.num_src:
                raise ValueError(
                    f"layer {i}: features cover {h.shape[0]} vertices "
                    f"but block has {block.num_src} sources"
                )
            h = layer.forward(block, h)
            if i < self.num_layers - 1:
                self._pre_activations.append(h)
                h = relu(h)
        return h

    def backward(self, d_logits: np.ndarray) -> np.ndarray:
        """Backprop through the stack; returns grad w.r.t. input features."""
        upstream = d_logits
        for i in reversed(range(self.num_layers)):
            if i < self.num_layers - 1:
                upstream = relu_grad(self._pre_activations[i], upstream)
            upstream = self.layers[i].backward(upstream)
        self._pre_activations = []
        return upstream

    def state_copy(self) -> List[np.ndarray]:
        """Snapshot of all parameter arrays (for sync verification)."""
        return [p.copy() for layer in self.layers for p in layer.params.values()]


def build_model(
    arch: str,
    feature_size: int,
    hidden_dim: int,
    num_classes: int,
    num_layers: int,
    seed: int = 0,
    num_heads: int = 1,
) -> GnnModel:
    """Construct a model matching the paper's sweep dimensions.

    ``arch`` is one of ``sage``, ``gcn``, ``gat``; layer ``i`` maps
    ``feature_size -> hidden -> ... -> hidden -> num_classes``.
    ``num_heads > 1`` applies only to GAT and uses multi-head attention
    on the hidden layers (the output layer stays single-head, as usual).
    """
    arch = arch.lower()
    if arch not in _LAYER_TYPES:
        raise ValueError(f"unknown architecture {arch!r}; use {ARCHITECTURES}")
    if num_layers < 1:
        raise ValueError("num_layers must be at least 1")
    if num_heads > 1 and arch != "gat":
        raise ValueError("num_heads applies to the gat architecture only")
    layer_type = _LAYER_TYPES[arch]
    dims = (
        [feature_size]
        + [hidden_dim] * (num_layers - 1)
        + [num_classes]
    )
    layers: List[GraphLayer] = []
    for i in range(num_layers):
        hidden_layer = i < num_layers - 1
        if arch == "gat" and num_heads > 1 and hidden_layer:
            layers.append(
                MultiHeadGatLayer(
                    dims[i], dims[i + 1], num_heads=num_heads,
                    seed=seed + i,
                )
            )
        else:
            layers.append(layer_type(dims[i], dims[i + 1], seed=seed + i))
    return GnnModel(layers)
