"""Neighbourhood sampling for mini-batch GNN training.

Implements DGL-style fan-out sampling: starting from the mini-batch seeds,
each GNN layer samples up to ``fanout`` neighbours of the current frontier,
producing one :class:`~repro.gnn.blocks.Block` per layer. The paper's
fan-out configuration (Section 5.1) is exposed via
:func:`default_fanouts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..graph import Graph
from .blocks import Block

__all__ = ["MiniBatch", "sample_blocks", "default_fanouts"]

_PAPER_FANOUTS = {
    2: (25, 20),
    3: (15, 10, 5),
    4: (10, 10, 5, 5),
}


def default_fanouts(num_layers: int) -> Tuple[int, ...]:
    """The paper's neighbourhood-sampling fan-outs per number of layers."""
    if num_layers not in _PAPER_FANOUTS:
        raise ValueError(
            f"paper defines fanouts for 2-4 layers, not {num_layers}"
        )
    return _PAPER_FANOUTS[num_layers]


@dataclass(frozen=True)
class MiniBatch:
    """A sampled computation graph for one training step of one worker."""

    seeds: np.ndarray
    blocks: List[Block]  # blocks[0] feeds GNN layer 0 (outermost)

    @property
    def input_ids(self) -> np.ndarray:
        """Global ids whose features must be available (block 0 sources)."""
        return self.blocks[0].src_ids

    @property
    def num_input_vertices(self) -> int:
        """Input vertices required by the outermost block."""
        return int(self.blocks[0].num_src)

    def edges_per_layer(self) -> List[int]:
        """Edges per block, outermost layer first."""
        return [block.num_edges for block in self.blocks]

    @property
    def total_edges(self) -> int:
        """Total edges across all blocks of the mini-batch."""
        return sum(self.edges_per_layer())


def sample_blocks(
    graph: Graph,
    seeds: np.ndarray,
    fanouts: Sequence[int],
    rng: np.random.Generator,
) -> MiniBatch:
    """Sample a multi-layer computation graph from ``seeds``.

    ``fanouts[i]`` is the fan-out of GNN layer ``i``; sampling proceeds
    from the seeds inward (last layer first), as in DGL. Vertices with
    degree below the fan-out keep all their neighbours; higher-degree
    vertices draw ``fanout`` samples with replacement, deduplicated per
    (source, destination) pair — statistically close to DGL's
    without-replacement sampling and fully vectorisable.
    """
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    if seeds.size == 0:
        raise ValueError("cannot sample an empty mini-batch")
    indptr, indices = graph.symmetric_csr()
    blocks_reversed: List[Block] = []
    frontier = seeds
    num_vertices = indptr.shape[0] - 1
    local_of = np.full(num_vertices, -1, dtype=np.int64)
    for fanout in reversed(list(fanouts)):
        if fanout <= 0:
            raise ValueError("fanouts must be positive")
        edge_src_global, edge_dst_local = _sample_layer(
            frontier, indptr, indices, fanout, rng
        )
        # Sources: frontier first (prefix convention), then new vertices.
        local_of[frontier] = np.arange(frontier.shape[0])
        new_mask = local_of[edge_src_global] < 0
        extra = np.unique(edge_src_global[new_mask])
        local_of[extra] = frontier.shape[0] + np.arange(extra.shape[0])
        edge_src_local = local_of[edge_src_global]
        src_ids = np.concatenate([frontier, extra])
        local_of[src_ids] = -1  # reset for the next layer / call
        blocks_reversed.append(
            Block(
                src_ids=src_ids,
                num_dst=frontier.shape[0],
                edge_src=edge_src_local,
                edge_dst=edge_dst_local,
            )
        )
        frontier = src_ids
    return MiniBatch(seeds=seeds, blocks=list(reversed(blocks_reversed)))


def _sample_layer(
    frontier: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample up to ``fanout`` neighbours per frontier vertex.

    Returns global source ids and local (frontier-index) destinations.
    """
    degrees = indptr[frontier + 1] - indptr[frontier]
    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    # Low-degree vertices keep everything - fully vectorised.
    small = degrees <= fanout
    if small.any():
        small_idx = np.flatnonzero(small)
        take = degrees[small_idx]
        starts = indptr[frontier[small_idx]]
        # Expand the per-vertex CSR ranges in one batch: repeat each
        # start `take` times and add the within-range offset
        # (a global arange minus each range's cumulative start).
        total = int(take.sum())
        within = np.arange(total) - np.repeat(np.cumsum(take) - take, take)
        offsets = np.repeat(starts, take) + within
        src_parts.append(indices[offsets])
        dst_parts.append(np.repeat(small_idx, take))
    # High-degree vertices: `fanout` draws with replacement, deduplicated
    # per (dst, src) pair - vectorised across the whole frontier.
    big_idx = np.flatnonzero(~small)
    if big_idx.size:
        draws = rng.integers(
            0, degrees[big_idx][:, None], size=(big_idx.size, fanout)
        )
        sampled = indices[indptr[frontier[big_idx]][:, None] + draws]
        dst = np.repeat(big_idx, fanout)
        src = sampled.ravel()
        # Injective (dst, src) key: src < |V|, so |V| as multiplier
        # suffices — no O(E) indices.max() scan, and no overflow risk
        # from a needlessly larger base.
        num_vertices = indptr.shape[0] - 1
        pair = dst * num_vertices + src
        _, keep = np.unique(pair, return_index=True)
        src_parts.append(src[keep])
        dst_parts.append(dst[keep])
    if src_parts:
        return (
            np.concatenate(src_parts).astype(np.int64),
            np.concatenate(dst_parts).astype(np.int64),
        )
    return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
