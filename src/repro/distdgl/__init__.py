"""DistDGL-style mini-batch distributed training over vertex partitions."""

from .engine import DistDglEngine, EpochReport, StepBreakdown
from .inference import DistributedInference, InferenceReport
from .minibatch import DistributedMiniBatchTrainer

__all__ = [
    "DistDglEngine",
    "EpochReport",
    "StepBreakdown",
    "DistributedMiniBatchTrainer",
    "DistributedInference",
    "InferenceReport",
]
