"""DistDGL-style mini-batch distributed training engine.

Models the system the paper pairs with *vertex partitioning* (edge-cut):
every machine owns one vertex partition (graph structure + features of its
vertices) and one worker. Each training step, every worker

1. draws ``GBS / |W|`` seeds from *its own* partition's training vertices,
2. samples the k-hop computation graph (remote frontier vertices require a
   neighbour lookup on their owner — the sampling RPCs),
3. fetches features of remote input vertices (the feature-loading phase),
4. runs forward and backward over the sampled blocks, and
5. all-reduces gradients and updates the model.

The engine *executes* the sampling on the real graph — mini-batch overlap,
remote-vertex counts and input-vertex balance are measured, not modelled —
and converts the measured counts into phase seconds with the cost model.
Per step and phase, the slowest worker (straggler) sets the barrier time,
exactly the paper's Section 5.3 methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Dict, List, Optional, Sequence, Set

import numpy as np

from ..cluster import Cluster, FaultPlan, FaultSummary, RecoveryPolicy
from ..comm import CommSummary, make_codec
from ..costmodel import (
    BACKWARD_FACTOR,
    DEFAULT_COST_MODEL,
    CostModel,
    aggregation_bytes,
    gat_layer_flops,
    gcn_layer_flops,
    sage_layer_flops,
)
from ..gnn import default_fanouts, sample_blocks
from ..graph import VertexSplit
from ..obs import api as obs
from ..obs.profiling import capture as profiling
from ..partitioning import VertexPartition

__all__ = ["DistDglEngine", "StepBreakdown", "EpochReport"]

PHASES = ("sample", "fetch", "forward", "backward", "update")


@dataclass(frozen=True)
class StepBreakdown:
    """Straggler seconds per phase plus the step's measured counts."""

    sample_seconds: float
    fetch_seconds: float
    forward_seconds: float
    backward_seconds: float
    update_seconds: float
    network_bytes: float
    local_input_vertices: int
    remote_input_vertices: int
    input_vertex_balance: float
    per_worker_seconds: np.ndarray
    cache_hits: int = 0

    @property
    def step_seconds(self) -> float:
        """Simulated duration of this step (sum of its five phases)."""
        return (
            self.sample_seconds
            + self.fetch_seconds
            + self.forward_seconds
            + self.backward_seconds
            + self.update_seconds
        )


@dataclass
class EpochReport:
    """Aggregated phase times and counts over one epoch's steps."""

    steps: List[StepBreakdown] = field(default_factory=list)

    @property
    def epoch_seconds(self) -> float:
        """Total simulated epoch time, summed over steps."""
        return sum(s.step_seconds for s in self.steps)

    @property
    def network_bytes(self) -> float:
        """Bytes moved over the network during the epoch."""
        return sum(s.network_bytes for s in self.steps)

    @property
    def remote_input_vertices(self) -> int:
        """Input vertices fetched from remote machines during the epoch."""
        return sum(s.remote_input_vertices for s in self.steps)

    @property
    def cache_hits(self) -> int:
        """Remote fetches that were served by the feature cache instead."""
        return sum(s.cache_hits for s in self.steps)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of would-be remote fetches served by the cache."""
        would_be_remote = self.remote_input_vertices + self.cache_hits
        if would_be_remote == 0:
            return 0.0
        return self.cache_hits / would_be_remote

    @property
    def local_input_vertices(self) -> int:
        """Input vertices already resident on their sampling machine."""
        return sum(s.local_input_vertices for s in self.steps)

    def phase_seconds(self) -> Dict[str, float]:
        """Per-phase simulated seconds summed over the epoch's steps."""
        return {
            "sample": sum(s.sample_seconds for s in self.steps),
            "fetch": sum(s.fetch_seconds for s in self.steps),
            "forward": sum(s.forward_seconds for s in self.steps),
            "backward": sum(s.backward_seconds for s in self.steps),
            "update": sum(s.update_seconds for s in self.steps),
        }

    @property
    def mean_input_vertex_balance(self) -> float:
        """Mean per-step balance (max/mean) of input vertices across workers."""
        if not self.steps:
            return 1.0
        return float(
            np.mean([s.input_vertex_balance for s in self.steps])
        )

    def training_time_balance(self) -> float:
        """max/mean of summed per-worker busy seconds (paper Figure 17)."""
        total = sum(s.per_worker_seconds for s in self.steps)
        mean = total.mean()
        return float(total.max() / mean) if mean > 0 else 1.0


class DistDglEngine:
    """Mini-batch distributed training over a vertex partition."""

    def __init__(
        self,
        partition: VertexPartition,
        split: VertexSplit,
        arch: str = "sage",
        feature_size: int = 64,
        hidden_dim: int = 64,
        num_layers: int = 3,
        num_classes: int = 10,
        global_batch_size: int = 128,
        fanouts: Optional[Sequence[int]] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        seed: int = 0,
        cache_fraction: float = 0.0,
        compression: str = "none",
    ) -> None:
        """``cache_fraction`` > 0 enables a PaGraph-style static feature
        cache: every worker keeps the features of the highest-degree
        vertices it does not own (that fraction of |V|) in local memory,
        so fetching them costs nothing. An extension beyond the paper's
        DistDGL, used by the cache ablation benchmark.

        ``compression`` names a :mod:`repro.comm` codec applied to the
        remote feature fetches: wire bytes shrink by the codec ratio
        and every fetch pays the codec's encode+decode time on the raw
        payload. The default null codec executes the exact baseline
        code path bit for bit.
        """
        if feature_size <= 0 or hidden_dim <= 0 or num_layers <= 0:
            raise ValueError("model dimensions must be positive")
        if global_batch_size <= 0:
            raise ValueError("global_batch_size must be positive")
        arch = arch.lower()
        if arch not in ("sage", "gcn", "gat"):
            raise ValueError(f"unknown architecture {arch!r}")
        self.partition = partition
        self.graph = partition.graph
        self.split = split
        self.arch = arch
        self.feature_size = feature_size
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.num_classes = num_classes
        self.global_batch_size = global_batch_size
        self.fanouts = (
            tuple(fanouts) if fanouts is not None
            else default_fanouts(num_layers)
        )
        if len(self.fanouts) != num_layers:
            raise ValueError("need one fanout per layer")
        self.cost_model = cost_model
        self.num_machines = partition.num_partitions
        self._rng = np.random.default_rng(seed)

        self.dims = (
            [feature_size] + [hidden_dim] * (num_layers - 1) + [num_classes]
        )
        self.num_params = self._count_params()
        self.owner = partition.assignment
        # Each worker samples seeds from its own partition's train vertices.
        self.train_per_worker: List[np.ndarray] = [
            self.split.train[self.owner[self.split.train] == w]
            for w in range(self.num_machines)
        ]
        if not 0.0 <= cache_fraction < 1.0:
            raise ValueError("cache_fraction must be in [0, 1)")
        self.cache_fraction = cache_fraction
        self._cached = self._build_feature_cache()
        self._codec = make_codec(compression)
        #: Comm-reduction accounting (raw vs wire fetch bytes, codec
        #: time, cache hits) accumulated over every simulated step.
        self.comm = CommSummary(
            codec_error=(
                0.0 if self._codec.is_null()
                else self._codec.error_per_value
            )
        )
        self._comm_remote_inputs = 0
        self.cluster = Cluster(self.num_machines, cost_model)
        #: Counters of the last faulty run (all zero when none was run).
        self.fault_summary = FaultSummary()
        #: Workers that crashed and have not been restarted yet; they
        #: rejoin (and pay a partition reload) at the next epoch boundary.
        self._dead_workers: Set[int] = set()
        self._account_memory()

    # ------------------------------------------------------------------
    def _count_params(self) -> int:
        per_layer = []
        for i in range(self.num_layers):
            d_in, d_out = self.dims[i], self.dims[i + 1]
            if self.arch == "sage":
                per_layer.append(2 * d_in * d_out + d_out)
            elif self.arch == "gcn":
                per_layer.append(d_in * d_out + d_out)
            else:  # gat
                per_layer.append(d_in * d_out + 3 * d_out)
        return sum(per_layer)

    def _build_feature_cache(self) -> Optional[np.ndarray]:
        """Boolean ``(n,)`` mask of globally cached high-degree vertices.

        Static degree-based caching (as in PaGraph): the hottest vertices
        in sampled neighbourhoods are the high-degree ones, so every
        worker pins the top ``cache_fraction`` of vertices by degree.
        The mask is global; per worker, hits are cached vertices it does
        not own.
        """
        if self.cache_fraction <= 0.0:
            return None
        budget = int(self.cache_fraction * self.graph.num_vertices)
        if budget == 0:
            return None
        degrees = self.graph.degrees()
        hottest = np.argsort(-degrees, kind="stable")[:budget]
        mask = np.zeros(self.graph.num_vertices, dtype=bool)
        mask[hottest] = True
        return mask

    def _account_memory(self) -> None:
        cm = self.cost_model
        edges = self.graph.undirected_edges()
        # DistDGL stores each edge on the owner(s) of its endpoints (inner
        # edges once, halo edges on both sides).
        owners_u = self.owner[edges[:, 0]]
        owners_v = self.owner[edges[:, 1]]
        self._local_edges_per_worker = np.zeros(
            self.num_machines, dtype=np.int64
        )
        self._owned_per_worker = np.zeros(self.num_machines, dtype=np.int64)
        for w in range(self.num_machines):
            local_edges = int(((owners_u == w) | (owners_v == w)).sum())
            owned = int((self.owner == w).sum())
            self._local_edges_per_worker[w] = local_edges
            self._owned_per_worker[w] = owned
            self.cluster.allocate(
                w, "structure", (2 * local_edges + owned) * cm.index_bytes
            )
            self.cluster.allocate(
                w, "features", cm.feature_bytes(owned, self.feature_size)
            )
            if self._cached is not None:
                self.cluster.allocate(
                    w,
                    "feature-cache",
                    cm.feature_bytes(
                        int(self._cached.sum()), self.feature_size
                    ),
                )
            # Model/optimizer state is partitioner-independent and (at the
            # paper's graph scale) negligible - excluded from the ledger,
            # as in the DistGNN engine.

    def memory_per_machine(self) -> np.ndarray:
        """Per-machine peak memory of the underlying cluster."""
        return self.cluster.memory_per_machine()

    # ------------------------------------------------------------------
    # Per-layer cost primitives
    # ------------------------------------------------------------------
    def _layer_flops(
        self, num_dst: int, num_src: int, num_edges: int, layer: int
    ) -> float:
        d_in, d_out = self.dims[layer], self.dims[layer + 1]
        if self.arch == "sage":
            return sage_layer_flops(num_dst, num_edges, d_in, d_out)
        if self.arch == "gcn":
            return gcn_layer_flops(num_dst, num_edges, d_in, d_out)
        return gat_layer_flops(num_dst, num_src, num_edges, d_in, d_out)

    # ------------------------------------------------------------------
    # Step execution
    # ------------------------------------------------------------------
    def run_step(
        self,
        active: Optional[Collection[int]] = None,
        slow_factors: Optional[np.ndarray] = None,
        lost_workers: Collection[int] = (),
        retransmit_timeout: float = 0.0,
    ) -> StepBreakdown:
        """Execute one global training step across all workers.

        ``active`` restricts the step to the surviving workers (graceful
        degradation after a crash): the global batch is redistributed
        over them and dead workers contribute no time. ``slow_factors``
        stretches per-worker compute phases (injected stragglers).
        ``lost_workers`` lose one feature-fetch RPC each this step and
        pay ``retransmit_timeout`` plus a refetch.
        """
        cm = self.cost_model
        k = self.num_machines
        active_set = set(range(k)) if active is None else set(active)
        if not active_set:
            raise ValueError("need at least one active worker")
        stretch = (
            np.ones(k) if slow_factors is None
            else np.asarray(slow_factors, dtype=np.float64)
        )
        per_worker = {phase: np.zeros(k) for phase in PHASES}
        fetch_bytes_per_worker = np.zeros(k)
        raw_fetch_per_worker = np.zeros(k)
        input_counts = np.zeros(k)
        local_inputs = remote_inputs = cache_hits = 0
        sampled_edges = 0
        step_bytes = 0.0
        # src x dst byte attribution for this step (owners -> worker for
        # sampling/fetching, ring for the all-reduce). Bookkeeping only;
        # phase timing stays a function of the per-worker scalars above.
        sample_matrix = np.zeros((k, k), dtype=np.float64)
        fetch_matrix = np.zeros((k, k), dtype=np.float64)
        batch_per_worker = max(
            self.global_batch_size // len(active_set), 1
        )

        for w in range(k):
            if w not in active_set:
                continue  # crashed worker: survivors carry the step
            pool = self.train_per_worker[w]
            if pool.size == 0:
                continue  # worker idles this step (train imbalance!)
            take = min(batch_per_worker, pool.size)
            seeds = self._rng.choice(pool, size=take, replace=False)
            batch = sample_blocks(self.graph, seeds, self.fanouts, self._rng)

            # ---- sampling phase -------------------------------------
            sample_sec = 0.0
            remote_frontier = 0
            edge_list_bytes = self.fanouts[0] * 2 * cm.index_bytes
            for block in batch.blocks:
                dst_owned = self.owner[block.src_ids[: block.num_dst]]
                remote = int((dst_owned != w).sum())
                remote_frontier += remote
                sampled_edges += int(block.num_edges)
                sample_sec += (
                    block.num_edges * cm.sample_seconds_per_edge
                    + remote * cm.remote_sample_overhead
                )
                # Remote frontiers ship their sampled edge lists back,
                # each remote vertex's owner -> this worker.
                step_bytes += remote * edge_list_bytes
                sample_matrix[:, w] += (
                    np.bincount(dst_owned[dst_owned != w], minlength=k)
                    * edge_list_bytes
                )
            per_worker["sample"][w] = sample_sec * stretch[w]

            # ---- feature fetching phase -----------------------------
            inputs = batch.input_ids
            owners = self.owner[inputs]
            remote_mask = owners != w
            if self._cached is not None:
                hits = remote_mask & self._cached[inputs]
                n_hits = int(hits.sum())
                cache_hits += n_hits
                remote_mask = remote_mask & ~self._cached[inputs]
                if n_hits:
                    # A cache hit is a remote fetch the wire never
                    # carries: its raw bytes count as saved.
                    self.comm.raw_bytes += cm.feature_bytes(
                        n_hits, self.feature_size
                    )
            n_remote = int(remote_mask.sum())
            n_local = int(inputs.shape[0] - n_remote)
            local_inputs += n_local
            remote_inputs += n_remote
            input_counts[w] = inputs.shape[0]
            raw_fetch = cm.feature_bytes(n_remote, self.feature_size)
            raw_fetch_per_worker[w] = raw_fetch
            owner_bytes = cm.feature_bytes(
                np.bincount(owners[remote_mask], minlength=k),
                self.feature_size,
            )
            # One RPC per peer that actually owns remote inputs: a good
            # partition talks to few peers, not to all k-1 of them.
            peers = int(np.unique(owners[remote_mask]).size)
            if self._codec.is_null():
                fetch_bytes = raw_fetch
                fetch_matrix[:, w] += owner_bytes
                per_worker["fetch"][w] = cm.transfer_seconds(
                    fetch_bytes, num_messages=max(peers, 1)
                ) + cm.memory_seconds(
                    cm.feature_bytes(n_local, self.feature_size)
                )
            else:
                # Compressed fetch: the wire carries codec-ratio bytes;
                # the owners encode and this worker decodes, both
                # charged on the raw payload.
                fetch_bytes = self._codec.wire_bytes(raw_fetch)
                fetch_matrix[:, w] += self._codec.wire_bytes(owner_bytes)
                codec_seconds = self._codec.codec_seconds(raw_fetch, cm)
                self.comm.codec_seconds += codec_seconds
                per_worker["fetch"][w] = cm.transfer_seconds(
                    fetch_bytes, num_messages=max(peers, 1)
                ) + cm.memory_seconds(
                    cm.feature_bytes(n_local, self.feature_size)
                ) + codec_seconds
            fetch_bytes_per_worker[w] = fetch_bytes
            step_bytes += fetch_bytes
            self.comm.raw_bytes += raw_fetch
            self.comm.wire_bytes += fetch_bytes

            # ---- compute phases -------------------------------------
            fwd = 0.0
            for layer, block in enumerate(batch.blocks):
                fwd += cm.compute_seconds(
                    self._layer_flops(
                        block.num_dst, block.num_src, block.num_edges, layer
                    )
                )
                fwd += cm.memory_seconds(
                    aggregation_bytes(
                        block.num_edges, self.dims[layer], cm.float_bytes
                    )
                )
            per_worker["forward"][w] = fwd * stretch[w]
            per_worker["backward"][w] = BACKWARD_FACTOR * fwd * stretch[w]

        # Injected lost messages: the affected worker's fetch RPC times
        # out and is refetched in full.
        for w in lost_workers:
            if w not in active_set:
                continue
            self.cluster.fabric.record_lost_message(w)
            per_worker["fetch"][w] += (
                retransmit_timeout
                + cm.transfer_seconds(fetch_bytes_per_worker[w])
            )
            step_bytes += fetch_bytes_per_worker[w]
            # The full fetch is re-sent by the same owners; the dropped
            # copy itself is a pure count on the fabric, no bytes. The
            # resend ships the already-encoded payload, so no fresh
            # codec time is charged.
            self.comm.raw_bytes += raw_fetch_per_worker[w]
            self.comm.wire_bytes += fetch_bytes_per_worker[w]
            fetch_matrix[:, w] *= 2.0

        # Gradient all-reduce is part of the backward phase, as in the
        # paper's measurement methodology (Section 5.3).
        grad_bytes = self.num_params * cm.float_bytes
        allreduce = cm.allreduce_seconds(grad_bytes, len(active_set))
        active_index = sorted(active_set)
        per_worker["backward"][active_index] += allreduce
        step_bytes += 2 * grad_bytes * max(len(active_set) - 1, 0)
        per_worker["update"][active_index] = (
            cm.compute_seconds(6.0 * self.num_params)
            * stretch[active_index]
        )

        # Ring all-reduce over the surviving workers.
        allreduce_matrix = np.zeros((k, k), dtype=np.float64)
        num_active = len(active_index)
        if num_active > 1:
            per_link = 2.0 * grad_bytes * (num_active - 1) / num_active
            for i, src in enumerate(active_index):
                allreduce_matrix[
                    src, active_index[(i + 1) % num_active]
                ] = per_link

        total_per_worker = sum(per_worker[phase] for phase in PHASES)
        for phase in PHASES:
            self.cluster.add_phase(phase, per_worker[phase])
        for phase, matrix in (
            ("sample", sample_matrix),
            ("fetch", fetch_matrix),
            ("backward", allreduce_matrix),  # all-reduce rides backward
        ):
            if matrix.any():
                self.cluster.record_traffic(
                    phase,
                    matrix.sum(axis=1),
                    matrix.sum(axis=0),
                    matrix=matrix,
                )
        self.comm.cache_hits += cache_hits
        self._comm_remote_inputs += remote_inputs
        active = input_counts[input_counts > 0]
        balance = (
            float(active.max() / active.mean()) if active.size else 1.0
        )
        if obs.enabled():
            obs.count("distdgl.steps")
            obs.observe(
                "distdgl.step_seconds",
                float(sum(per_worker[p].max() for p in PHASES)),
            )
            obs.count("distdgl.network_bytes", step_bytes)
            obs.count("distdgl.sampled_edges", sampled_edges)
            obs.count("distdgl.local_input_vertices", local_inputs)
            obs.count("distdgl.remote_input_vertices", remote_inputs)
            obs.count("distdgl.cache_hits", cache_hits)
            if len(active_set) < k:
                obs.count("distdgl.degraded_steps")
        return StepBreakdown(
            sample_seconds=float(per_worker["sample"].max()),
            fetch_seconds=float(per_worker["fetch"].max()),
            forward_seconds=float(per_worker["forward"].max()),
            backward_seconds=float(per_worker["backward"].max()),
            update_seconds=float(per_worker["update"].max()),
            network_bytes=step_bytes,
            local_input_vertices=local_inputs,
            remote_input_vertices=remote_inputs,
            input_vertex_balance=balance,
            per_worker_seconds=total_per_worker,
            cache_hits=cache_hits,
        )

    def _steps_per_epoch(self) -> int:
        num_train = self.split.train.shape[0]
        return max(int(np.ceil(num_train / self.global_batch_size)), 1)

    def _restart_dead_workers(self) -> None:
        """Dead trainers rejoin at the epoch boundary (DistDGL-style
        restartable trainers): each reloads its partition's structure and
        features, so restarting the owner of a skewed partition is the
        straggler of the restart phase."""
        cm = self.cost_model
        k = self.num_machines
        restart = np.zeros(k)
        for w in sorted(self._dead_workers):
            reload_bytes = (
                2 * self._local_edges_per_worker[w] * cm.index_bytes
                + cm.feature_bytes(
                    int(self._owned_per_worker[w]), self.feature_size
                )
            )
            restart[w] = cm.transfer_seconds(float(reload_bytes))
            self.cluster.machines[w].record_restart()
            self.cluster.timeline.add_mark(
                f"restart:worker-{w}", "recovery", w
            )
        self.cluster.add_phase("fault-restart", restart)
        self._dead_workers.clear()

    def run_epoch(
        self,
        fault_plan: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        epoch_index: int = 0,
    ) -> EpochReport:
        """One epoch = enough steps to touch every training vertex once.

        With a ``fault_plan``, crashes at their step trigger retry with
        exponential backoff and then graceful degradation to the
        surviving workers; slowdowns stretch the affected worker's
        compute for the whole epoch; lost messages charge a fetch
        retransmit. Dead workers restart at the next epoch boundary.
        """
        steps = self._steps_per_epoch()
        report = EpochReport()
        self.comm.total_epochs += 1
        if fault_plan is None and recovery is None:
            for _ in range(steps):
                report.steps.append(self.run_step())
            return report
        if fault_plan is None:
            fault_plan = FaultPlan()
        if recovery is None:
            recovery = RecoveryPolicy()
        k = self.num_machines
        if self._dead_workers:
            self._restart_dead_workers()
        active = set(range(k))
        crash_by_step: Dict[int, list] = {}
        loss_by_step: Dict[int, list] = {}
        for event in fault_plan.crashes_at(epoch_index):
            crash_by_step.setdefault(event.step % steps, []).append(event)
        for event in fault_plan.losses_at(epoch_index):
            loss_by_step.setdefault(event.step % steps, []).append(event)
        stretch = np.ones(k)
        for event in fault_plan.slowdowns_at(epoch_index):
            machine = event.machine % k
            stretch[machine] *= event.magnitude
            self.cluster.timeline.add_mark(
                f"slowdown:worker-{machine}", "fault", machine
            )
            self.fault_summary.slowdowns += 1
            obs.count("distdgl.fault_events", kind="slowdown")
        for step in range(steps):
            for event in crash_by_step.get(step, ()):
                machine = event.machine % k
                if machine not in active or len(active) <= 1:
                    # Never kill the last survivor: a cluster-wide outage
                    # has no recovery path inside one training run.
                    continue
                active.discard(machine)
                self._dead_workers.add(machine)
                self.fault_summary.crashes += 1
                obs.count("distdgl.fault_events", kind="crash")
                self.cluster.machines[machine].record_crash()
                self.cluster.timeline.add_mark(
                    f"crash:worker-{machine}", "fault", machine
                )
                self.cluster.add_phase(
                    "fault-detect",
                    np.full(k, recovery.detection_timeout_seconds),
                    interrupted=True,
                )
                backoff = recovery.backoff_seconds()
                if backoff > 0:
                    self.cluster.add_phase(
                        "fault-backoff", np.full(k, backoff)
                    )
                self.fault_summary.retries += recovery.max_retries
            lost = {
                event.machine % k
                for event in loss_by_step.get(step, ())
                if event.machine % k in active
            }
            self.fault_summary.lost_messages += len(lost)
            obs.count(
                "distdgl.fault_events", len(lost), kind="lost-message"
            )
            for machine in sorted(lost):
                self.cluster.timeline.add_mark(
                    f"lost-message:worker-{machine}", "fault", machine
                )
            if len(active) < k:
                self.fault_summary.degraded_steps += 1
            report.steps.append(
                self.run_step(
                    active=active,
                    slow_factors=stretch,
                    lost_workers=lost,
                    retransmit_timeout=recovery.detection_timeout_seconds,
                )
            )
        return report

    def run_training(
        self,
        num_epochs: int,
        fault_plan: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> List[EpochReport]:
        """Run ``num_epochs`` epochs, optionally under a fault plan."""
        if fault_plan is None and recovery is None:
            with profiling.profile_scope("distdgl.epochs"):
                return [self.run_epoch() for _ in range(num_epochs)]
        if recovery is None:
            recovery = RecoveryPolicy()
        self.fault_summary = FaultSummary()
        self._dead_workers = set()
        with profiling.profile_scope("distdgl.epochs"):
            return [
                self.run_epoch(
                    fault_plan=fault_plan, recovery=recovery,
                    epoch_index=epoch,
                )
                for epoch in range(num_epochs)
            ]

    def comm_summary(self) -> CommSummary:
        """Accumulated communication-reduction accounting.

        ``cache_hit_rate`` is the fraction of would-be remote fetches
        the static feature cache served locally.
        """
        would_be_remote = self._comm_remote_inputs + self.comm.cache_hits
        self.comm.cache_hit_rate = (
            self.comm.cache_hits / would_be_remote
            if would_be_remote else 0.0
        )
        return self.comm
