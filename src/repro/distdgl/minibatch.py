"""Real (executed) distributed mini-batch GNN training.

Functional counterpart of :class:`~repro.distdgl.engine.DistDglEngine`'s
cost accounting: actually trains a model with DistDGL's data parallelism —
every worker samples seeds from its own partition's training vertices,
computes gradients on its sampled blocks against a synchronised model
replica, and the gradients are averaged across workers (the all-reduce)
before the shared optimizer step.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..gnn import (
    Adam,
    accuracy,
    build_model,
    default_fanouts,
    full_graph_block,
    sample_blocks,
    softmax_cross_entropy,
)
from ..graph import VertexSplit
from ..partitioning import VertexPartition

__all__ = ["DistributedMiniBatchTrainer"]


class DistributedMiniBatchTrainer:
    """Data-parallel mini-batch training over a vertex partition."""

    def __init__(
        self,
        partition: VertexPartition,
        split: VertexSplit,
        features: np.ndarray,
        labels: np.ndarray,
        arch: str = "sage",
        hidden_dim: int = 32,
        num_layers: int = 2,
        num_classes: Optional[int] = None,
        global_batch_size: int = 128,
        fanouts: Optional[Sequence[int]] = None,
        learning_rate: float = 0.01,
        seed: int = 0,
    ) -> None:
        n = partition.graph.num_vertices
        if features.shape[0] != n or labels.shape[0] != n:
            raise ValueError("features/labels must cover every vertex")
        self.partition = partition
        self.graph = partition.graph
        self.split = split
        self.features = features.astype(np.float64)
        self.labels = labels.astype(np.int64)
        if num_classes is None:
            num_classes = int(labels.max()) + 1
        self.model = build_model(
            arch, features.shape[1], hidden_dim, num_classes,
            num_layers, seed=seed,
        )
        self.optimizer = Adam(lr=learning_rate)
        self.global_batch_size = global_batch_size
        self.fanouts = (
            tuple(fanouts) if fanouts is not None
            else default_fanouts(num_layers)
        )
        self.num_workers = partition.num_partitions
        owner = partition.assignment
        self.train_per_worker: List[np.ndarray] = [
            split.train[owner[split.train] == w]
            for w in range(self.num_workers)
        ]
        self._rng = np.random.default_rng(seed)

    def train_step(self) -> float:
        """One global step: per-worker gradients, averaged, one update."""
        self.model.zero_grad()
        batch_per_worker = max(
            self.global_batch_size // self.num_workers, 1
        )
        losses: List[float] = []
        for pool in self.train_per_worker:
            if pool.size == 0:
                continue
            take = min(batch_per_worker, pool.size)
            seeds = self._rng.choice(pool, size=take, replace=False)
            batch = sample_blocks(self.graph, seeds, self.fanouts, self._rng)
            logits = self.model.forward(
                batch.blocks, self.features[batch.input_ids]
            )
            loss, d_logits = softmax_cross_entropy(
                logits, self.labels[batch.seeds]
            )
            # Gradients accumulate in the shared replica: this sequential
            # accumulation is numerically the all-reduce sum.
            self.model.backward(d_logits)
            losses.append(loss)
        if not losses:
            return 0.0
        # All-reduce averages over workers.
        for _, grad in self.model.parameters():
            grad /= len(losses)
        self.optimizer.step(self.model.parameters())
        return float(np.mean(losses))

    def train_epoch(self) -> float:
        """Train one epoch of mini-batches; returns the mean step loss."""
        num_train = self.split.train.shape[0]
        steps = max(
            int(np.ceil(num_train / self.global_batch_size)), 1
        )
        return float(np.mean([self.train_step() for _ in range(steps)]))

    def train(self, num_epochs: int) -> List[float]:
        """Train ``num_epochs`` epochs and return their mean losses."""
        return [self.train_epoch() for _ in range(num_epochs)]

    def evaluate(self, vertex_ids: np.ndarray) -> float:
        """Full-graph inference accuracy on the given vertices."""
        block = full_graph_block(self.graph)
        logits = self.model.forward(
            [block] * self.model.num_layers, self.features
        )
        return accuracy(logits[vertex_ids], self.labels[vertex_ids])
