"""Distributed layer-wise full-graph inference (DistDGL-style).

After mini-batch training, DistDGL evaluates the model over the whole
graph *layer by layer*: every machine computes layer ``l`` outputs for
the vertices it owns, fetching the previous layer's representations of
its halo (remote neighbour) vertices. This module executes that exact
scheme with the numpy models and accounts its cost — and the test suite
asserts the distributed result equals centralized inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..costmodel import DEFAULT_COST_MODEL, CostModel
from ..gnn import GnnModel
from ..gnn.activations import relu
from ..gnn.blocks import Block
from ..partitioning import VertexPartition

__all__ = ["DistributedInference", "InferenceReport"]


@dataclass
class InferenceReport:
    """Cost accounting of one distributed inference pass."""

    layer_fetch_bytes: List[float] = field(default_factory=list)
    layer_compute_seconds: List[np.ndarray] = field(default_factory=list)
    layer_fetch_seconds: List[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """End-to-end inference time: straggler compute plus fetch per layer."""
        compute = sum(
            float(per_machine.max())
            for per_machine in self.layer_compute_seconds
        )
        return compute + sum(self.layer_fetch_seconds)

    @property
    def total_fetch_bytes(self) -> float:
        """Total feature bytes fetched across layers."""
        return sum(self.layer_fetch_bytes)


class DistributedInference:
    """Layer-wise inference over a vertex partition."""

    def __init__(
        self,
        partition: VertexPartition,
        model: GnnModel,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.partition = partition
        self.model = model
        self.cost_model = cost_model
        self.graph = partition.graph
        self.num_machines = partition.num_partitions
        self._blocks = [
            self._machine_block(machine)
            for machine in range(self.num_machines)
        ]

    def _machine_block(self, machine: int) -> Tuple[Block, np.ndarray]:
        """Block computing this machine's owned vertices from their full
        neighbourhood (owned + halo sources). Returns (block, halo_ids).
        """
        indptr, indices = self.graph.symmetric_csr()
        owned = np.flatnonzero(self.partition.assignment == machine)
        counts = indptr[owned + 1] - indptr[owned]
        edge_dst = np.repeat(
            np.arange(owned.shape[0], dtype=np.int64), counts
        )
        gather = (
            np.concatenate(
                [np.arange(indptr[v], indptr[v + 1]) for v in owned]
            )
            if owned.size
            else np.zeros(0, dtype=np.int64)
        )
        neighbors = indices[gather]
        # Sources: owned first (prefix), then the distinct halo vertices.
        local_of = np.full(self.graph.num_vertices, -1, dtype=np.int64)
        local_of[owned] = np.arange(owned.shape[0])
        halo = np.unique(neighbors[local_of[neighbors] < 0])
        local_of[halo] = owned.shape[0] + np.arange(halo.shape[0])
        block = Block(
            src_ids=np.concatenate([owned, halo]),
            num_dst=owned.shape[0],
            edge_src=local_of[neighbors],
            edge_dst=edge_dst,
        )
        local_of[block.src_ids] = -1
        return block, halo

    def run(self, features: np.ndarray) -> Tuple[np.ndarray, InferenceReport]:
        """Run inference over all layers; returns (logits, report)."""
        if features.shape[0] != self.graph.num_vertices:
            raise ValueError("features must cover every vertex")
        cm = self.cost_model
        report = InferenceReport()
        h = features.astype(np.float64)
        for layer_index, layer in enumerate(self.model.layers):
            outputs = np.zeros((self.graph.num_vertices, layer.dim_out))
            fetch_bytes = 0.0
            compute = np.zeros(self.num_machines)
            for machine, (block, halo) in enumerate(self._blocks):
                # Fetch the halo's previous-layer state, then compute.
                fetch_bytes += cm.feature_bytes(halo.shape[0], layer.dim_in)
                out = layer.forward(block, h[block.src_ids])
                layer._cache = {}  # inference: free backward state
                outputs[block.src_ids[: block.num_dst]] = out
                flops = (
                    2.0 * block.num_edges * layer.dim_in
                    + 2.0 * block.num_dst * layer.dim_in * layer.dim_out
                )
                compute[machine] = cm.compute_seconds(flops)
            report.layer_fetch_bytes.append(fetch_bytes)
            report.layer_compute_seconds.append(compute)
            report.layer_fetch_seconds.append(
                cm.transfer_seconds(
                    fetch_bytes / max(self.num_machines, 1),
                    num_messages=max(self.num_machines - 1, 1),
                )
            )
            h = outputs
            if layer_index < self.model.num_layers - 1:
                h = relu(h)
        return h, report
