"""Property-based tests for the multilevel partitioning machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.partitioning.edgecut.multilevel import (
    WeightedGraph,
    coarsen,
    cut_weight,
    multilevel_partition,
)


@st.composite
def connected_graphs(draw):
    n = draw(st.integers(min_value=8, max_value=80))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    chain = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    extras = rng.integers(0, n, size=(draw(st.integers(0, 3 * n)), 2))
    extras = extras[extras[:, 0] != extras[:, 1]]
    return Graph(n, np.concatenate([chain, extras]))


@settings(max_examples=25, deadline=None)
@given(graph=connected_graphs(), seed=st.integers(0, 50))
def test_coarsening_invariants(graph, seed):
    rng = np.random.default_rng(seed)
    wg = WeightedGraph.from_edges(graph.num_vertices, graph.undirected_edges())
    coarse, mapping = coarsen(wg, rng)
    # Vertex weight is conserved exactly.
    assert coarse.total_vertex_weight == wg.total_vertex_weight
    # Mapping is total and onto 0..n'-1.
    assert mapping.shape == (graph.num_vertices,)
    assert mapping.min() >= 0
    assert mapping.max() == coarse.num_vertices - 1
    # Coarsening never grows the graph.
    assert coarse.num_vertices <= wg.num_vertices
    # Total edge weight is conserved up to contracted (intra-pair) edges.
    assert coarse.eweights.sum() <= wg.eweights.sum()


@settings(max_examples=20, deadline=None)
@given(
    graph=connected_graphs(),
    k=st.integers(min_value=2, max_value=5),
    seed=st.integers(0, 50),
)
def test_multilevel_partition_valid_and_balanced(graph, k, seed):
    assignment = multilevel_partition(
        graph.num_vertices,
        graph.undirected_edges(),
        k,
        epsilon=0.10,
        refine_passes=2,
        seed=seed,
    )
    assert assignment.shape == (graph.num_vertices,)
    assert assignment.min() >= 0 and assignment.max() < k
    loads = np.bincount(assignment, minlength=k)
    # Balance within epsilon plus the granularity of single vertices.
    assert loads.max() <= 1.10 * graph.num_vertices / k + 1
    # The cut is never worse than the expected random cut (only a
    # meaningful bound when partitions hold more than a couple of
    # vertices each).
    if graph.num_vertices >= 6 * k:
        wg = WeightedGraph.from_edges(
            graph.num_vertices, graph.undirected_edges()
        )
        random_cut_expectation = graph.num_edges * (1 - 1 / k)
        assert cut_weight(wg, assignment) <= random_cut_expectation + 1
