"""Property-based consistency checks on the cost engines."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import DEFAULT_COST_MODEL
from repro.distgnn import DistGnnEngine
from repro.graph import Graph
from repro.partitioning import EdgePartition


@st.composite
def partitioned_graphs(draw):
    n = draw(st.integers(min_value=10, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=5_000))
    k = draw(st.integers(min_value=2, max_value=6))
    rng = np.random.default_rng(seed)
    chain = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    extras = rng.integers(0, n, size=(2 * n, 2))
    extras = extras[extras[:, 0] != extras[:, 1]]
    graph = Graph(n, np.concatenate([chain, extras]))
    edges = graph.undirected_edges()
    assignment = rng.integers(0, k, size=edges.shape[0]).astype(np.int32)
    return EdgePartition(graph, edges, assignment, k)


@settings(max_examples=20, deadline=None)
@given(
    partition=partitioned_graphs(),
    feature=st.sampled_from([8, 32]),
    hidden=st.sampled_from([8, 32]),
    layers=st.integers(min_value=1, max_value=3),
)
def test_distgnn_traffic_matches_replication_formula(
    partition, feature, hidden, layers
):
    """Halo traffic must equal the analytic replication formula:
    2 * sum_l sum_v (copies(v)-1) * (d_in_l + d_out_l) * 4B
    plus the gradient all-reduce volume."""
    engine = DistGnnEngine(partition, feature, hidden, layers)
    breakdown = engine.simulate_epoch()
    copies = partition.copies_per_vertex()
    excess = np.maximum(copies - 1, 0).sum()
    dims = engine.dims
    halo = sum(
        2.0 * excess * (dims[i] + dims[i + 1]) * 4
        for i in range(layers)
    )
    grad = (
        2.0
        * engine.num_params
        * DEFAULT_COST_MODEL.float_bytes
        * max(partition.num_partitions - 1, 0)
    )
    assert breakdown.network_bytes == np.float64(halo + grad)


@settings(max_examples=20, deadline=None)
@given(partition=partitioned_graphs())
def test_distgnn_memory_decomposition(partition):
    """Per-machine memory must equal the sum of its ledger categories,
    and features must scale exactly linearly in the feature size."""
    small = DistGnnEngine(partition, 8, 16, 2)
    large = DistGnnEngine(partition, 16, 16, 2)
    for engine in (small, large):
        for machine in engine.cluster.machines:
            assert machine.memory.total_bytes == sum(
                machine.memory.by_category().values()
            )
    for m_small, m_large in zip(
        small.cluster.machines, large.cluster.machines
    ):
        delta = (
            m_large.memory.by_category()["features"]
            - m_small.memory.by_category()["features"]
        )
        assert delta == m_small.memory.by_category()["features"]


@settings(max_examples=15, deadline=None)
@given(partition=partitioned_graphs())
def test_distgnn_single_machine_no_traffic(partition):
    """Collapsing the partition onto one machine removes all halo and
    all-reduce traffic."""
    single = EdgePartition(
        partition.graph,
        partition.edges,
        np.zeros_like(partition.assignment),
        1,
    )
    engine = DistGnnEngine(single, 16, 16, 2)
    assert engine.simulate_epoch().network_bytes == 0.0
