"""Property-based tests for the graph substrate and sampler."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, random_split
from repro.gnn import sample_blocks


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=2, max_value=50))
    m = draw(st.integers(min_value=1, max_value=150))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2))
    return n, edges[edges[:, 0] != edges[:, 1]]


@settings(max_examples=50, deadline=None)
@given(case=edge_lists())
def test_degree_sum_equals_twice_edges(case):
    n, edges = case
    graph = Graph(n, edges)
    assert graph.degrees().sum() == 2 * graph.num_edges


@settings(max_examples=50, deadline=None)
@given(case=edge_lists())
def test_symmetric_csr_is_symmetric(case):
    n, edges = case
    graph = Graph(n, edges)
    indptr, indices = graph.symmetric_csr()
    for v in range(min(n, 10)):
        for u in indices[indptr[v] : indptr[v + 1]]:
            back = indices[indptr[u] : indptr[u + 1]]
            assert v in back


@settings(max_examples=50, deadline=None)
@given(case=edge_lists())
def test_undirected_edges_canonical_and_unique(case):
    n, edges = case
    graph = Graph(n, edges)
    und = graph.undirected_edges()
    assert (und[:, 0] <= und[:, 1]).all()
    assert len(np.unique(und, axis=0)) == len(und)


@settings(max_examples=30, deadline=None)
@given(
    case=edge_lists(),
    train=st.floats(min_value=0.05, max_value=0.5),
    seed=st.integers(min_value=0, max_value=100),
)
def test_split_partitions_vertices(case, train, seed):
    n, edges = case
    graph = Graph(n, edges)
    split = random_split(graph, train, 0.1, seed=seed)
    combined = np.sort(
        np.concatenate([split.train, split.valid, split.test])
    )
    assert np.array_equal(combined, np.arange(n))


@settings(max_examples=30, deadline=None)
@given(case=edge_lists(), seed=st.integers(min_value=0, max_value=100))
def test_sampler_blocks_chain(case, seed):
    """Sampled blocks always chain: layer i's dst == layer i+1's src
    prefix, edges reference valid local indices, and all sampled edges
    exist in the graph."""
    n, edges = case
    if len(edges) == 0:
        return
    graph = Graph(n, edges)
    rng = np.random.default_rng(seed)
    degrees = graph.degrees()
    seeds = np.flatnonzero(degrees > 0)[:5]
    if seeds.size == 0:
        return
    mb = sample_blocks(graph, seeds, (3, 3), rng)
    for outer, inner in zip(mb.blocks[:-1], mb.blocks[1:]):
        assert np.array_equal(outer.src_ids[: outer.num_dst], inner.src_ids)
    indptr, indices = graph.symmetric_csr()
    for block in mb.blocks:
        for s, d in zip(block.edge_src, block.edge_dst):
            src = int(block.src_ids[s])
            dst = int(block.src_ids[d])
            assert src in indices[indptr[dst] : indptr[dst + 1]]
