"""Property-based tests for the GNN substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnn import (
    Block,
    GatLayer,
    GcnLayer,
    SageLayer,
    softmax_cross_entropy,
)
from repro.gnn.activations import softmax


@st.composite
def random_blocks(draw):
    """Arbitrary valid blocks with features."""
    num_dst = draw(st.integers(min_value=1, max_value=8))
    extra_src = draw(st.integers(min_value=0, max_value=8))
    num_src = num_dst + extra_src
    num_edges = draw(st.integers(min_value=0, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    edge_src = rng.integers(0, num_src, size=num_edges)
    edge_dst = rng.integers(0, num_dst, size=num_edges)
    dim_in = draw(st.integers(min_value=1, max_value=6))
    x = rng.normal(size=(num_src, dim_in))
    return Block(
        src_ids=np.arange(num_src),
        num_dst=num_dst,
        edge_src=edge_src,
        edge_dst=edge_dst,
    ), x


@settings(max_examples=40, deadline=None)
@given(case=random_blocks())
def test_layers_produce_finite_output(case):
    block, x = case
    for layer_type in (SageLayer, GcnLayer, GatLayer):
        layer = layer_type(x.shape[1], 3, seed=0)
        out = layer.forward(block, x)
        assert out.shape == (block.num_dst, 3)
        assert np.isfinite(out).all()
        dx = layer.backward(np.ones_like(out))
        assert dx.shape == x.shape
        assert np.isfinite(dx).all()


@settings(max_examples=40, deadline=None)
@given(case=random_blocks())
def test_backward_matches_directional_derivative(case):
    """<analytic grad, direction> == finite-difference along direction."""
    block, x = case
    layer = SageLayer(x.shape[1], 2, seed=1)
    rng = np.random.default_rng(0)
    upstream = rng.normal(size=(block.num_dst, 2))
    direction = rng.normal(size=x.shape)
    layer.forward(block, x)
    analytic = float((layer.backward(upstream) * direction).sum())
    eps = 1e-6
    fp = float((layer.forward(block, x + eps * direction) * upstream).sum())
    fm = float((layer.forward(block, x - eps * direction) * upstream).sum())
    numeric = (fp - fm) / (2 * eps)
    assert abs(analytic - numeric) < 1e-4 * max(1.0, abs(numeric))


@settings(max_examples=50, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=20),
    cols=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_softmax_is_distribution(rows, cols, seed):
    rng = np.random.default_rng(seed)
    probs = softmax(rng.normal(size=(rows, cols)) * 10, axis=1)
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert (probs >= 0).all()


@settings(max_examples=50, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=20),
    cols=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_cross_entropy_nonnegative_and_grad_sums_zero(rows, cols, seed):
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=(rows, cols)) * 5
    labels = rng.integers(0, cols, size=rows)
    loss, grad = softmax_cross_entropy(logits, labels)
    assert loss >= 0.0
    assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)
