"""Property-based tests: partitioning invariants hold on arbitrary graphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.partitioning import (
    EdgePartition,
    VertexPartition,
    all_edge_partitioners,
    all_vertex_partitioners,
    edge_balance,
    edge_cut_ratio,
    replication_factor,
    vertex_balance,
)


@st.composite
def random_graphs(draw):
    """Connected-ish random graphs of 6..60 vertices."""
    n = draw(st.integers(min_value=6, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    # A spanning chain keeps every vertex non-isolated, plus random extras.
    chain = np.stack(
        [np.arange(n - 1), np.arange(1, n)], axis=1
    )
    extra_count = draw(st.integers(min_value=0, max_value=4 * n))
    extras = rng.integers(0, n, size=(extra_count, 2))
    extras = extras[extras[:, 0] != extras[:, 1]]
    return Graph(n, np.concatenate([chain, extras]))


@st.composite
def graph_and_k(draw):
    graph = draw(random_graphs())
    k = draw(st.integers(min_value=1, max_value=6))
    return graph, k


@settings(max_examples=25, deadline=None)
@given(case=graph_and_k())
@pytest.mark.parametrize(
    "partitioner", all_edge_partitioners(), ids=lambda p: p.name
)
def test_edge_partitioner_invariants(partitioner, case):
    graph, k = case
    part = partitioner.partition(graph, k, seed=0)
    edges = graph.undirected_edges()
    # Every edge assigned to exactly one valid partition.
    assert part.assignment.shape[0] == edges.shape[0]
    assert (part.assignment >= 0).all() and (part.assignment < k).all()
    # RF bounds: 1 <= RF <= min(k, max degree).
    rf = replication_factor(part)
    assert 1.0 <= rf <= k + 1e-9
    # Vertex copies bounded by min(degree, k).
    copies = part.copies_per_vertex()
    degrees = graph.degrees()
    assert (copies <= np.minimum(np.maximum(degrees, 1), k)).all()
    # Edge counts sum to |E|.
    assert part.edge_counts().sum() == edges.shape[0]
    # Replica union covers exactly the non-isolated vertices.
    covered = np.count_nonzero(copies)
    assert covered == np.count_nonzero(degrees)
    assert edge_balance(part) >= 1.0


@settings(max_examples=25, deadline=None)
@given(case=graph_and_k())
@pytest.mark.parametrize(
    "partitioner", all_vertex_partitioners(), ids=lambda p: p.name
)
def test_vertex_partitioner_invariants(partitioner, case):
    graph, k = case
    part = partitioner.partition(graph, k, seed=0)
    # Every vertex assigned to exactly one valid partition.
    assert part.assignment.shape == (graph.num_vertices,)
    assert (part.assignment >= 0).all() and (part.assignment < k).all()
    # Counts sum to |V|; cut ratio within [0, 1].
    assert part.vertex_counts().sum() == graph.num_vertices
    assert 0.0 <= edge_cut_ratio(part) <= 1.0
    assert vertex_balance(part) >= 1.0
    # Local + cut edges account for every edge.
    cut = part.num_cut_edges()
    local = part.local_edge_counts().sum()
    assert cut + local == graph.undirected_edges().shape[0]


@settings(max_examples=30, deadline=None)
@given(case=graph_and_k(), seed=st.integers(min_value=0, max_value=100))
def test_masters_are_replicas(case, seed):
    """A vertex's master must be a partition it is actually replicated on."""
    graph, k = case
    rng = np.random.default_rng(seed)
    edges = graph.undirected_edges()
    assignment = rng.integers(0, k, size=edges.shape[0]).astype(np.int32)
    part = EdgePartition(graph, edges, assignment, k)
    masters = part.masters()
    copies = part.copies_per_vertex()
    pairs = set(map(tuple, part.replica_pairs().tolist()))
    for v in range(graph.num_vertices):
        if copies[v] > 0:
            assert (int(masters[v]), v) in pairs


@settings(max_examples=30, deadline=None)
@given(case=graph_and_k(), seed=st.integers(min_value=0, max_value=100))
def test_cut_mask_consistent(case, seed):
    graph, k = case
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, k, size=graph.num_vertices).astype(np.int32)
    part = VertexPartition(graph, assignment, k)
    edges = graph.undirected_edges()
    mask = part.cut_mask()
    recomputed = assignment[edges[:, 0]] != assignment[edges[:, 1]]
    assert np.array_equal(mask, recomputed)
