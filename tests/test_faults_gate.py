"""Opt-in fault-sweep gate: ``pytest -m faults``.

Deselected by default (see ``addopts`` in pyproject.toml) so tier-1
stays fast; CI opts in explicitly. The gate checks, via
``scripts/check_faults.py``, that seeded fault sweeps are deterministic,
record-identical between the serial and process-parallel runners, and
that crash recovery charges exactly ``e mod c`` replayed epochs plus a
restore.
"""

import os
import subprocess
import sys

import pytest

pytestmark = pytest.mark.faults

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_fault_sweep_invariants_hold():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    result = subprocess.run(
        [
            sys.executable,
            os.path.join(_REPO_ROOT, "scripts", "check_faults.py"),
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=_REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
