"""Engine-level comm semantics: baselines stay bit-identical, codecs
shrink the wire monotonically, cd-r skips halo syncs, accounting stays
balanced."""

import dataclasses

import pytest

from repro.comm import CODEC_NAMES, make_codec
from repro.distdgl import DistDglEngine
from repro.distgnn import DistGnnEngine
from repro.graph import load_dataset, random_split
from repro.partitioning import HdrfPartitioner, MetisPartitioner


@pytest.fixture(scope="module")
def graph():
    return load_dataset("HW", "tiny")


@pytest.fixture(scope="module")
def split(graph):
    return random_split(graph, seed=7)


@pytest.fixture(scope="module")
def edge_partition(graph):
    return HdrfPartitioner().partition(graph, 4, seed=0)


@pytest.fixture(scope="module")
def vertex_partition(graph):
    return MetisPartitioner().partition(graph, 4, seed=0)


def gnn_engine(partition, **kw):
    defaults = dict(feature_size=32, hidden_dim=32, num_layers=2)
    defaults.update(kw)
    return DistGnnEngine(partition, **defaults)


def dgl_engine(partition, split, **kw):
    defaults = dict(
        feature_size=32, hidden_dim=32, num_layers=2,
        global_batch_size=32, seed=0,
    )
    defaults.update(kw)
    return DistDglEngine(partition, split, **defaults)


class TestNullBitIdentity:
    def test_distgnn_null_codec_matches_baseline_exactly(
        self, edge_partition
    ):
        base = gnn_engine(edge_partition)
        null = gnn_engine(
            edge_partition, compression="none", refresh_interval=1
        )
        for _ in range(2):
            a = base.simulate_epoch()
            b = null.simulate_epoch()
            assert dataclasses.asdict(a) == dataclasses.asdict(b)
        assert base.phase_summary() == null.phase_summary()

    def test_distdgl_null_codec_matches_baseline_exactly(
        self, vertex_partition, split
    ):
        base = dgl_engine(vertex_partition, split)
        null = dgl_engine(
            vertex_partition, split,
            compression="none", cache_fraction=0.0,
        )
        a = base.run_epoch()
        b = null.run_epoch()
        assert a.epoch_seconds == b.epoch_seconds
        assert a.network_bytes == b.network_bytes
        assert a.phase_seconds() == b.phase_seconds()

    def test_null_summary_accounts_raw_equals_wire(self, edge_partition):
        engine = gnn_engine(edge_partition)
        engine.simulate_epoch()
        comm = engine.comm_summary()
        assert comm.raw_bytes > 0
        assert comm.wire_bytes == comm.raw_bytes
        assert comm.saved_bytes == 0.0
        assert comm.codec_seconds == 0.0
        assert comm.accuracy_proxy_error == 0.0


class TestCompression:
    def test_distgnn_wire_bytes_shrink_monotonically(
        self, edge_partition
    ):
        bytes_by_codec = {}
        for name in CODEC_NAMES:
            engine = gnn_engine(edge_partition, compression=name)
            bytes_by_codec[name] = engine.simulate_epoch().network_bytes
        assert (
            bytes_by_codec["none"] > bytes_by_codec["fp16"]
            > bytes_by_codec["int8"] > bytes_by_codec["topk"]
        )

    def test_distgnn_wire_matches_codec_ratio(self, edge_partition):
        base = gnn_engine(edge_partition).simulate_epoch()
        fp16 = gnn_engine(
            edge_partition, compression="fp16"
        ).simulate_epoch()
        assert fp16.network_bytes == pytest.approx(
            base.network_bytes * make_codec("fp16").ratio
        )

    def test_distgnn_codec_charges_time(self, edge_partition):
        engine = gnn_engine(edge_partition, compression="int8")
        engine.simulate_epoch()
        comm = engine.comm_summary()
        assert comm.codec_seconds > 0
        assert "codec" in engine.cluster.timeline.phase_totals()

    def test_distgnn_traffic_invariant_holds_compressed(
        self, edge_partition
    ):
        engine = gnn_engine(edge_partition, compression="topk")
        engine.simulate_epoch()
        engine.cluster.check_traffic_invariant()

    def test_distdgl_wire_bytes_shrink_monotonically(
        self, vertex_partition, split
    ):
        bytes_by_codec = {}
        for name in CODEC_NAMES:
            engine = dgl_engine(
                vertex_partition, split, compression=name
            )
            bytes_by_codec[name] = engine.run_epoch().network_bytes
        assert (
            bytes_by_codec["none"] > bytes_by_codec["fp16"]
            > bytes_by_codec["int8"] > bytes_by_codec["topk"]
        )

    def test_distdgl_summary_balances(self, vertex_partition, split):
        engine = dgl_engine(
            vertex_partition, split, compression="fp16"
        )
        engine.run_epoch()
        comm = engine.comm_summary()
        assert comm.raw_bytes > 0
        assert comm.wire_bytes == pytest.approx(comm.raw_bytes * 0.5)
        assert comm.saved_bytes == pytest.approx(comm.raw_bytes * 0.5)


class TestDelayedAggregation:
    def test_stale_epochs_skip_halo_sync(self, edge_partition):
        engine = gnn_engine(edge_partition, refresh_interval=2)
        fresh = engine.simulate_epoch()  # epoch 0: syncs
        stale = engine.simulate_epoch()  # epoch 1: stale
        assert stale.network_bytes < fresh.network_bytes
        # Halo-sync time lands in the forward/backward phases; the
        # stale epoch skips it there (sync_seconds is the allreduce,
        # which always runs).
        assert stale.forward_seconds < fresh.forward_seconds
        assert stale.epoch_seconds < fresh.epoch_seconds
        comm = engine.comm_summary()
        assert comm.stale_epochs == 1
        assert comm.total_epochs == 2

    def test_refresh_one_never_goes_stale(self, edge_partition):
        engine = gnn_engine(edge_partition, refresh_interval=1)
        for _ in range(3):
            engine.simulate_epoch()
        assert engine.comm_summary().stale_epochs == 0

    def test_skipped_sync_bytes_count_as_saved(self, edge_partition):
        engine = gnn_engine(edge_partition, refresh_interval=2)
        engine.simulate_epoch()
        engine.simulate_epoch()
        comm = engine.comm_summary()
        assert comm.saved_bytes > 0
        assert comm.accuracy_proxy_error > 0

    def test_gradient_allreduce_always_runs(self, edge_partition):
        # Even a stale epoch must sync gradients (model consistency):
        # its traffic is positive, exactly the allreduce volume.
        engine = gnn_engine(edge_partition, refresh_interval=2)
        engine.simulate_epoch()
        stale = engine.simulate_epoch()
        assert stale.network_bytes > 0


class TestFeatureCache:
    def test_cache_zero_is_bit_identical(self, vertex_partition, split):
        base = dgl_engine(vertex_partition, split)
        cached = dgl_engine(vertex_partition, split, cache_fraction=0.0)
        a, b = base.run_epoch(), cached.run_epoch()
        assert a.epoch_seconds == b.epoch_seconds
        assert a.network_bytes == b.network_bytes

    def test_cache_hit_rate_reported(self, vertex_partition, split):
        engine = dgl_engine(vertex_partition, split, cache_fraction=0.5)
        engine.run_epoch()
        comm = engine.comm_summary()
        assert 0.0 < comm.cache_hit_rate <= 1.0
        assert comm.cache_hits > 0

    def test_no_cache_no_hits(self, vertex_partition, split):
        engine = dgl_engine(vertex_partition, split)
        engine.run_epoch()
        assert engine.comm_summary().cache_hit_rate == 0.0
