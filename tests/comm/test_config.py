"""CommConfig / CommSummary / comm_grid semantics."""

import pytest

from repro.comm import CommConfig, CommSummary, comm_grid
from repro.comm.config import STALENESS_ERROR_PER_EPOCH


class TestCommConfig:
    def test_defaults_are_falsy_and_label(self):
        config = CommConfig()
        assert not config
        assert config.label() == "none r1 c0"

    def test_any_non_default_knob_is_truthy(self):
        assert CommConfig(compression="fp16")
        assert CommConfig(refresh_interval=4)
        assert CommConfig(cache_fraction=0.25)

    def test_validation_is_eager(self):
        with pytest.raises(ValueError):
            CommConfig(compression="bogus")
        with pytest.raises(ValueError):
            CommConfig(refresh_interval=0)
        with pytest.raises(ValueError):
            CommConfig(cache_fraction=1.0)
        with pytest.raises(ValueError):
            CommConfig(cache_fraction=-0.1)

    def test_with_replaces_fields(self):
        config = CommConfig().with_(compression="int8")
        assert config.compression == "int8"
        assert config.refresh_interval == 1

    def test_codec_matches_compression_knob(self):
        assert CommConfig(compression="topk").codec().name == "topk"

    def test_hashable_for_dedup_keys(self):
        a = CommConfig(compression="fp16")
        b = CommConfig(compression="fp16")
        assert hash(a) == hash(b) and a == b
        assert a != CommConfig(compression="int8")


class TestCommGrid:
    def test_cross_product_with_compression_outermost(self):
        configs = list(comm_grid(
            compressions=("none", "fp16"),
            refresh_intervals=(1, 2),
        ))
        assert len(configs) == 4
        assert [c.compression for c in configs] == [
            "none", "none", "fp16", "fp16"
        ]
        assert [c.refresh_interval for c in configs] == [1, 2, 1, 2]

    def test_default_grid_is_the_single_baseline(self):
        configs = list(comm_grid())
        assert configs == [CommConfig()]


class TestCommSummary:
    def test_saved_bytes_is_raw_minus_wire(self):
        summary = CommSummary(raw_bytes=100.0, wire_bytes=30.0)
        assert summary.saved_bytes == 70.0

    def test_accuracy_proxy_combines_codec_and_staleness(self):
        summary = CommSummary(
            codec_error=0.01, stale_epochs=1, total_epochs=4
        )
        assert summary.accuracy_proxy_error == pytest.approx(
            0.01 + STALENESS_ERROR_PER_EPOCH * 0.25
        )

    def test_baseline_summary_has_zero_error(self):
        assert CommSummary(total_epochs=3).accuracy_proxy_error == 0.0

    def test_as_dict_round_trips_every_field(self):
        summary = CommSummary(
            raw_bytes=10.0, wire_bytes=5.0, codec_seconds=0.5,
            stale_epochs=1, total_epochs=2, cache_hits=3,
            cache_hit_rate=0.5, codec_error=0.01,
        )
        data = summary.as_dict()
        assert data["saved_bytes"] == 5.0
        assert data["accuracy_proxy_error"] == pytest.approx(
            0.01 + STALENESS_ERROR_PER_EPOCH * 0.5
        )
        assert data["cache_hits"] == 3
