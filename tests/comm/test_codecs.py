"""Unit tests for the compression codecs."""

import numpy as np
import pytest

from repro.comm import CODEC_NAMES, make_codec
from repro.costmodel import DEFAULT_COST_MODEL


class TestMakeCodec:
    def test_every_catalogued_name_constructs(self):
        for name in CODEC_NAMES:
            assert make_codec(name).name == name

    def test_unknown_name_raises_with_valid_names(self):
        with pytest.raises(ValueError, match="fp16"):
            make_codec("zstd")

    def test_only_null_codec_is_null(self):
        assert make_codec("none").is_null()
        for name in CODEC_NAMES:
            if name != "none":
                assert not make_codec(name).is_null()


class TestWireBytes:
    def test_null_codec_is_identity(self):
        codec = make_codec("none")
        assert codec.wire_bytes(1024.0) == 1024.0
        assert codec.saved_bytes(1024.0) == 0.0

    def test_ratios_strictly_shrink_the_wire(self):
        # Paper ordering: fp16 halves, int8 quarters, top-k keeps 10%
        # of values plus index overhead.
        wire = {
            name: make_codec(name).wire_bytes(1000.0)
            for name in CODEC_NAMES
        }
        assert wire["none"] > wire["fp16"] > wire["int8"] > wire["topk"]

    def test_wire_bytes_vectorizes_over_arrays(self):
        codec = make_codec("fp16")
        raw = np.array([100.0, 0.0, 50.0])
        np.testing.assert_allclose(
            codec.wire_bytes(raw), [50.0, 0.0, 25.0]
        )

    def test_saved_plus_wire_equals_raw(self):
        for name in CODEC_NAMES:
            codec = make_codec(name)
            assert codec.wire_bytes(800.0) + codec.saved_bytes(800.0) \
                == pytest.approx(800.0)


class TestCodecTime:
    def test_null_codec_charges_nothing(self):
        assert make_codec("none").codec_seconds(
            1e9, DEFAULT_COST_MODEL
        ) == 0.0

    def test_time_scales_with_work_factor_and_bytes(self):
        fp16 = make_codec("fp16")
        int8 = make_codec("int8")
        t_fp16 = fp16.codec_seconds(1e9, DEFAULT_COST_MODEL)
        assert t_fp16 == pytest.approx(
            1e9 / DEFAULT_COST_MODEL.memory_bandwidth
        )
        # int8 does two passes (quantize + scale), so twice the time.
        assert int8.codec_seconds(1e9, DEFAULT_COST_MODEL) \
            == pytest.approx(2 * t_fp16)

    def test_no_time_for_empty_payload(self):
        assert make_codec("topk").codec_seconds(
            0.0, DEFAULT_COST_MODEL
        ) == 0.0


class TestErrorModel:
    def test_null_codec_is_lossless(self):
        assert make_codec("none").error_per_value == 0.0

    def test_error_grows_as_compression_tightens(self):
        errors = [
            make_codec(name).error_per_value
            for name in ("none", "fp16", "int8", "topk")
        ]
        assert errors == sorted(errors)
        assert errors[-1] > errors[0]
