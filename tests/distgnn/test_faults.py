"""Fault injection and checkpoint/restart recovery in the DistGNN engine."""

import numpy as np
import pytest

from repro.cluster import FaultEvent, FaultPlan, RecoveryPolicy
from repro.distgnn import DistGnnEngine
from repro.partitioning import RandomEdgePartitioner


def make_engine(graph, k=4, seed=0):
    partition = RandomEdgePartitioner().partition(graph, k, seed=seed)
    return DistGnnEngine(partition, feature_size=16, hidden_dim=16,
                         num_layers=2)


def crash_plan(epoch, machine=1):
    return FaultPlan((FaultEvent("crash", epoch=epoch, machine=machine),))


def test_no_faults_matches_plain_training(tiny_or):
    plain = make_engine(tiny_or)
    faulty = make_engine(tiny_or)
    a = plain.simulate_training(3)
    b = faulty.simulate_training(3, fault_plan=FaultPlan(),
                                 recovery=RecoveryPolicy())
    assert [x.epoch_seconds for x in a] == [x.epoch_seconds for x in b]
    assert (
        faulty.cluster.timeline.total_seconds
        == plain.cluster.timeline.total_seconds
    )


def test_crash_replays_exactly_epoch_mod_checkpoint(tiny_or):
    """A crash at epoch e with checkpoint interval c re-executes exactly
    e mod c epochs (the work since the last checkpoint) plus a restore."""
    epoch, interval = 5, 3
    engine = make_engine(tiny_or)
    recovery = RecoveryPolicy(checkpoint_every=interval)
    engine.simulate_training(7, fault_plan=crash_plan(epoch),
                             recovery=recovery)
    assert engine.fault_summary.crashes == 1
    assert engine.fault_summary.reexecuted_epochs == epoch % interval

    # The replayed epochs cost exactly what the originals did.
    baseline = make_engine(tiny_or)
    epoch_seconds = baseline.simulate_epoch().epoch_seconds
    totals = engine.cluster.timeline.phase_totals()
    replay_seconds = sum(
        v for name, v in totals.items() if name.startswith("replay:")
    )
    assert replay_seconds == pytest.approx(
        (epoch % interval) * epoch_seconds
    )
    # Detection stall + checkpoint restore are charged too.
    assert totals["fault-detect"] == pytest.approx(
        recovery.detection_timeout_seconds
    )
    assert totals["fault-restore"] > 0


def test_crash_at_checkpoint_boundary_replays_nothing(tiny_or):
    engine = make_engine(tiny_or)
    engine.simulate_training(
        8, fault_plan=crash_plan(6),
        recovery=RecoveryPolicy(checkpoint_every=3),
    )
    assert engine.fault_summary.crashes == 1
    assert engine.fault_summary.reexecuted_epochs == 0


def test_checkpoint_cadence(tiny_or):
    engine = make_engine(tiny_or)
    engine.simulate_training(
        7, fault_plan=FaultPlan(), recovery=RecoveryPolicy(checkpoint_every=2)
    )
    # Checkpoints after epochs 2, 4 and 6 (none after the final epoch).
    assert engine.fault_summary.checkpoints == 3
    assert engine.cluster.timeline.checkpoint_seconds() > 0


def test_total_time_decomposes(tiny_or):
    engine = make_engine(tiny_or)
    recovery = RecoveryPolicy(checkpoint_every=3)
    engine.simulate_training(7, fault_plan=crash_plan(5), recovery=recovery)
    timeline = engine.cluster.timeline

    baseline = make_engine(tiny_or)
    base_total = sum(
        b.epoch_seconds for b in baseline.simulate_training(7)
    )
    assert timeline.total_seconds == pytest.approx(
        base_total
        + timeline.recovery_seconds()
        + timeline.checkpoint_seconds()
    )


def test_slowdown_stretches_epoch(tiny_or):
    slow = make_engine(tiny_or)
    plan = FaultPlan(
        (FaultEvent("slowdown", epoch=1, machine=0, magnitude=8.0),)
    )
    reports = slow.simulate_training(3, fault_plan=plan,
                                     recovery=RecoveryPolicy())
    assert slow.fault_summary.slowdowns == 1
    assert reports[1].epoch_seconds > reports[0].epoch_seconds
    assert reports[0].epoch_seconds == reports[2].epoch_seconds


def test_lost_message_charges_retransmit(tiny_or):
    engine = make_engine(tiny_or)
    plan = FaultPlan(
        (FaultEvent("lost-message", epoch=0, machine=2),)
    )
    engine.simulate_training(2, fault_plan=plan, recovery=RecoveryPolicy())
    assert engine.fault_summary.lost_messages == 1
    assert engine.cluster.fabric.lost_messages[2] == 1
    totals = engine.cluster.timeline.phase_totals()
    assert totals["fault-retransmit"] > 0


def test_machine_counters(tiny_or):
    engine = make_engine(tiny_or)
    engine.simulate_training(4, fault_plan=crash_plan(2, machine=3),
                             recovery=RecoveryPolicy(checkpoint_every=2))
    assert engine.cluster.machines[3].crashes == 1
    assert engine.cluster.machines[3].restarts == 1
    assert engine.cluster.machines[0].crashes == 0


def test_faulty_run_is_deterministic(tiny_or):
    plan = FaultPlan.generate(4, 6, crash_rate=0.2, slowdown_rate=0.2,
                              loss_rate=0.2, seed=9)
    recovery = RecoveryPolicy(checkpoint_every=2)
    runs = []
    for _ in range(2):
        engine = make_engine(tiny_or)
        engine.simulate_training(6, fault_plan=plan, recovery=recovery)
        timeline = engine.cluster.timeline
        runs.append(
            (
                [(r.name, r.per_machine_seconds.tolist(), r.interrupted)
                 for r in timeline.records],
                [(m.name, m.kind, m.at_seconds, m.machine)
                 for m in timeline.marks],
            )
        )
    assert runs[0] == runs[1]


def test_marks_recorded_for_crash(tiny_or):
    engine = make_engine(tiny_or)
    engine.simulate_training(4, fault_plan=crash_plan(2),
                             recovery=RecoveryPolicy(checkpoint_every=2))
    kinds = {m.kind for m in engine.cluster.timeline.marks}
    assert "fault" in kinds
    assert "recovery" in kinds
