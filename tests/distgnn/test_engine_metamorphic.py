"""Metamorphic tests: DistGNN cost accounting must move the right way
when one input grows."""

import pytest

from repro.distgnn import DistGnnEngine
from repro.partitioning import RandomEdgePartitioner


@pytest.fixture(scope="module")
def graph():
    from repro.graph import load_dataset

    return load_dataset("OR", "tiny")


def breakdown(graph, k=4, feature=32, hidden=32, layers=2):
    partition = RandomEdgePartitioner().partition(graph, k, seed=0)
    engine = DistGnnEngine(partition, feature, hidden, layers)
    return engine, engine.simulate_epoch()


def test_more_machines_more_total_traffic(graph):
    _, small = breakdown(graph, k=2)
    _, large = breakdown(graph, k=8)
    assert large.network_bytes > small.network_bytes


def test_larger_features_more_traffic_and_memory(graph):
    engine_s, small = breakdown(graph, feature=16)
    engine_l, large = breakdown(graph, feature=256)
    assert large.network_bytes > small.network_bytes
    assert engine_l.total_memory() > engine_s.total_memory()


def test_larger_hidden_more_traffic(graph):
    _, small = breakdown(graph, hidden=16)
    _, large = breakdown(graph, hidden=256)
    assert large.network_bytes > small.network_bytes


def test_more_layers_longer_epoch(graph):
    _, shallow = breakdown(graph, layers=2)
    _, deep = breakdown(graph, layers=4)
    assert deep.epoch_seconds > shallow.epoch_seconds
    assert deep.network_bytes > shallow.network_bytes


def test_epoch_additivity(graph):
    """Simulating N epochs accumulates the timeline linearly."""
    partition = RandomEdgePartitioner().partition(graph, 4, seed=0)
    engine = DistGnnEngine(partition, 32, 32, 2)
    once = engine.simulate_epoch().epoch_seconds
    engine.simulate_training(3)
    total = engine.cluster.timeline.total_seconds
    assert total == pytest.approx(4 * once)


def test_phase_summary_covers_all_layers(graph):
    partition = RandomEdgePartitioner().partition(graph, 4, seed=0)
    engine = DistGnnEngine(partition, 32, 32, 3)
    engine.simulate_epoch()
    phases = engine.phase_summary()
    for layer in range(3):
        assert f"forward-l{layer}" in phases
        assert f"backward-sync-l{layer}" in phases
    assert "gradient-allreduce" in phases
