"""Tests for delayed partial aggregation (cd-r extension)."""

import numpy as np
import pytest

from repro.distgnn import (
    DelayedAggregationTrainer,
    DistributedFullBatchTrainer,
    compare_with_synchronous,
)
from repro.graph import random_split
from repro.partitioning import HdrfPartitioner


@pytest.fixture
def problem(tiny_or, rng):
    labels = rng.integers(0, 4, size=tiny_or.num_vertices)
    features = rng.normal(size=(tiny_or.num_vertices, 8)) * 0.3
    features[np.arange(tiny_or.num_vertices), labels] += 2.0
    mask = random_split(tiny_or, seed=1).train_mask(tiny_or.num_vertices)
    return features, labels, mask


@pytest.fixture
def partition(tiny_or):
    return HdrfPartitioner().partition(tiny_or, 4, seed=0)


def test_r1_equals_synchronous(tiny_or, problem, partition):
    """refresh_interval=1 must be bit-identical to the exact trainer."""
    features, labels, mask = problem
    sync = DistributedFullBatchTrainer(
        partition, features, labels, mask, hidden_dim=16, num_layers=2,
        seed=3,
    )
    delayed = DelayedAggregationTrainer(
        partition, features, labels, mask, refresh_interval=1,
        hidden_dim=16, num_layers=2, seed=3,
    )
    assert np.allclose(sync.train(4), delayed.train(4), atol=1e-12)
    assert delayed.communication_saving == 0.0


def test_r2_saves_half_the_traffic(tiny_or, problem, partition):
    features, labels, mask = problem
    delayed = DelayedAggregationTrainer(
        partition, features, labels, mask, refresh_interval=2,
        hidden_dim=16, num_layers=2, seed=3,
    )
    delayed.train(6)
    assert delayed.communication_saving == pytest.approx(0.5, abs=0.05)


def test_delayed_still_converges(tiny_or, problem, partition):
    features, labels, mask = problem
    delayed = DelayedAggregationTrainer(
        partition, features, labels, mask, refresh_interval=3,
        hidden_dim=16, num_layers=2, seed=3,
    )
    losses = delayed.train(20)
    assert losses[-1] < 0.6 * losses[0]


def test_staleness_perturbs_but_tracks_synchronous(
    tiny_or, problem, partition
):
    features, labels, mask = problem
    result = compare_with_synchronous(
        partition, features, labels, mask,
        refresh_interval=2, num_epochs=10, seed=3,
    )
    sync = np.asarray(result["synchronous_losses"])
    delayed = np.asarray(result["delayed_losses"])
    # Different trajectories (staleness is real)...
    assert not np.allclose(sync, delayed)
    # ...but the delayed run still descends to the same neighbourhood.
    assert delayed[-1] < 1.5 * sync[-1] + 0.05
    assert result["communication_saving"] > 0.3


def test_invalid_interval_rejected(tiny_or, problem, partition):
    features, labels, mask = problem
    with pytest.raises(ValueError):
        DelayedAggregationTrainer(
            partition, features, labels, mask, refresh_interval=0
        )
