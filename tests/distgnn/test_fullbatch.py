"""Tests for real distributed full-batch training.

The headline invariant: training over any edge partition is numerically
identical to centralized full-graph training.
"""

import numpy as np
import pytest

from repro.distgnn import DistributedFullBatchTrainer
from repro.gnn import Adam, build_model, full_graph_block, softmax_cross_entropy
from repro.graph import random_split
from repro.partitioning import (
    DbhPartitioner,
    HdrfPartitioner,
    RandomEdgePartitioner,
)


@pytest.fixture
def problem(tiny_or, rng):
    labels = rng.integers(0, 4, size=tiny_or.num_vertices)
    features = rng.normal(size=(tiny_or.num_vertices, 8)) * 0.3
    features[np.arange(tiny_or.num_vertices), labels] += 2.0
    mask = random_split(tiny_or, seed=1).train_mask(tiny_or.num_vertices)
    return features, labels, mask


def centralized_losses(graph, features, labels, mask, epochs, seed):
    model = build_model(
        "sage", features.shape[1], 16, int(labels.max()) + 1, 2, seed=seed
    )
    optimizer = Adam(lr=0.01)
    block = full_graph_block(graph)
    losses = []
    for _ in range(epochs):
        model.zero_grad()
        logits = model.forward([block, block], features)
        loss, grad = softmax_cross_entropy(logits[mask], labels[mask])
        full = np.zeros_like(logits)
        full[mask] = grad
        model.backward(full)
        optimizer.step(model.parameters())
        losses.append(loss)
    return losses


@pytest.mark.parametrize(
    "partitioner",
    [RandomEdgePartitioner(), DbhPartitioner(), HdrfPartitioner()],
    ids=lambda p: p.name,
)
def test_distributed_equals_centralized(tiny_or, problem, partitioner):
    features, labels, mask = problem
    partition = partitioner.partition(tiny_or, 4, seed=0)
    trainer = DistributedFullBatchTrainer(
        partition, features, labels, mask,
        hidden_dim=16, num_layers=2, seed=9,
    )
    dist_losses = trainer.train(4)
    central = centralized_losses(tiny_or, features, labels, mask, 4, seed=9)
    assert np.allclose(dist_losses, central, atol=1e-9)


def test_partition_count_does_not_change_result(tiny_or, problem):
    features, labels, mask = problem
    losses = []
    for k in (2, 8):
        partition = RandomEdgePartitioner().partition(tiny_or, k, seed=0)
        trainer = DistributedFullBatchTrainer(
            partition, features, labels, mask,
            hidden_dim=16, num_layers=2, seed=3,
        )
        losses.append(trainer.train(3))
    assert np.allclose(losses[0], losses[1], atol=1e-9)


def test_training_learns(tiny_or, problem):
    features, labels, mask = problem
    partition = HdrfPartitioner().partition(tiny_or, 4, seed=0)
    trainer = DistributedFullBatchTrainer(
        partition, features, labels, mask, hidden_dim=16, num_layers=2,
    )
    losses = trainer.train(30)
    assert losses[-1] < 0.5 * losses[0]
    test_mask = ~mask
    assert trainer.evaluate(test_mask) > 0.5


def test_validates_input_shapes(tiny_or, problem):
    features, labels, mask = problem
    partition = RandomEdgePartitioner().partition(tiny_or, 2, seed=0)
    with pytest.raises(ValueError):
        DistributedFullBatchTrainer(
            partition, features[:5], labels, mask
        )
