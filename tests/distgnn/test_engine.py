"""Tests for the DistGNN cost-accounting engine."""

import pytest

from repro.costmodel import CostModel
from repro.distgnn import DistGnnEngine
from repro.partitioning import (
    HepPartitioner,
    RandomEdgePartitioner,
    replication_factor,
)


@pytest.fixture(scope="module")
def partitions(tiny_or_module):
    rnd = RandomEdgePartitioner().partition(tiny_or_module, 4, seed=0)
    hep = HepPartitioner(100).partition(tiny_or_module, 4, seed=0)
    return rnd, hep


@pytest.fixture(scope="module")
def tiny_or_module():
    from repro.graph import load_dataset

    return load_dataset("OR", "tiny")


def make_engine(partition, **kw):
    defaults = dict(feature_size=32, hidden_dim=32, num_layers=2)
    defaults.update(kw)
    return DistGnnEngine(partition, **defaults)


class TestEpochBreakdown:
    def test_phases_positive(self, partitions):
        breakdown = make_engine(partitions[0]).simulate_epoch()
        assert breakdown.forward_seconds > 0
        assert breakdown.backward_seconds > 0
        assert breakdown.network_bytes > 0
        assert breakdown.epoch_seconds == pytest.approx(
            breakdown.forward_seconds
            + breakdown.backward_seconds
            + breakdown.sync_seconds
            + breakdown.optimizer_seconds
        )

    def test_epochs_deterministic(self, partitions):
        engine = make_engine(partitions[0])
        a = engine.simulate_epoch()
        b = engine.simulate_epoch()
        assert a.epoch_seconds == b.epoch_seconds

    def test_backward_heavier_than_forward(self, partitions):
        breakdown = make_engine(partitions[0]).simulate_epoch()
        assert breakdown.backward_seconds > breakdown.forward_seconds


class TestPartitioningEffect:
    def test_better_partition_trains_faster(self, partitions):
        rnd, hep = partitions
        t_rnd = make_engine(rnd).simulate_epoch().epoch_seconds
        t_hep = make_engine(hep).simulate_epoch().epoch_seconds
        assert t_hep < t_rnd

    def test_traffic_tracks_replication_factor(self, partitions):
        rnd, hep = partitions
        b_rnd = make_engine(rnd).simulate_epoch().network_bytes
        b_hep = make_engine(hep).simulate_epoch().network_bytes
        rf_ratio = replication_factor(hep) / replication_factor(rnd)
        byte_ratio = b_hep / b_rnd
        assert byte_ratio < 1.0
        # Traffic is proportional to (RF - 1), so the byte ratio must be
        # even smaller than the RF ratio.
        assert byte_ratio < rf_ratio

    def test_memory_tracks_replication_factor(self, partitions):
        rnd, hep = partitions
        m_rnd = make_engine(rnd, feature_size=512).total_memory()
        m_hep = make_engine(hep, feature_size=512).total_memory()
        assert m_hep < m_rnd


class TestMemoryModel:
    def test_feature_size_raises_footprint(self, partitions):
        small = make_engine(partitions[0], feature_size=16).total_memory()
        large = make_engine(partitions[0], feature_size=512).total_memory()
        assert large > 2 * small

    def test_layers_raise_footprint(self, partitions):
        shallow = make_engine(partitions[0], num_layers=2).total_memory()
        deep = make_engine(partitions[0], num_layers=4).total_memory()
        assert deep > shallow

    def test_budget_enforcement(self, partitions):
        engine = DistGnnEngine(
            partitions[0],
            feature_size=512,
            hidden_dim=512,
            num_layers=4,
            cost_model=CostModel(memory_budget_bytes=1e3),
        )
        from repro.cluster import OutOfMemoryError

        with pytest.raises(OutOfMemoryError):
            engine.check_memory_budget()

    def test_memory_balance_at_least_one(self, partitions):
        assert make_engine(partitions[0]).memory_utilization_balance() >= 1.0


class TestValidation:
    def test_rejects_bad_dimensions(self, partitions):
        with pytest.raises(ValueError):
            DistGnnEngine(partitions[0], feature_size=0, hidden_dim=4,
                          num_layers=2)


class TestScaleOut:
    def test_speedup_grows_with_machines(self, tiny_or_module):
        """Partitioning effectiveness increases with the scale-out factor
        (paper Figure 11a)."""
        speedups = []
        for k in (4, 16):
            rnd = RandomEdgePartitioner().partition(
                tiny_or_module, k, seed=0
            )
            hep = HepPartitioner(100).partition(tiny_or_module, k, seed=0)
            t_rnd = make_engine(rnd).simulate_epoch().epoch_seconds
            t_hep = make_engine(hep).simulate_epoch().epoch_seconds
            speedups.append(t_rnd / t_hep)
        assert speedups[1] > speedups[0]
