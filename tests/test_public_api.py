"""Public-API hygiene: everything exported is importable and documented."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.graph",
    "repro.partitioning",
    "repro.partitioning.extensions",
    "repro.cluster",
    "repro.costmodel",
    "repro.gnn",
    "repro.distgnn",
    "repro.distdgl",
    "repro.experiments",
    "repro.obs",
    "repro.serve",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, module_name


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), module_name
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_callables_documented(module_name):
    """Every exported class and function carries a docstring."""
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, f"{module_name}: {undocumented}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_no_accidental_exports(module_name):
    """__all__ entries never start with an underscore."""
    module = importlib.import_module(module_name)
    assert all(not name.startswith("_") for name in module.__all__)


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)
