"""Tests for the cost model conversions."""

import pytest

from repro.costmodel import DEFAULT_COST_MODEL, CostModel


def test_compute_seconds_linear():
    cm = CostModel(flops_per_second=1e9)
    assert cm.compute_seconds(2e9) == pytest.approx(2.0)


def test_transfer_seconds_includes_latency():
    cm = CostModel(network_bandwidth=1e6, network_latency=0.01)
    assert cm.transfer_seconds(1e6, num_messages=2) == pytest.approx(1.02)


def test_transfer_zero_is_free():
    assert CostModel().transfer_seconds(0, 0) == 0.0


def test_feature_bytes():
    cm = CostModel(float_bytes=4)
    assert cm.feature_bytes(100, 64) == 100 * 64 * 4


def test_allreduce_single_machine_free():
    assert CostModel().allreduce_seconds(1e9, 1) == 0.0


def test_allreduce_scales_with_payload():
    cm = CostModel()
    small = cm.allreduce_seconds(1e3, 8)
    large = cm.allreduce_seconds(1e6, 8)
    assert large > small


def test_allreduce_volume_factor():
    """Ring all-reduce moves ~2x the payload per machine."""
    cm = CostModel(network_latency=0.0)
    seconds = cm.allreduce_seconds(1e6, 4)
    expected = 2.0 * 1e6 * 3 / 4 / cm.network_bandwidth
    assert seconds == pytest.approx(expected)


def test_default_instance_is_commodity_cluster():
    cm = DEFAULT_COST_MODEL
    # Communication of a vertex's features must be expensive relative to
    # the flops spent on it - the regime the whole study lives in.
    bytes_per_vertex = cm.feature_bytes(1, 512)
    flops_per_vertex = 2 * 512 * 64
    assert cm.transfer_seconds(bytes_per_vertex) > cm.compute_seconds(
        flops_per_vertex
    )


def test_memory_seconds():
    cm = CostModel(memory_bandwidth=1e9)
    assert cm.memory_seconds(5e8) == pytest.approx(0.5)
