"""Tests for flop counting."""

from repro.costmodel import (
    aggregation_bytes,
    gat_layer_flops,
    gcn_layer_flops,
    gemm_flops,
    sage_layer_flops,
)


def test_gemm_flops():
    assert gemm_flops(10, 20, 30) == 2 * 10 * 20 * 30


def test_sage_has_two_transforms():
    """SAGE (self + neighbour GEMM) costs ~2x GCN's single GEMM."""
    sage = sage_layer_flops(100, 0, 64, 64)
    gcn = gcn_layer_flops(100, 0, 64, 64)
    assert sage == 2 * gcn


def test_aggregation_scales_with_edges():
    assert sage_layer_flops(10, 2000, 8, 8) > sage_layer_flops(
        10, 1000, 8, 8
    )


def test_gat_heavier_than_sage_per_edge():
    """GAT's attention math makes it the most expensive layer (the paper
    relies on this in Figure 25)."""
    gat = gat_layer_flops(100, 500, 5000, 64, 64)
    sage = sage_layer_flops(100, 5000, 64, 64)
    assert gat > sage


def test_gat_scales_with_heads():
    one = gat_layer_flops(10, 50, 100, 16, 16, num_heads=1)
    four = gat_layer_flops(10, 50, 100, 16, 16, num_heads=4)
    assert four > 2 * one


def test_aggregation_bytes():
    assert aggregation_bytes(100, 64, 4) == 2 * 100 * 64 * 4
