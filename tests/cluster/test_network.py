"""Tests for the network fabric."""

import numpy as np

from repro.cluster import NetworkFabric
from repro.costmodel import CostModel


def make_fabric(k=4):
    return NetworkFabric(k, CostModel())


def test_point_to_point_accounting():
    fabric = make_fabric()
    fabric.transfer(0, 1, 1000)
    fabric.transfer(0, 2, 500)
    assert fabric.sent[0] == 1500
    assert fabric.received[1] == 1000
    assert fabric.total_bytes == 1500


def test_local_transfer_free():
    fabric = make_fabric()
    fabric.transfer(2, 2, 1e9)
    assert fabric.total_bytes == 0


def test_bulk_transfer():
    fabric = make_fabric()
    fabric.transfer_bulk(
        np.array([10.0, 0, 0, 0]), np.array([0, 10.0, 0, 0])
    )
    assert fabric.sent[0] == 10
    assert fabric.received[1] == 10


def test_phase_seconds_busiest_port():
    fabric = make_fabric()
    cm = fabric.cost_model
    sent = np.array([1e6, 0, 0, 0])
    recv = np.array([0, 1e6, 0, 0])
    expected = cm.transfer_seconds(1e6, 1)
    assert fabric.phase_seconds(sent, recv) == expected


def test_phase_seconds_zero_traffic():
    fabric = make_fabric()
    zero = np.zeros(4)
    assert fabric.phase_seconds(zero, zero) == 0.0
