"""Tests for the network fabric."""

import numpy as np
import pytest

from repro.cluster import NetworkFabric
from repro.costmodel import CostModel


def make_fabric(k=4):
    return NetworkFabric(k, CostModel())


def test_point_to_point_accounting():
    fabric = make_fabric()
    fabric.transfer(0, 1, 1000)
    fabric.transfer(0, 2, 500)
    assert fabric.sent[0] == 1500
    assert fabric.received[1] == 1000
    assert fabric.total_bytes == 1500


def test_local_transfer_free():
    fabric = make_fabric()
    fabric.transfer(2, 2, 1e9)
    assert fabric.total_bytes == 0


def test_bulk_transfer():
    fabric = make_fabric()
    fabric.transfer_bulk(
        np.array([10.0, 0, 0, 0]), np.array([0, 10.0, 0, 0])
    )
    assert fabric.sent[0] == 10
    assert fabric.received[1] == 10


def test_phase_seconds_busiest_port():
    fabric = make_fabric()
    cm = fabric.cost_model
    sent = np.array([1e6, 0, 0, 0])
    recv = np.array([0, 1e6, 0, 0])
    expected = cm.transfer_seconds(1e6, 1)
    assert fabric.phase_seconds(sent, recv) == expected


def test_phase_seconds_zero_traffic():
    fabric = make_fabric()
    zero = np.zeros(4)
    assert fabric.phase_seconds(zero, zero) == 0.0


class TestTrafficMatrix:
    def test_record_accumulates_per_phase(self):
        fabric = make_fabric(2)
        fabric.record_matrix("sync", np.array([[0.0, 10.0], [5.0, 0.0]]))
        fabric.record_matrix("sync", np.array([[0.0, 1.0], [2.0, 0.0]]))
        assert np.array_equal(
            fabric.traffic_matrix("sync"),
            np.array([[0.0, 11.0], [7.0, 0.0]]),
        )

    def test_all_phases_summed_by_default(self):
        fabric = make_fabric(2)
        fabric.record_matrix("a", np.array([[0.0, 1.0], [0.0, 0.0]]))
        fabric.record_matrix("b", np.array([[0.0, 0.0], [2.0, 0.0]]))
        assert np.array_equal(
            fabric.traffic_matrix(),
            np.array([[0.0, 1.0], [2.0, 0.0]]),
        )
        assert list(fabric.traffic_matrix_phases()) == ["a", "b"]

    def test_unknown_phase_is_zero_matrix(self):
        fabric = make_fabric(3)
        assert np.array_equal(
            fabric.traffic_matrix("never"), np.zeros((3, 3))
        )

    def test_wrong_shape_rejected(self):
        fabric = make_fabric(4)
        with pytest.raises(ValueError):
            fabric.record_matrix("sync", np.zeros((2, 2)))

    def test_returned_matrices_are_copies(self):
        fabric = make_fabric(2)
        fabric.record_matrix("a", np.array([[0.0, 1.0], [0.0, 0.0]]))
        fabric.traffic_matrix("a")[0, 1] = 999.0
        fabric.traffic_matrix_phases()["a"][0, 1] = 999.0
        assert fabric.traffic_matrix("a")[0, 1] == 1.0


def test_lost_messages_counted_but_byte_free():
    """The lost-message ledger convention: drops are pure counts — the
    payload bytes appear on neither the sent nor the received side."""
    fabric = make_fabric(2)
    fabric.transfer(0, 1, 1000)
    before = (fabric.sent.copy(), fabric.received.copy())
    fabric.record_lost_message(1)
    fabric.record_lost_message(1)
    assert fabric.lost_messages[1] == 2
    assert np.array_equal(fabric.sent, before[0])
    assert np.array_equal(fabric.received, before[1])
