"""Tests for Machine and MemoryLedger."""

import pytest

from repro.cluster import Machine, MemoryLedger


class TestMemoryLedger:
    def test_allocate_accumulates(self):
        ledger = MemoryLedger()
        ledger.allocate("features", 100)
        ledger.allocate("features", 50)
        assert ledger.total_bytes == 150
        assert ledger.by_category() == {"features": 150}

    def test_peak_tracks_high_watermark(self):
        ledger = MemoryLedger()
        ledger.allocate("a", 100)
        ledger.free("a", 60)
        ledger.allocate("a", 10)
        assert ledger.total_bytes == 50
        assert ledger.peak_bytes == 100

    def test_free_more_than_held_rejected(self):
        ledger = MemoryLedger()
        ledger.allocate("a", 10)
        with pytest.raises(ValueError):
            ledger.free("a", 20)

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            MemoryLedger().allocate("a", -5)

    def test_per_category_peaks_survive_frees(self):
        ledger = MemoryLedger()
        ledger.allocate("activations", 100)
        ledger.free("activations", 100)
        ledger.allocate("features", 40)
        assert ledger.peak_by_category() == {
            "activations": 100,
            "features": 40,
        }
        # The transient category is gone from the live view...
        assert ledger.by_category() == {"features": 40}
        # ...but its watermark remains.
        assert ledger.peak_bytes == 100

    def test_category_peaks_are_independent_maxima(self):
        # Categories peaking at different times: the per-category peaks
        # need not sum to the total peak.
        ledger = MemoryLedger()
        ledger.allocate("a", 100)
        ledger.free("a", 100)
        ledger.allocate("b", 80)
        assert ledger.peak_by_category() == {"a": 100, "b": 80}
        assert ledger.peak_bytes == 100
        assert sum(ledger.peak_by_category().values()) > ledger.peak_bytes

    def test_free_to_zero_removes_category(self):
        ledger = MemoryLedger()
        ledger.allocate("buffers", 64)
        ledger.free("buffers", 64)
        assert "buffers" not in ledger.by_category()
        assert ledger.total_bytes == 0.0
        # Re-allocating after a full free works and grows the peak.
        ledger.allocate("buffers", 128)
        assert ledger.by_category() == {"buffers": 128}
        assert ledger.peak_by_category()["buffers"] == 128

    def test_float_roundoff_free_clears_category(self):
        # Freeing in parts that sum to the allocation (modulo float
        # error) must not leave a dust entry behind.
        ledger = MemoryLedger()
        ledger.allocate("a", 0.3)
        ledger.free("a", 0.1)
        ledger.free("a", 0.2)
        assert ledger.by_category() == {}

    def test_interleaved_alloc_free_watermarks(self):
        ledger = MemoryLedger()
        ledger.allocate("a", 10)
        ledger.allocate("b", 20)
        ledger.free("a", 5)
        ledger.allocate("a", 30)  # a now 35, total 55
        ledger.free("b", 20)
        assert ledger.by_category() == {"a": 35}
        assert ledger.peak_by_category() == {"a": 35, "b": 20}
        assert ledger.peak_bytes == 55

    def test_over_free_still_rejected_per_category(self):
        ledger = MemoryLedger()
        ledger.allocate("a", 10)
        ledger.allocate("b", 100)
        # Plenty held overall, but not under this category.
        with pytest.raises(ValueError):
            ledger.free("a", 11)


class TestMachine:
    def test_compute_accumulates(self):
        machine = Machine(0)
        machine.add_compute(1.5)
        machine.add_compute(0.5)
        assert machine.compute_seconds == 2.0

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Machine(0).add_compute(-1.0)
