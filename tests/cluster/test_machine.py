"""Tests for Machine and MemoryLedger."""

import pytest

from repro.cluster import Machine, MemoryLedger


class TestMemoryLedger:
    def test_allocate_accumulates(self):
        ledger = MemoryLedger()
        ledger.allocate("features", 100)
        ledger.allocate("features", 50)
        assert ledger.total_bytes == 150
        assert ledger.by_category() == {"features": 150}

    def test_peak_tracks_high_watermark(self):
        ledger = MemoryLedger()
        ledger.allocate("a", 100)
        ledger.free("a", 60)
        ledger.allocate("a", 10)
        assert ledger.total_bytes == 50
        assert ledger.peak_bytes == 100

    def test_free_more_than_held_rejected(self):
        ledger = MemoryLedger()
        ledger.allocate("a", 10)
        with pytest.raises(ValueError):
            ledger.free("a", 20)

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            MemoryLedger().allocate("a", -5)


class TestMachine:
    def test_compute_accumulates(self):
        machine = Machine(0)
        machine.add_compute(1.5)
        machine.add_compute(0.5)
        assert machine.compute_seconds == 2.0

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Machine(0).add_compute(-1.0)
