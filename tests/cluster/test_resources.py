"""Resource-depth accounting: traffic invariant, watermarks, peaks.

The PR-5 resource layer hangs off the Cluster facade: the traffic
consistency invariant (fabric totals == per-machine ledger sums), the
per-phase memory-watermark timeline, the per-category memory peaks,
and their emission as catalog metrics. The engine-level tests at the
bottom pin the invariant on real DistGNN/DistDGL runs, including runs
with injected message loss.
"""

import numpy as np
import pytest

from repro.cluster import Cluster


def comm(cluster, name, sent, received, matrix=None):
    cluster.run_comm_phase(
        name, np.asarray(sent, float), np.asarray(received, float),
        matrix=None if matrix is None else np.asarray(matrix, float),
    )


class TestTrafficInvariant:
    def test_holds_after_comm_phases(self):
        cluster = Cluster(2)
        comm(cluster, "sync", [100.0, 0.0], [0.0, 100.0])
        comm(cluster, "allreduce", [50.0, 50.0], [50.0, 50.0])
        cluster.check_traffic_invariant()

    def test_detects_desync(self):
        cluster = Cluster(2)
        comm(cluster, "sync", [100.0, 0.0], [0.0, 100.0])
        cluster.machines[0].bytes_sent += 1.0  # corrupt one ledger
        with pytest.raises(RuntimeError):
            cluster.check_traffic_invariant()

    def test_lost_messages_do_not_skew_ledgers(self):
        cluster = Cluster(2)
        comm(cluster, "sync", [100.0, 0.0], [0.0, 100.0])
        cluster.fabric.record_lost_message(0)
        cluster.check_traffic_invariant()
        assert cluster.fabric.lost_messages.sum() == 1

    def test_record_traffic_keeps_matrix_consistent(self):
        cluster = Cluster(2)
        matrix = np.array([[0.0, 60.0], [40.0, 0.0]])
        cluster.record_traffic(
            "fetch",
            matrix.sum(axis=1),
            matrix.sum(axis=0),
            matrix=matrix,
        )
        cluster.check_traffic_invariant()
        total = cluster.fabric.traffic_matrix()
        assert total.sum() == cluster.fabric.total_bytes
        assert np.array_equal(
            total.sum(axis=1), cluster.fabric.sent
        )


class TestMemoryWatermarks:
    def test_timeline_snapshots_totals_per_phase(self):
        cluster = Cluster(2)
        cluster.allocate(0, "features", 100)
        cluster.add_phase("load", np.zeros(2))
        cluster.allocate(0, "activations", 50)
        cluster.allocate(1, "activations", 70)
        cluster.add_phase("forward", np.zeros(2))
        timeline = cluster.memory_watermark_timeline()
        assert list(timeline) == ["load", "forward"]
        assert list(timeline["load"]) == [100.0, 0.0]
        assert list(timeline["forward"]) == [150.0, 70.0]

    def test_repeated_phase_keeps_elementwise_max(self):
        cluster = Cluster(1)
        cluster.allocate(0, "buffers", 100)
        cluster.add_phase("step", np.zeros(1))
        cluster.machines[0].memory.free("buffers", 80)
        cluster.add_phase("step", np.zeros(1))
        assert list(
            cluster.memory_watermark_timeline()["step"]
        ) == [100.0]

    def test_phase_prefix_applies_to_watermarks(self):
        cluster = Cluster(1)
        cluster.phase_prefix = "epoch0-"
        cluster.add_phase("fwd", np.zeros(1))
        assert list(cluster.memory_watermark_timeline()) == [
            "epoch0-fwd"
        ]

    def test_category_peaks_union_and_zero_fill(self):
        cluster = Cluster(2)
        cluster.allocate(0, "features", 100)
        cluster.allocate(1, "replicas", 30)
        peaks = cluster.memory_category_peaks()
        assert peaks == {
            "features": [100.0, 0.0],
            "replicas": [0.0, 30.0],
        }


class TestEmitResourceMetrics:
    def test_noop_when_disabled(self):
        from repro.obs import api as obs

        cluster = Cluster(2)
        cluster.allocate(0, "features", 100)
        cluster.emit_resource_metrics()
        assert obs.snapshot() == []

    def test_emits_catalog_metrics_when_enabled(self):
        from repro.obs import api as obs

        obs.enable()
        try:
            cluster = Cluster(2)
            cluster.allocate(0, "features", 100)
            cluster.add_phase("load", np.zeros(2))
            comm(
                cluster, "sync", [10.0, 0.0], [0.0, 10.0],
                matrix=[[0.0, 10.0], [0.0, 0.0]],
            )
            cluster.emit_resource_metrics()
            names = {entry["name"] for entry in obs.snapshot()}
        finally:
            obs.reset()
            obs.disable()
        assert "cluster.memory_category_peak_bytes" in names
        assert "cluster.memory_watermark_bytes" in names
        assert "cluster.traffic_matrix_bytes" in names


class TestEngineInvariants:
    """On real engine runs: fabric totals == machine ledger sums ==
    matrix totals, with and without injected message loss."""

    def _run_distgnn(self, tiny_or, loss=0.0):
        from repro.distgnn.engine import DistGnnEngine
        from repro.experiments import FaultConfig
        from repro.partitioning import make_edge_partitioner

        partition = make_edge_partitioner("hdrf").partition(
            tiny_or, 2, seed=0
        )
        engine = DistGnnEngine(
            partition, feature_size=8, hidden_dim=8, num_layers=2
        )
        if loss:
            config = FaultConfig(loss_rate=loss, seed=3)
            engine.simulate_training(
                3, fault_plan=config.plan(2, 3),
                recovery=config.policy(),
            )
        else:
            engine.simulate_training(2)
        return engine.cluster

    def _run_distdgl(self, tiny_or, tiny_or_split, loss=0.0):
        from repro.distdgl.engine import DistDglEngine
        from repro.experiments import FaultConfig
        from repro.partitioning import make_vertex_partitioner

        partition = make_vertex_partitioner("ldg").partition(
            tiny_or, 2, seed=0
        )
        engine = DistDglEngine(partition, tiny_or_split)
        if loss:
            config = FaultConfig(loss_rate=loss, seed=3)
            engine.run_training(
                2, fault_plan=config.plan(2, 2),
                recovery=config.policy(),
            )
        else:
            engine.run_training(1)
        return engine.cluster

    def _check(self, cluster):
        cluster.check_traffic_invariant()
        fabric = cluster.fabric
        machine_sent = sum(m.bytes_sent for m in cluster.machines)
        assert fabric.sent.sum() == pytest.approx(machine_sent)
        matrix_total = fabric.traffic_matrix().sum()
        assert matrix_total == pytest.approx(float(fabric.sent.sum()))
        # Pairwise attribution never uses the diagonal (local is free).
        assert np.trace(fabric.traffic_matrix()) == 0.0

    def test_distgnn_clean(self, tiny_or):
        self._check(self._run_distgnn(tiny_or))

    def test_distgnn_with_message_loss(self, tiny_or):
        cluster = self._run_distgnn(tiny_or, loss=0.5)
        assert cluster.fabric.lost_messages.sum() > 0
        self._check(cluster)

    def test_distdgl_clean(self, tiny_or, tiny_or_split):
        self._check(self._run_distdgl(tiny_or, tiny_or_split))

    def test_distdgl_with_message_loss(self, tiny_or, tiny_or_split):
        cluster = self._run_distdgl(tiny_or, tiny_or_split, loss=0.5)
        self._check(cluster)
