"""Tests for the BSP timeline."""

import numpy as np
import pytest

from repro.cluster import Timeline


def test_phase_duration_is_straggler():
    timeline = Timeline()
    duration = timeline.add_phase("fwd", np.array([1.0, 3.0, 2.0]))
    assert duration == 3.0
    assert timeline.total_seconds == 3.0


def test_phase_totals_accumulate_by_name():
    timeline = Timeline()
    timeline.add_phase("fwd", np.array([1.0, 2.0]))
    timeline.add_phase("fwd", np.array([2.0, 1.0]))
    timeline.add_phase("bwd", np.array([5.0, 0.0]))
    totals = timeline.phase_totals()
    assert totals == {"fwd": 4.0, "bwd": 5.0}
    assert timeline.straggler_phase_totals() == totals


def test_per_machine_totals():
    timeline = Timeline()
    timeline.add_phase("a", np.array([1.0, 2.0]))
    timeline.add_phase("b", np.array([3.0, 1.0]))
    assert timeline.per_machine_totals().tolist() == [4.0, 3.0]


def test_empty_timeline():
    timeline = Timeline()
    assert timeline.total_seconds == 0.0
    assert timeline.per_machine_totals().size == 0


def test_negative_times_rejected():
    with pytest.raises(ValueError):
        Timeline().add_phase("x", np.array([-1.0]))
