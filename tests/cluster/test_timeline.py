"""Tests for the BSP timeline."""

import numpy as np
import pytest

from repro.cluster import Timeline


def test_phase_duration_is_straggler():
    timeline = Timeline()
    duration = timeline.add_phase("fwd", np.array([1.0, 3.0, 2.0]))
    assert duration == 3.0
    assert timeline.total_seconds == 3.0


def test_phase_totals_accumulate_by_name():
    timeline = Timeline()
    timeline.add_phase("fwd", np.array([1.0, 2.0]))
    timeline.add_phase("fwd", np.array([2.0, 1.0]))
    timeline.add_phase("bwd", np.array([5.0, 0.0]))
    totals = timeline.phase_totals()
    assert totals == {"fwd": 4.0, "bwd": 5.0}
    assert timeline.straggler_phase_totals() == totals


def test_per_machine_totals():
    timeline = Timeline()
    timeline.add_phase("a", np.array([1.0, 2.0]))
    timeline.add_phase("b", np.array([3.0, 1.0]))
    assert timeline.per_machine_totals().tolist() == [4.0, 3.0]


def test_empty_timeline():
    timeline = Timeline()
    assert timeline.total_seconds == 0.0
    assert timeline.per_machine_totals().size == 0


def test_negative_times_rejected():
    with pytest.raises(ValueError):
        Timeline().add_phase("x", np.array([-1.0]))


def test_empty_phase_rejected():
    """An empty per-machine vector used to crash later in .duration
    (max of an empty array); it is now rejected up front."""
    with pytest.raises(ValueError, match="empty"):
        Timeline().add_phase("fwd", np.array([]))


def test_non_1d_phase_rejected():
    with pytest.raises(ValueError, match="1-D"):
        Timeline().add_phase("fwd", np.ones((2, 2)))


def test_phase_record_defensively_copies():
    """Mutating the caller's array after add_phase must not change the
    recorded durations."""
    timeline = Timeline()
    seconds = np.array([1.0, 2.0])
    timeline.add_phase("fwd", seconds)
    seconds[1] = 100.0
    assert timeline.total_seconds == 2.0


def test_phase_record_array_read_only():
    timeline = Timeline()
    timeline.add_phase("fwd", np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        timeline.records[0].per_machine_seconds[0] = 9.0


def test_interrupted_flag_and_query():
    timeline = Timeline()
    timeline.add_phase("fwd", np.array([1.0]))
    timeline.add_phase("fault-detect", np.array([0.5]), interrupted=True)
    assert [r.name for r in timeline.interrupted_records()] == [
        "fault-detect"
    ]


def test_marks_stamped_at_current_total():
    timeline = Timeline()
    timeline.add_phase("fwd", np.array([1.0, 3.0]))
    mark = timeline.add_mark("crash", kind="fault", machine=1)
    assert mark.at_seconds == 3.0
    assert timeline.marks == [mark]


def test_recovery_and_checkpoint_zero_without_marks_or_phases():
    """A timeline with only normal work (and no marks) charges nothing
    to recovery or checkpointing."""
    timeline = Timeline()
    timeline.add_phase("forward", np.array([1.0, 2.0]))
    timeline.add_phase("backward", np.array([2.0, 1.0]))
    assert timeline.recovery_seconds() == 0.0
    assert timeline.checkpoint_seconds() == 0.0
    assert timeline.marks == []


def test_recovery_on_empty_timeline():
    timeline = Timeline()
    assert timeline.recovery_seconds() == 0.0
    assert timeline.checkpoint_seconds() == 0.0


def test_all_interrupted_phases_still_count_normal_time():
    """Interruption flags a phase; it does not reclassify its seconds
    as recovery — only fault-*/replay:* phases are recovery."""
    timeline = Timeline()
    timeline.add_phase("forward", np.array([1.0]), interrupted=True)
    timeline.add_phase("backward", np.array([2.0]), interrupted=True)
    assert len(timeline.interrupted_records()) == 2
    assert timeline.recovery_seconds() == 0.0
    assert timeline.total_seconds == pytest.approx(3.0)


def test_marks_beyond_last_phase():
    """Marks stamped after the final phase sit exactly at the makespan
    and never extend it."""
    timeline = Timeline()
    timeline.add_phase("forward", np.array([1.0, 4.0]))
    first = timeline.add_mark("crash", kind="fault", machine=0)
    second = timeline.add_mark("checkpoint", kind="checkpoint")
    assert first.at_seconds == pytest.approx(4.0)
    assert second.at_seconds == pytest.approx(4.0)
    assert timeline.total_seconds == pytest.approx(4.0)
    # Marks alone add no recovery/checkpoint seconds: those are charged
    # by phases, marks only annotate instants.
    assert timeline.recovery_seconds() == 0.0
    assert timeline.checkpoint_seconds() == 0.0


def test_recovery_and_checkpoint_seconds():
    timeline = Timeline()
    timeline.add_phase("forward", np.array([2.0]))
    timeline.add_phase("fault-detect", np.array([0.25]))
    timeline.add_phase("fault-restore", np.array([0.75]))
    timeline.add_phase("replay:forward", np.array([2.0]))
    timeline.add_phase("checkpoint", np.array([0.5]))
    assert timeline.recovery_seconds() == pytest.approx(3.0)
    assert timeline.checkpoint_seconds() == pytest.approx(0.5)
    # Normal work is counted by neither.
    assert timeline.total_seconds == pytest.approx(5.5)
