"""Tests for Chrome trace export."""

import json

import numpy as np

from repro.cluster import (
    Timeline,
    save_chrome_trace,
    timeline_to_chrome_trace,
)


def make_timeline():
    timeline = Timeline()
    timeline.add_phase("forward", np.array([1.0, 2.0]))
    timeline.add_phase("sync", np.array([0.5, 0.25]))
    return timeline


def test_trace_is_valid_json():
    payload = json.loads(timeline_to_chrome_trace(make_timeline()))
    assert "traceEvents" in payload


def test_event_count_and_threads():
    payload = json.loads(timeline_to_chrome_trace(make_timeline()))
    events = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
    assert len(events) == 4  # 2 phases x 2 machines
    assert {e["tid"] for e in events} == {0, 1}


def test_barrier_semantics_in_timestamps():
    """The second phase starts when the slowest machine of the first is
    done (2.0s -> 2e6 us)."""
    payload = json.loads(timeline_to_chrome_trace(make_timeline()))
    sync_events = [
        e for e in payload["traceEvents"] if e.get("name") == "sync"
    ]
    assert all(e["ts"] == 2e6 for e in sync_events)


def test_durations_microseconds():
    payload = json.loads(timeline_to_chrome_trace(make_timeline()))
    forward = [
        e for e in payload["traceEvents"] if e.get("name") == "forward"
    ]
    assert sorted(e["dur"] for e in forward) == [1e6, 2e6]


def test_save_roundtrip(tmp_path):
    path = tmp_path / "trace.json"
    save_chrome_trace(make_timeline(), path)
    payload = json.loads(path.read_text())
    assert payload["traceEvents"]


def test_engine_timeline_exports(tiny_or):
    from repro.distgnn import DistGnnEngine
    from repro.partitioning import RandomEdgePartitioner

    partition = RandomEdgePartitioner().partition(tiny_or, 4, seed=0)
    engine = DistGnnEngine(partition, 32, 32, 2)
    engine.simulate_epoch()
    payload = json.loads(
        timeline_to_chrome_trace(engine.cluster.timeline)
    )
    names = {e.get("name") for e in payload["traceEvents"]}
    assert "forward-l0" in names
