"""Tests for Chrome trace export."""

import json

import numpy as np

from repro.cluster import (
    Timeline,
    save_chrome_trace,
    timeline_to_chrome_trace,
)


def make_timeline():
    timeline = Timeline()
    timeline.add_phase("forward", np.array([1.0, 2.0]))
    timeline.add_phase("sync", np.array([0.5, 0.25]))
    return timeline


def test_trace_is_valid_json():
    payload = json.loads(timeline_to_chrome_trace(make_timeline()))
    assert "traceEvents" in payload


def test_event_count_and_threads():
    payload = json.loads(timeline_to_chrome_trace(make_timeline()))
    events = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
    assert len(events) == 4  # 2 phases x 2 machines
    assert {e["tid"] for e in events} == {0, 1}


def test_barrier_semantics_in_timestamps():
    """The second phase starts when the slowest machine of the first is
    done (2.0s -> 2e6 us)."""
    payload = json.loads(timeline_to_chrome_trace(make_timeline()))
    sync_events = [
        e for e in payload["traceEvents"] if e.get("name") == "sync"
    ]
    assert all(e["ts"] == 2e6 for e in sync_events)


def test_durations_microseconds():
    payload = json.loads(timeline_to_chrome_trace(make_timeline()))
    forward = [
        e for e in payload["traceEvents"] if e.get("name") == "forward"
    ]
    assert sorted(e["dur"] for e in forward) == [1e6, 2e6]


def test_save_roundtrip(tmp_path):
    path = tmp_path / "trace.json"
    save_chrome_trace(make_timeline(), path)
    payload = json.loads(path.read_text())
    assert payload["traceEvents"]


def test_thread_name_metadata_per_machine():
    payload = json.loads(timeline_to_chrome_trace(make_timeline()))
    names = {
        e["tid"]: e["args"]["name"]
        for e in payload["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "thread_name"
    }
    assert names == {0: "machine-0", 1: "machine-1"}


def test_process_name_metadata_present():
    payload = json.loads(timeline_to_chrome_trace(make_timeline()))
    process = [
        e for e in payload["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    ]
    assert len(process) == 1
    assert process[0]["args"]["name"] == "simulated-cluster"


def test_thread_sort_index_orders_machines_numerically():
    """Without sort indices viewers order threads lexically, putting
    machine-10 before machine-2; each machine must pin its numeric id."""
    timeline = Timeline()
    timeline.add_phase("forward", np.arange(1.0, 13.0))  # 12 machines
    payload = json.loads(timeline_to_chrome_trace(timeline))
    sort_indices = {
        e["tid"]: e["args"]["sort_index"]
        for e in payload["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "thread_sort_index"
    }
    assert sort_indices == {m: m for m in range(12)}


def test_interrupted_phase_flagged_in_args():
    timeline = make_timeline()
    timeline.add_phase("fault-detect", np.array([0.1, 0.1]),
                       interrupted=True)
    payload = json.loads(timeline_to_chrome_trace(timeline))
    flagged = [
        e for e in payload["traceEvents"]
        if e.get("name") == "fault-detect"
    ]
    assert flagged
    assert all(e["args"]["interrupted"] for e in flagged)
    assert all(e.get("cname") for e in flagged)


def test_marks_become_instant_events():
    timeline = make_timeline()
    timeline.add_mark("crash:machine1", kind="fault", machine=1)
    timeline.add_mark("restore-checkpoint", kind="recovery")
    payload = json.loads(timeline_to_chrome_trace(timeline))
    instants = {
        e["name"]: e for e in payload["traceEvents"] if e.get("ph") == "i"
    }
    assert instants["crash:machine1"]["tid"] == 1
    assert instants["crash:machine1"]["s"] == "t"
    assert instants["crash:machine1"]["ts"] == 2.5e6
    assert instants["restore-checkpoint"]["s"] == "g"
    assert instants["restore-checkpoint"]["args"]["kind"] == "recovery"


def test_save_is_atomic_no_temp_left_behind(tmp_path):
    path = tmp_path / "trace.json"
    save_chrome_trace(make_timeline(), path)
    save_chrome_trace(make_timeline(), path)  # overwrite in place
    assert json.loads(path.read_text(encoding="utf-8"))["traceEvents"]
    assert [p.name for p in tmp_path.iterdir()] == ["trace.json"]


def test_engine_timeline_exports(tiny_or):
    from repro.distgnn import DistGnnEngine
    from repro.partitioning import RandomEdgePartitioner

    partition = RandomEdgePartitioner().partition(tiny_or, 4, seed=0)
    engine = DistGnnEngine(partition, 32, 32, 2)
    engine.simulate_epoch()
    payload = json.loads(
        timeline_to_chrome_trace(engine.cluster.timeline)
    )
    names = {e.get("name") for e in payload["traceEvents"]}
    assert "forward-l0" in names
