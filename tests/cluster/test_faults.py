"""Tests for the fault-injection plan and recovery policy."""

import pickle

import pytest

from repro.cluster import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultSummary,
    RecoveryPolicy,
)


class TestFaultEvent:
    def test_valid_kinds(self):
        for kind in FAULT_KINDS:
            event = FaultEvent(kind, epoch=0, machine=0)
            assert event.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor", epoch=0, machine=0)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("crash", epoch=-1, machine=0)

    def test_negative_machine_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("crash", epoch=0, machine=-2)

    def test_nonpositive_magnitude_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("slowdown", epoch=0, machine=0, magnitude=0.0)


class TestFaultPlan:
    def test_events_sorted_by_epoch(self):
        plan = FaultPlan(
            (
                FaultEvent("crash", epoch=3, machine=0),
                FaultEvent("slowdown", epoch=1, machine=1),
            )
        )
        assert [e.epoch for e in plan.events] == [1, 3]

    def test_queries_by_epoch(self):
        plan = FaultPlan(
            (
                FaultEvent("crash", epoch=2, machine=0),
                FaultEvent("slowdown", epoch=2, machine=1),
                FaultEvent("lost-message", epoch=5, machine=0),
            )
        )
        assert len(plan.crashes_at(2)) == 1
        assert len(plan.slowdowns_at(2)) == 1
        assert plan.losses_at(2) == ()
        assert len(plan.losses_at(5)) == 1
        assert plan.events_at(4) == ()

    def test_bool_and_len(self):
        assert not FaultPlan()
        assert len(FaultPlan()) == 0
        plan = FaultPlan((FaultEvent("crash", epoch=0, machine=0),))
        assert plan
        assert len(plan) == 1

    def test_generate_deterministic(self):
        a = FaultPlan.generate(8, 10, crash_rate=0.1, slowdown_rate=0.2,
                               loss_rate=0.1, seed=42)
        b = FaultPlan.generate(8, 10, crash_rate=0.1, slowdown_rate=0.2,
                               loss_rate=0.1, seed=42)
        assert a == b

    def test_generate_seed_sensitive(self):
        a = FaultPlan.generate(8, 50, crash_rate=0.3, seed=0)
        b = FaultPlan.generate(8, 50, crash_rate=0.3, seed=1)
        assert a != b

    def test_generate_zero_rates_empty(self):
        assert not FaultPlan.generate(8, 10, seed=0)

    def test_generate_rate_one_hits_everything(self):
        plan = FaultPlan.generate(3, 4, crash_rate=1.0, seed=0)
        assert len(plan) == 3 * 4
        assert all(e.kind == "crash" for e in plan.events)

    def test_generate_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(2, 2, crash_rate=1.5)

    def test_plan_pickles(self):
        plan = FaultPlan.generate(4, 6, crash_rate=0.5, slowdown_rate=0.5,
                                  seed=3)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestRecoveryPolicy:
    def test_defaults_valid(self):
        policy = RecoveryPolicy()
        assert policy.checkpoint_every >= 1

    def test_backoff_is_geometric_sum(self):
        policy = RecoveryPolicy(max_retries=3, backoff_base_seconds=1.0,
                                backoff_factor=2.0)
        assert policy.backoff_seconds() == pytest.approx(1.0 + 2.0 + 4.0)

    def test_invalid_checkpoint_interval(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(checkpoint_every=0)

    def test_invalid_backoff_factor(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_factor=0.5)


def test_summary_total():
    summary = FaultSummary(crashes=2, slowdowns=1, lost_messages=3)
    assert summary.total_faults == 6
