"""Tests for the Cluster facade."""

import numpy as np
import pytest

from repro.cluster import Cluster, OutOfMemoryError
from repro.costmodel import CostModel


def test_compute_phase_updates_machines_and_timeline():
    cluster = Cluster(3)
    duration = cluster.run_compute_phase("fwd", np.array([1.0, 2.0, 0.5]))
    assert duration == 2.0
    assert cluster.machines[1].compute_seconds == 2.0
    assert cluster.timeline.total_seconds == 2.0


def test_comm_phase_records_traffic():
    cluster = Cluster(2)
    cluster.run_comm_phase(
        "sync", np.array([1000.0, 0.0]), np.array([0.0, 1000.0])
    )
    assert cluster.fabric.total_bytes == 1000
    assert cluster.machines[0].bytes_sent == 1000
    assert cluster.machines[1].bytes_received == 1000


def test_comm_phase_bisection_floor():
    """Evenly spread traffic is bounded by aggregate fabric bandwidth."""
    cm = CostModel()
    cluster = Cluster(4, cm)
    sent = np.full(4, 1000.0)
    duration = cluster.run_comm_phase("sync", sent, sent)
    floor = 2.0 * 4000.0 / 4
    assert duration == pytest.approx(cm.transfer_seconds(floor, 1))


def test_comm_phase_dominant_port_wins():
    cm = CostModel()
    cluster = Cluster(4, cm)
    sent = np.array([10000.0, 0.0, 0.0, 0.0])
    duration = cluster.run_comm_phase("sync", sent, np.zeros(4))
    assert duration == pytest.approx(cm.transfer_seconds(10000.0, 1))


def test_memory_budget_enforced():
    cm = CostModel(memory_budget_bytes=1000)
    cluster = Cluster(2, cm)
    cluster.allocate(1, "features", 2000)
    with pytest.raises(OutOfMemoryError) as err:
        cluster.check_memory_budget()
    assert err.value.machine_id == 1


def test_memory_balance():
    cluster = Cluster(2)
    cluster.allocate(0, "a", 100)
    cluster.allocate(1, "a", 300)
    assert cluster.memory_utilization_balance() == pytest.approx(1.5)


def test_needs_at_least_one_machine():
    with pytest.raises(ValueError):
        Cluster(0)
