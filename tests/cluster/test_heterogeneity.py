"""Failure/straggler injection via heterogeneous machine speeds."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.distgnn import DistGnnEngine
from repro.partitioning import HdrfPartitioner


def test_slow_machine_stretches_phase():
    cluster = Cluster(4, machine_speeds=np.array([1.0, 1.0, 0.5, 1.0]))
    duration = cluster.run_compute_phase("fwd", np.full(4, 1.0))
    assert duration == pytest.approx(2.0)  # the half-speed machine


def test_uniform_speeds_are_default():
    a = Cluster(3)
    b = Cluster(3, machine_speeds=np.ones(3))
    assert a.run_compute_phase("x", np.array([1.0, 2.0, 3.0])) == (
        b.run_compute_phase("x", np.array([1.0, 2.0, 3.0]))
    )


def test_invalid_speeds_rejected():
    with pytest.raises(ValueError):
        Cluster(2, machine_speeds=np.array([1.0]))
    with pytest.raises(ValueError):
        Cluster(2, machine_speeds=np.array([1.0, 0.0]))


def test_straggler_injection_slows_training(tiny_or):
    """A degraded machine hurts the barrier-synchronised epoch even when
    the partitioning itself is balanced."""
    partition = HdrfPartitioner().partition(tiny_or, 4, seed=0)
    healthy = DistGnnEngine(partition, 64, 64, 2)
    degraded = DistGnnEngine(
        partition, 64, 64, 2,
        machine_speeds=np.array([1.0, 1.0, 1.0, 0.25]),
    )
    assert (
        degraded.simulate_epoch().epoch_seconds
        > healthy.simulate_epoch().epoch_seconds
    )


def test_straggler_only_affects_compute(tiny_or):
    """Communication phases are network-bound, not CPU-bound."""
    partition = HdrfPartitioner().partition(tiny_or, 4, seed=0)
    healthy = DistGnnEngine(partition, 64, 64, 2)
    degraded = DistGnnEngine(
        partition, 64, 64, 2,
        machine_speeds=np.array([1.0, 1.0, 1.0, 0.25]),
    )
    healthy.simulate_epoch()
    degraded.simulate_epoch()
    h_phases = healthy.cluster.timeline.phase_totals()
    d_phases = degraded.cluster.timeline.phase_totals()
    assert d_phases["forward-l0"] > h_phases["forward-l0"]
    assert d_phases["forward-sync-l0"] == pytest.approx(
        h_phases["forward-sync-l0"]
    )
