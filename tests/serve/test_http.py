"""HTTP API integration: round trips, backpressure, cancellation."""

import json
import threading

import pytest

from repro.costmodel import DEFAULT_COST_MODEL
from repro.experiments import (
    TrainingParams,
    records_to_json,
    run_distgnn_grid,
)
from repro.graph import load_dataset
from repro.serve import (
    ServeClient,
    ServeError,
    SweepScheduler,
    make_server,
)


def _spec(**overrides):
    data = {
        "engine": "distgnn",
        "graph": "or",
        "partitioners": ["random"],
        "machines": [2],
        "params": [{"num_layers": 2}],
        "scale": "tiny",
    }
    data.update(overrides)
    return data


def _serve(scheduler):
    """Spin the HTTP server on a free port; return (server, client)."""
    server = make_server(scheduler, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    return server, thread, ServeClient(f"http://127.0.0.1:{port}")


@pytest.fixture
def running(tmp_path):
    """A started scheduler behind a live HTTP server."""
    scheduler = SweepScheduler(
        workers=1, data_dir=str(tmp_path), max_pending_cells=32
    )
    scheduler.start()
    server, thread, client = _serve(scheduler)
    yield client
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    scheduler.stop(wait=True)


@pytest.fixture
def parked(tmp_path):
    """A server whose scheduler never runs cells (queue stays full)."""
    scheduler = SweepScheduler(
        workers=1, data_dir=str(tmp_path), max_pending_cells=2
    )
    server, thread, client = _serve(scheduler)
    yield client
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    scheduler.stop(wait=True)


class TestRoundTrip:
    def test_submit_wait_records(self, running):
        job = running.submit(_spec())
        assert job["state"] in ("queued", "running", "done")
        done = running.wait(job["id"], timeout=120)
        assert done["state"] == "done"
        assert done["cells_done"] == 1
        full = running.job(job["id"], records=True)
        graph = load_dataset("OR", "tiny", seed=0)
        serial = run_distgnn_grid(
            graph, ["random"], [2], [TrainingParams(num_layers=2)],
            0, DEFAULT_COST_MODEL, num_epochs=1,
        )
        # Byte-identical to the serial grid of the same spec.
        assert (
            json.dumps(full["records"], sort_keys=True)
            == json.dumps(
                json.loads(records_to_json(serial)), sort_keys=True
            )
        )

    def test_two_tenants_overlap_dedup_accounting(self, running):
        first = running.submit(_spec(
            partitioners=["random", "hdrf"], tenant="alice", seed=11,
        ))
        running.wait(first["id"], timeout=120)
        second = running.submit(_spec(
            partitioners=["random", "dbh"], tenant="bob", seed=11,
        ))
        done = running.wait(second["id"], timeout=120)
        assert done["dedup_hits"] == 1
        queue = running.queue()
        assert queue["dedup_hits_total"] >= 1

    def test_jobs_listing(self, running):
        job = running.submit(_spec(seed=12))
        running.wait(job["id"], timeout=120)
        listed = running.jobs()
        assert any(j["id"] == job["id"] for j in listed)

    def test_healthz(self, running):
        health = running.healthz()
        assert health["status"] == "ok"
        assert health["started"] is True
        assert health["workers"] == 1
        assert health["obs_level"] == "off"
        assert health["max_pending_cells"] == 32
        assert 0.0 <= health["queue_saturation"] <= 1.0

    def test_metrics_disabled_daemon_says_so(self, running):
        text = running.metrics()
        assert text.startswith("#")
        assert "disabled" in text


class TestErrors:
    def test_invalid_spec_is_400(self, running):
        with pytest.raises(ServeError) as excinfo:
            running.submit(_spec(engine="horovod"))
        assert excinfo.value.status == 400
        assert "unknown engine" in str(excinfo.value)

    def test_unknown_job_is_404(self, running):
        with pytest.raises(ServeError) as excinfo:
            running.job("job-999999")
        assert excinfo.value.status == 404

    def test_unknown_endpoint_is_404(self, running):
        with pytest.raises(ServeError) as excinfo:
            running._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_queue_full_is_429_with_retry_after(self, parked):
        parked.submit(_spec(partitioners=["random", "hdrf"], seed=13))
        with pytest.raises(ServeError) as excinfo:
            parked.submit(_spec(partitioners=["dbh"], seed=13))
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after >= 1

    def test_delete_cancels_pending_job(self, parked):
        job = parked.submit(_spec(seed=14))
        cancelled = parked.cancel(job["id"])
        assert cancelled["state"] == "cancelled"
        assert parked.queue()["pending_cells"] == 0
