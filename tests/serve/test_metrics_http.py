"""HTTP error paths as metric sources, and /metrics reconciliation."""

import json
import threading
import time
import urllib.request

import pytest

from repro.obs.serve_metrics import parse_prometheus_totals
from repro.serve import (
    ServeClient,
    ServeError,
    SweepScheduler,
    make_server,
)
from repro.serve.server import MAX_BODY_BYTES


def _spec(**overrides):
    data = {
        "engine": "distgnn",
        "graph": "or",
        "partitioners": ["random"],
        "machines": [2],
        "params": [{"num_layers": 2}],
        "scale": "tiny",
    }
    data.update(overrides)
    return data


@pytest.fixture
def running(tmp_path):
    """A metrics-enabled scheduler behind a live HTTP server."""
    scheduler = SweepScheduler(
        workers=1, data_dir=str(tmp_path), max_pending_cells=2,
        obs_level="metrics",
    )
    scheduler.start()
    server = make_server(scheduler, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    client = ServeClient(f"http://127.0.0.1:{port}")
    yield client, scheduler
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    scheduler.stop(wait=True)


def _status_counts(client):
    """``serve.http_requests`` totals keyed by (route, status)."""
    counts = {}
    for line in client.metrics().splitlines():
        if not line.startswith("repro_serve_http_requests{"):
            continue
        labels = line.split("{", 1)[1].rsplit("}", 1)[0]
        fields = dict(
            part.split("=", 1) for part in labels.split(",")
        )
        key = (
            fields["route"].strip('"'), fields["status"].strip('"')
        )
        counts[key] = counts.get(key, 0) + float(
            line.rsplit(" ", 1)[1]
        )
    return counts


def _wait_for(predicate, timeout=10.0):
    """Poll until ``predicate()`` is truthy and return its value.

    Request metrics are recorded *after* the response bytes reach the
    client (the handler's ``finally`` block), so a scrape issued right
    after a response can race the server thread by a few microseconds.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value or time.monotonic() >= deadline:
            return value
        time.sleep(0.01)


class TestErrorPathsAreCounted:
    def test_body_cap_413(self, running):
        client, _ = running
        request = urllib.request.Request(
            client.base_url + "/jobs",
            data=b"x" * 8,
            headers={
                "Content-Type": "application/json",
                # Lie about the length: the server must refuse on the
                # declared size before reading anything.
                "Content-Length": str(MAX_BODY_BYTES + 1),
            },
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 413
        assert _wait_for(
            lambda: _status_counts(client).get(("/jobs", "413"))
        ) == 1

    def test_malformed_json_400(self, running):
        client, _ = running
        request = urllib.request.Request(
            client.base_url + "/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert _wait_for(
            lambda: _status_counts(client).get(("/jobs", "400"))
        ) == 1

    def test_unknown_route_404(self, running):
        client, _ = running
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/no/such/endpoint")
        assert excinfo.value.status == 404
        assert _wait_for(
            lambda: _status_counts(client).get(("<other>", "404"))
        ) == 1

    def test_invalid_spec_rejection_counter(self, running):
        client, _ = running
        with pytest.raises(ServeError) as excinfo:
            client.submit(_spec(engine="horovod"))
        assert excinfo.value.status == 400
        totals = parse_prometheus_totals(client.metrics())
        assert totals["serve.admission_rejected"] == 1
        assert _wait_for(
            lambda: _status_counts(client).get(("/jobs", "400"))
        ) == 1

    def test_queue_full_429_counter(self, tmp_path):
        # A never-started scheduler: the queue fills and stays full.
        scheduler = SweepScheduler(
            workers=1, data_dir=str(tmp_path / "parked"),
            max_pending_cells=2, obs_level="metrics",
        )
        server = make_server(scheduler, port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        client = ServeClient(
            f"http://127.0.0.1:{server.server_address[1]}"
        )
        try:
            client.submit(
                _spec(partitioners=["random", "hdrf"], seed=3)
            )
            with pytest.raises(ServeError) as excinfo:
                client.submit(_spec(partitioners=["dbh"], seed=3))
            assert excinfo.value.status == 429
            totals = parse_prometheus_totals(client.metrics())
            assert totals["serve.admission_rejected"] == 1
            assert totals["serve.queue_depth_total"] == 2
            assert _wait_for(
                lambda: _status_counts(client).get(("/jobs", "429"))
            ) == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            scheduler.stop(wait=True)


class TestReconciliation:
    def test_metrics_reconcile_with_scheduler_state(self, running):
        client, scheduler = running
        job = client.submit(_spec(tenant="alice"))
        done = client.wait(job["id"], timeout=120)
        assert done["state"] == "done"
        # Resubmit: served entirely from the dedup cache.
        again = client.submit(_spec(tenant="bob"))
        client.wait(again["id"], timeout=120)

        totals = parse_prometheus_totals(client.metrics())
        queue = client.queue()
        assert totals["serve.cells_computed"] == (
            queue["cells_computed_total"]
        )
        assert totals["serve.dedup_hits"] == (
            queue["dedup_hits_total"]
        )
        assert totals["serve.jobs_admitted"] == 2
        assert totals["serve.jobs_finished"] == 2
        assert totals["serve.tenant_cells_served"] == 2
        assert totals["serve.cell_cache_size"] == queue["cached_cells"]
        assert totals["serve.queue_depth_total"] == 0
        assert totals["serve.admission_to_first_record_seconds"] > 0
        assert (
            totals["serve.admission_to_first_record_p95_seconds"] > 0
        )
        # The daemon-side registry never leaked into the global one.
        from repro import obs

        assert obs.snapshot() == []

    def test_request_log_written(self, running, tmp_path):
        client, scheduler = running
        client.queue()
        from repro.obs.sink import read_jsonl

        # The sink is line-buffered; the event lands as soon as the
        # server thread's finally block runs, possibly just after the
        # client saw the response.
        def logged():
            try:
                events = read_jsonl(str(tmp_path / "requests.jsonl"))
            except OSError:
                return False
            return any(
                event["kind"] == "http-request"
                and event["name"] == "/queue"
                for event in events
            )

        assert _wait_for(logged)
        scheduler.metrics.close()
