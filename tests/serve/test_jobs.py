"""Sweep-job spec validation and job-state bookkeeping."""

import pytest

from repro.experiments import TrainingParams, reduced_grid
from repro.serve import Job, SweepJobSpec


def _spec_dict(**overrides):
    data = {
        "engine": "distgnn",
        "graph": "or",
        "partitioners": ["random", "hdrf"],
        "machines": [2, 4],
        "params": [{"num_layers": 2}],
    }
    data.update(overrides)
    return data


class TestSpecValidation:
    def test_from_dict_round_trips(self):
        spec = SweepJobSpec.from_dict(
            _spec_dict(tenant="alice", priority=3, seed=7)
        )
        assert spec.graph == "OR"  # normalised to the dataset key
        assert spec.params == (TrainingParams(num_layers=2),)
        again = SweepJobSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            SweepJobSpec.from_dict(_spec_dict(engine="horovod"))

    def test_unknown_graph_rejected(self):
        with pytest.raises(ValueError, match="unknown graph"):
            SweepJobSpec.from_dict(_spec_dict(graph="ZZ"))

    def test_partitioners_checked_against_engine(self):
        # metis is an edge-cut (DistDGL) partitioner, not a DistGNN one.
        with pytest.raises(ValueError, match="distgnn partitioner"):
            SweepJobSpec.from_dict(_spec_dict(partitioners=["metis"]))
        spec = SweepJobSpec.from_dict(
            _spec_dict(engine="distdgl", partitioners=["metis"])
        )
        assert spec.partitioners == ("metis",)

    def test_empty_machines_rejected(self):
        with pytest.raises(ValueError, match="machine count"):
            SweepJobSpec.from_dict(_spec_dict(machines=[]))

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            SweepJobSpec.from_dict(_spec_dict(shard_count=3))

    def test_unknown_params_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            SweepJobSpec.from_dict(
                _spec_dict(params=[{"learning_rate": 0.1}])
            )

    def test_named_grid_expands(self):
        spec = SweepJobSpec.from_dict(_spec_dict(params="reduced"))
        assert spec.params == tuple(reduced_grid())

    def test_unknown_named_grid_rejected(self):
        with pytest.raises(ValueError, match="named grid"):
            SweepJobSpec.from_dict(_spec_dict(params="everything"))

    def test_abort_on_requires_rules(self):
        with pytest.raises(ValueError, match="needs rules"):
            SweepJobSpec.from_dict(_spec_dict(abort_on="critical"))

    def test_cells_order_matches_grid_runners(self):
        spec = SweepJobSpec.from_dict(_spec_dict())
        assert spec.cells() == [
            (2, "random"), (2, "hdrf"), (4, "random"), (4, "hdrf"),
        ]
        assert spec.num_cells == 4


class TestJobState:
    def test_results_slots_and_records_order(self):
        spec = SweepJobSpec.from_dict(_spec_dict())
        job = Job(id="job-000001", spec=spec)
        assert job.results == [None] * 4
        assert not job.finished
        job.results[2] = ["r2a", "r2b"]
        job.results[0] = ["r0"]
        # Concatenation is in cell order, not arrival order.
        assert job.records() == ["r0", "r2a", "r2b"]

    def test_to_dict_summary(self):
        spec = SweepJobSpec.from_dict(_spec_dict(tenant="alice"))
        job = Job(id="job-000001", spec=spec, state="done")
        summary = job.to_dict()
        assert summary["id"] == "job-000001"
        assert summary["tenant"] == "alice"
        assert summary["cells_total"] == 4
        assert job.finished
