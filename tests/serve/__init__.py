"""Tests for the sweep-job service."""
