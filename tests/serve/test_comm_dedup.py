"""Regression: cell dedup fingerprints must include the comm config.

Two jobs that differ only in ``compression`` (or any comm knob) run
different simulations and must NOT share cells; identical comm configs
still dedupe. The *partition* cache is the designed exception: comm
knobs never change a partition, so partitions are shared across comm
configurations (see docs/communication.md).
"""

import pytest

from repro.experiments import CommConfig, records_to_json
from repro.experiments.cache import cache_size, clear_cache
from repro.serve import SweepScheduler


def _spec(**overrides):
    data = {
        "engine": "distgnn",
        "graph": "or",
        "partitioners": ["hdrf"],
        "machines": [2],
        "params": [{"num_layers": 2}],
        "scale": "tiny",
    }
    data.update(overrides)
    return data


@pytest.fixture
def scheduler(tmp_path):
    sched = SweepScheduler(
        workers=1, data_dir=str(tmp_path), max_pending_cells=32
    )
    yield sched
    sched.stop(wait=True)


class TestCommDedup:
    def test_jobs_differing_only_in_compression_do_not_dedupe(
        self, scheduler
    ):
        scheduler.start()
        base = scheduler.submit(_spec(tenant="alice"))
        base = scheduler.wait(base.id, timeout=120)
        compressed = scheduler.submit(
            _spec(tenant="bob", comm={"compression": "fp16"})
        )
        compressed = scheduler.wait(compressed.id, timeout=120)
        assert compressed.state == "done"
        assert compressed.dedup_hits == 0
        snapshot = scheduler.queue_snapshot()
        assert snapshot["cells_computed_total"] == 2
        # And the cells really computed different things.
        a = base.records()[0]
        b = compressed.records()[0]
        assert b.network_bytes < a.network_bytes
        assert b.comm_config == CommConfig(compression="fp16")

    def test_jobs_differing_only_in_refresh_do_not_dedupe(
        self, scheduler
    ):
        scheduler.start()
        first = scheduler.submit(
            _spec(comm={"compression": "fp16"}, num_epochs=2)
        )
        scheduler.wait(first.id, timeout=120)
        second = scheduler.submit(
            _spec(
                comm={"compression": "fp16", "refresh_interval": 2},
                num_epochs=2, tenant="other",
            )
        )
        second = scheduler.wait(second.id, timeout=120)
        assert second.dedup_hits == 0
        assert scheduler.queue_snapshot()["cells_computed_total"] == 2

    def test_identical_comm_jobs_still_dedupe(self, scheduler):
        scheduler.start()
        comm = {"compression": "int8", "cache_fraction": 0.25}
        first = scheduler.submit(
            _spec(engine="distdgl", partitioners=["metis"], comm=comm)
        )
        first = scheduler.wait(first.id, timeout=120)
        again = scheduler.submit(
            _spec(
                engine="distdgl", partitioners=["metis"], comm=comm,
                tenant="other",
            )
        )
        assert again.state == "done"
        assert again.dedup_hits == again.cells_total
        assert records_to_json(again.records()) == records_to_json(
            first.records()
        )

    def test_partition_cache_shared_across_comm_configs(
        self, scheduler
    ):
        # The partition is comm-independent by design: the second
        # job's cell reuses the cached partition even though its comm
        # config differs, so no new cache entry appears while the cell
        # itself is recomputed.
        clear_cache()
        scheduler.start()
        first = scheduler.submit(_spec())
        scheduler.wait(first.id, timeout=120)
        entries_after_first = cache_size()
        second = scheduler.submit(
            _spec(comm={"compression": "topk"}, tenant="other")
        )
        scheduler.wait(second.id, timeout=120)
        assert scheduler.queue_snapshot()["cells_computed_total"] == 2
        assert cache_size() == entries_after_first
