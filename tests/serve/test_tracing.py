"""End-to-end job tracing: admission → dispatch → engine spans."""

import time

import pytest

from repro.obs.sink import read_jsonl
from repro.serve import SweepScheduler


def _spec(**overrides):
    data = {
        "engine": "distgnn",
        "graph": "or",
        "partitioners": ["random"],
        "machines": [2],
        "params": [{"num_layers": 2}],
        "scale": "tiny",
        "tenant": "acme",
    }
    data.update(overrides)
    return data


def _wait(scheduler, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if scheduler.get(job_id).finished:
            return scheduler.get(job_id)
        time.sleep(0.05)
    raise TimeoutError(job_id)


@pytest.fixture
def traced(tmp_path):
    scheduler = SweepScheduler(
        workers=1, data_dir=str(tmp_path), obs_level="trace"
    )
    scheduler.start()
    yield scheduler, tmp_path
    scheduler.stop(wait=True)


class TestJobTrace:
    def test_one_job_links_all_layers(self, traced):
        scheduler, data_dir = traced
        job = scheduler.submit(_spec())
        assert _wait(scheduler, job.id).state == "done"
        scheduler.stop(wait=True)  # flush trace sinks

        server_events = read_jsonl(
            str(data_dir / job.id / "trace.jsonl")
        )
        names = [event["name"] for event in server_events]
        assert "serve.admission" in names
        assert "serve.dispatch" in names
        begin = names.index("serve.dispatch")
        assert server_events[begin]["kind"] == "span-begin"
        assert server_events[begin]["wait_seconds"] >= 0.0
        # Every server-side span carries the job and tenant identity.
        for event in server_events:
            assert event["job"] == job.id
            assert event["tenant"] == "acme"

        cell_traces = sorted(
            (data_dir / job.id).glob("trace-cell-*.jsonl")
        )
        assert len(cell_traces) == 1
        cell_events = read_jsonl(str(cell_traces[0]))
        kinds = {event["kind"] for event in cell_events}
        assert "span-begin" in kinds and "span-end" in kinds
        # Engine phase events inherit the ambient job/tenant context.
        phases = [
            event for event in cell_events
            if event["kind"] == "phase"
        ]
        assert phases, "engine emitted no phase events"
        for event in cell_events:
            assert event["job"] == job.id
            assert event["tenant"] == "acme"

    def test_dedup_cells_attributed_to_submitter(self, traced):
        scheduler, data_dir = traced
        first = scheduler.submit(_spec(tenant="alice"))
        assert _wait(scheduler, first.id).state == "done"
        second = scheduler.submit(_spec(tenant="bob"))
        assert _wait(scheduler, second.id).state == "done"
        scheduler.stop(wait=True)

        # The second job hit the cache: it has a server-side trace but
        # no freshly computed cell trace of its own.
        assert (data_dir / second.id / "trace.jsonl").exists()
        assert not list(
            (data_dir / second.id).glob("trace-cell-*.jsonl")
        )
        events = read_jsonl(str(data_dir / second.id / "trace.jsonl"))
        admission = [
            event for event in events
            if event["name"] == "serve.admission"
        ]
        assert admission and admission[0]["dedup_hits"] == 1
        assert admission[0]["tenant"] == "bob"

    def test_trace_context_cleared_after_cells(self, traced):
        scheduler, _ = traced
        job = scheduler.submit(_spec())
        assert _wait(scheduler, job.id).state == "done"
        from repro import obs

        # The inline cell path must not leak its ambient context (or
        # a sink) into the daemon process.
        assert obs.get_trace_context() == {}
        assert obs.get_sink() is None

    def test_no_trace_files_below_trace_level(self, tmp_path):
        scheduler = SweepScheduler(
            workers=1, data_dir=str(tmp_path), obs_level="metrics"
        )
        scheduler.start()
        try:
            job = scheduler.submit(_spec())
            assert _wait(scheduler, job.id).state == "done"
        finally:
            scheduler.stop(wait=True)
        assert not (tmp_path / job.id / "trace.jsonl").exists()
        assert not list(
            (tmp_path / job.id).glob("trace-cell-*.jsonl")
        )
