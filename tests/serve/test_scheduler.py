"""Scheduler integration: dedup, fair share, backpressure, aborts."""

import os
import time

import pytest

from repro.costmodel import DEFAULT_COST_MODEL
from repro.experiments import records_to_json, run_distgnn_grid
from repro.graph import load_dataset
from repro.serve import QueueFullError, SweepScheduler

#: An alert rule that fires on every record (epoch time is always > 0).
ALWAYS_CRITICAL = {
    "rules": [{
        "name": "always",
        "kind": "threshold",
        "metric": "distgnn.epoch_seconds",
        "severity": "critical",
        "op": ">",
        "value": 0.0,
    }]
}


def _spec(**overrides):
    data = {
        "engine": "distgnn",
        "graph": "or",
        "partitioners": ["random", "hdrf"],
        "machines": [2],
        "params": [{"num_layers": 2}],
        "scale": "tiny",
    }
    data.update(overrides)
    return data


@pytest.fixture
def scheduler(tmp_path):
    sched = SweepScheduler(
        workers=1, data_dir=str(tmp_path), max_pending_cells=32
    )
    yield sched
    sched.stop(wait=True)


class TestExecution:
    def test_records_match_serial_grid_exactly(self, scheduler):
        scheduler.start()
        job = scheduler.submit(_spec())
        job = scheduler.wait(job.id, timeout=120)
        assert job.state == "done"
        graph = load_dataset("OR", "tiny", seed=0)
        serial = run_distgnn_grid(
            graph, ["random", "hdrf"], [2], list(job.spec.params), 0,
            DEFAULT_COST_MODEL, num_epochs=1,
        )
        # Byte-identical to a serial run of the same spec.
        assert (
            records_to_json(job.records()) == records_to_json(serial)
        )
        # And persisted under the job's data dir.
        assert os.path.exists(
            os.path.join(scheduler.data_dir, job.id, "records.json")
        )

    def test_failed_cell_fails_the_job(self, scheduler, monkeypatch):
        # Sabotage execution before the runners start: every cell
        # errors, which must fail the job rather than kill a runner.
        job = scheduler.submit(_spec(num_epochs=1, seed=1))
        monkeypatch.setattr(
            scheduler._executor, "submit", _raise_on_submit
        )
        scheduler.start()
        job = scheduler.wait(job.id, timeout=120)
        assert job.state == "failed"
        assert "sabotaged" in job.error


def _raise_on_submit(task):
    raise RuntimeError("sabotaged")


class TestDedup:
    def test_overlapping_jobs_compute_shared_cells_once(
        self, scheduler
    ):
        scheduler.start()
        job_a = scheduler.submit(
            _spec(partitioners=["random", "hdrf"], tenant="alice")
        )
        scheduler.wait(job_a.id, timeout=120)
        job_b = scheduler.submit(
            _spec(partitioners=["random", "dbh"], tenant="bob")
        )
        job_b = scheduler.wait(job_b.id, timeout=120)
        assert job_b.state == "done"
        assert job_b.dedup_hits == 1  # shared (2, random) cell
        snapshot = scheduler.queue_snapshot()
        # 2 + 2 cells submitted, only 3 unique ones computed.
        assert snapshot["cells_computed_total"] == 3
        assert snapshot["dedup_hits_total"] == 1
        # Both jobs still hold the full record set for their spec.
        assert len(job_b.records()) == 2

    def test_identical_resubmission_served_from_cache(self, scheduler):
        scheduler.start()
        first = scheduler.submit(_spec(tenant="alice"))
        first = scheduler.wait(first.id, timeout=120)
        again = scheduler.submit(_spec(tenant="bob"))
        # Fully cached: terminal at submit time, no fresh compute.
        assert again.state == "done"
        assert again.dedup_hits == again.cells_total
        assert records_to_json(again.records()) == records_to_json(
            first.records()
        )

    def test_dedup_jobs_get_their_own_bus_replay(self, scheduler):
        from repro.obs.live import BusTailer

        scheduler.start()
        first = scheduler.submit(_spec())
        scheduler.wait(first.id, timeout=120)
        again = scheduler.submit(_spec(tenant="other"))
        assert again.state == "done"
        events = BusTailer(again.bus_dir).poll()
        kinds = [e["kind"] for e in events]
        assert kinds.count("cell-start") == again.cells_total
        assert kinds.count("cell-done") == again.cells_total
        assert kinds.count("record-done") == len(again.records())


class TestQueueDiscipline:
    def test_priority_runs_first(self, scheduler):
        # Not started: cells stay queued; pop order is inspectable.
        low = scheduler.submit(_spec(priority=0, seed=1, tenant="a"))
        high = scheduler.submit(_spec(priority=5, seed=2, tenant="a"))
        with scheduler._cond:
            first = scheduler._pop_next_key()
        assert first in [
            c.key for c in scheduler._cells.values()
        ]
        assert first[4] == 2  # the high-priority job's seed

    def test_fair_share_round_robin_within_priority(self, scheduler):
        # alice floods 4 cells, bob adds 2 at the same priority:
        # pops must alternate tenants, not drain alice first.
        scheduler.submit(_spec(
            tenant="alice", seed=1,
            partitioners=["random", "hdrf", "dbh", "hep10"],
        ))
        scheduler.submit(_spec(
            tenant="bob", seed=2, partitioners=["random", "hdrf"],
        ))
        tenants = []
        with scheduler._cond:
            while True:
                key = scheduler._pop_next_key()
                if key is None:
                    break
                tenants.append(scheduler._cells[key].tenant)
        assert tenants == [
            "alice", "bob", "alice", "bob", "alice", "alice",
        ]

    def test_queue_full_raises_and_admits_nothing(self, tmp_path):
        sched = SweepScheduler(
            workers=1, data_dir=str(tmp_path), max_pending_cells=3
        )
        with pytest.raises(QueueFullError) as excinfo:
            sched.submit(_spec(
                partitioners=["random", "hdrf", "dbh", "hep10"]
            ))
        assert excinfo.value.retry_after >= 1
        assert sched.jobs() == []  # nothing partially admitted
        assert sched.queue_snapshot()["pending_cells"] == 0

    def test_cancel_drains_pending_cells(self, scheduler):
        job = scheduler.submit(_spec(seed=3))
        assert scheduler.queue_snapshot()["pending_cells"] == 2
        job = scheduler.cancel(job.id)
        assert job.state == "cancelled"
        assert scheduler.queue_snapshot()["pending_cells"] == 0


class TestRuleAbort:
    def test_abort_on_cancels_remaining_cells_promptly(
        self, scheduler
    ):
        scheduler.start()
        job = scheduler.submit(_spec(
            partitioners=["random", "hdrf", "dbh", "hep10", "hep100"],
            rules=ALWAYS_CRITICAL, abort_on="critical", seed=4,
        ))
        started = time.monotonic()
        job = scheduler.wait(job.id, timeout=120)
        assert job.state == "aborted"
        assert job.findings  # the firing is recorded on the job
        # The first delivered cell fired; the rest never ran.
        assert job.cells_done == 1
        assert scheduler.queue_snapshot()["pending_cells"] == 0
        # Promptness: abort lands well under the 2s contract after
        # the (fast, tiny-scale) first cell.
        assert time.monotonic() - started < 60.0

    def test_warning_rules_record_findings_without_abort(
        self, scheduler
    ):
        rules = {
            "rules": [dict(
                ALWAYS_CRITICAL["rules"][0], severity="warning"
            )]
        }
        scheduler.start()
        job = scheduler.submit(_spec(rules=rules, seed=5))
        job = scheduler.wait(job.id, timeout=120)
        assert job.state == "done"
        assert len(job.findings) == len(job.records())
