"""Opt-in perf gate: ``pytest -m perf``.

Deselected by default (see ``addopts`` in pyproject.toml) so tier-1
stays fast; CI jobs that track the perf trajectory opt in explicitly.
The gate re-times every kernel and compares against the committed
``BENCH_partitioning.json`` baseline via ``scripts/check_perf.py``.
"""

import os
import subprocess
import sys

import pytest

pytestmark = pytest.mark.perf

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_no_kernel_regressed_beyond_threshold():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    result = subprocess.run(
        [
            sys.executable,
            os.path.join(_REPO_ROOT, "scripts", "check_perf.py"),
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=_REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
