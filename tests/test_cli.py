"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


def run(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


def test_datasets(capsys):
    code, out = run(["datasets"], capsys)
    assert code == 0
    for key in ("HW", "DI", "EN", "EU", "OR"):
        assert key in out
    assert "Hollywood-2011" in out


def test_partition_edge_cut(capsys, tmp_path):
    output = tmp_path / "assignment.txt"
    code, out = run(
        [
            "partition", "--graph", "OR", "--scale", "tiny",
            "--cut", "edge-cut", "--algorithm", "ldg",
            "-k", "4", "--output", str(output),
        ],
        capsys,
    )
    assert code == 0
    assert "LDG" in out
    assert "cut=" in out
    assignment = np.loadtxt(output, dtype=int)
    assert assignment.min() >= 0 and assignment.max() < 4


def test_partition_vertex_cut(capsys):
    code, out = run(
        [
            "partition", "--graph", "OR", "--scale", "tiny",
            "--cut", "vertex-cut", "--algorithm", "dbh", "-k", "4",
        ],
        capsys,
    )
    assert code == 0
    assert "DBH" in out
    assert "RF=" in out


def test_distgnn(capsys):
    code, out = run(
        [
            "distgnn", "--graph", "OR", "--scale", "tiny",
            "--partitioner", "hdrf", "-k", "4",
            "--feature-size", "32", "--hidden-dim", "32",
            "--num-layers", "2",
        ],
        capsys,
    )
    assert code == 0
    assert "speedup vs Random" in out
    assert "replication factor" in out


def test_distdgl(capsys):
    code, out = run(
        [
            "distdgl", "--graph", "OR", "--scale", "tiny",
            "--partitioner", "metis", "-k", "4",
            "--feature-size", "32", "--batch-size", "32",
        ],
        capsys,
    )
    assert code == 0
    assert "phase: fetch" in out
    assert "edge-cut ratio" in out


def test_amortize(capsys):
    code, out = run(
        [
            "amortize", "--graph", "OR", "--scale", "tiny",
            "-k", "4", "--epochs", "50", "--feature-size", "32",
        ],
        capsys,
    )
    assert code == 0
    assert "amortizes after" in out
    assert "hep100" in out


def test_edge_list_input(capsys, tmp_path):
    path = tmp_path / "g.txt"
    rng = np.random.default_rng(0)
    edges = rng.integers(0, 60, size=(300, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    path.write_text(
        "\n".join(f"{u} {v}" for u, v in edges) + "\n"
    )
    code, out = run(
        [
            "partition", "--edge-list", str(path),
            "--cut", "edge-cut", "--algorithm", "random", "-k", "2",
        ],
        capsys,
    )
    assert code == 0


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_module_entry_point():
    """python -m repro works (argparse wiring via __main__)."""
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro", "datasets"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0
    assert "OR" in result.stdout


def test_recommend(capsys):
    code, out = run(
        [
            "recommend", "--graph", "OR", "--scale", "tiny",
            "-k", "4", "--epochs", "20", "--feature-size", "32",
        ],
        capsys,
    )
    assert code == 0
    assert "best =" in out
    assert "hep100" in out
