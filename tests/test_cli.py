"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


def run(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


def test_datasets(capsys):
    code, out = run(["datasets"], capsys)
    assert code == 0
    for key in ("HW", "DI", "EN", "EU", "OR"):
        assert key in out
    assert "Hollywood-2011" in out


def test_partition_edge_cut(capsys, tmp_path):
    output = tmp_path / "assignment.txt"
    code, out = run(
        [
            "partition", "--graph", "OR", "--scale", "tiny",
            "--cut", "edge-cut", "--algorithm", "ldg",
            "-k", "4", "--output", str(output),
        ],
        capsys,
    )
    assert code == 0
    assert "LDG" in out
    assert "cut=" in out
    assignment = np.loadtxt(output, dtype=int)
    assert assignment.min() >= 0 and assignment.max() < 4


def test_partition_vertex_cut(capsys):
    code, out = run(
        [
            "partition", "--graph", "OR", "--scale", "tiny",
            "--cut", "vertex-cut", "--algorithm", "dbh", "-k", "4",
        ],
        capsys,
    )
    assert code == 0
    assert "DBH" in out
    assert "RF=" in out


def test_distgnn(capsys):
    code, out = run(
        [
            "distgnn", "--graph", "OR", "--scale", "tiny",
            "--partitioner", "hdrf", "-k", "4",
            "--feature-size", "32", "--hidden-dim", "32",
            "--num-layers", "2",
        ],
        capsys,
    )
    assert code == 0
    assert "speedup vs Random" in out
    assert "replication factor" in out


def test_distdgl(capsys):
    code, out = run(
        [
            "distdgl", "--graph", "OR", "--scale", "tiny",
            "--partitioner", "metis", "-k", "4",
            "--feature-size", "32", "--batch-size", "32",
        ],
        capsys,
    )
    assert code == 0
    assert "phase: fetch" in out
    assert "edge-cut ratio" in out


def test_amortize(capsys):
    code, out = run(
        [
            "amortize", "--graph", "OR", "--scale", "tiny",
            "-k", "4", "--epochs", "50", "--feature-size", "32",
        ],
        capsys,
    )
    assert code == 0
    assert "amortizes after" in out
    assert "hep100" in out


def test_edge_list_input(capsys, tmp_path):
    path = tmp_path / "g.txt"
    rng = np.random.default_rng(0)
    edges = rng.integers(0, 60, size=(300, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    path.write_text(
        "\n".join(f"{u} {v}" for u, v in edges) + "\n"
    )
    code, out = run(
        [
            "partition", "--edge-list", str(path),
            "--cut", "edge-cut", "--algorithm", "random", "-k", "2",
        ],
        capsys,
    )
    assert code == 0


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_module_entry_point():
    """python -m repro works (argparse wiring via __main__)."""
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro", "datasets"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0
    assert "OR" in result.stdout


def test_recommend(capsys):
    code, out = run(
        [
            "recommend", "--graph", "OR", "--scale", "tiny",
            "-k", "4", "--epochs", "20", "--feature-size", "32",
        ],
        capsys,
    )
    assert code == 0
    assert "best =" in out
    assert "hep100" in out


class TestObsCommands:
    """The telemetry-analysis subcommands: analyze, diff, dashboard."""

    @pytest.fixture()
    def record_file(self, tmp_path, tiny_or):
        from repro.experiments import (
            reduced_grid,
            run_distgnn,
            save_records,
        )

        params = next(iter(reduced_grid()))
        path = tmp_path / "records.json"
        records = [
            run_distgnn(tiny_or, name, 2, params, seed=0)
            for name in ("random", "hdrf")
        ]
        save_records(records, path)
        return str(path)

    def test_analyze_prints_and_saves(
        self, capsys, tmp_path, record_file
    ):
        out_path = tmp_path / "analysis.json"
        code, out = run(
            ["obs", "analyze", record_file, "-o", str(out_path)],
            capsys,
        )
        assert code == 0
        # Records ran without obs enabled, so there is no phase mix —
        # but the header and findings sections always render.
        assert "analysis: records.json" in out
        assert "findings" in out
        assert out_path.exists()

    def test_analyze_deterministic_output(
        self, capsys, tmp_path, record_file
    ):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        run(["obs", "analyze", record_file, "-o", str(first)], capsys)
        run(["obs", "analyze", record_file, "-o", str(second)], capsys)
        assert first.read_bytes() == second.read_bytes()

    def test_analyze_writes_dashboard(
        self, capsys, tmp_path, record_file
    ):
        dash = tmp_path / "dash.html"
        code, _ = run(
            ["obs", "analyze", record_file, "--dashboard", str(dash)],
            capsys,
        )
        assert code == 0
        html = dash.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert 'id="report-data"' in html

    def test_self_diff_is_clean_and_exits_zero(
        self, capsys, record_file
    ):
        code, out = run(
            ["obs", "diff", record_file, record_file], capsys
        )
        assert code == 0
        assert "clean" in out

    def test_diff_regression_exits_nonzero(
        self, capsys, tmp_path, tiny_or, record_file
    ):
        from repro.experiments import (
            reduced_grid,
            run_distgnn,
            save_records,
        )

        params = next(iter(reduced_grid()))
        other = tmp_path / "other.json"
        save_records(
            [run_distgnn(tiny_or, "random", 4, params, seed=0)], other
        )
        code, out = run(
            ["obs", "diff", record_file, str(other)], capsys
        )
        assert code == 1
        assert "cell" in out

    def test_analyze_strict_passes_healthy_run(
        self, capsys, record_file
    ):
        """--strict only fails on critical findings; a clean tiny
        sweep has none."""
        code, _ = run(
            ["obs", "analyze", record_file, "--strict"], capsys
        )
        assert code == 0

    def test_comma_separated_inputs_accepted(
        self, capsys, record_file
    ):
        code, _ = run(
            ["obs", "analyze", f"{record_file},{record_file}"], capsys
        )
        assert code == 0

    def test_dashboard_command(self, capsys, tmp_path, record_file):
        dash = tmp_path / "dash.html"
        code, _ = run(
            ["obs", "dashboard", record_file, "-o", str(dash)],
            capsys,
        )
        assert code == 0
        assert "</html>" in dash.read_text()


class TestOutOfCoreCommands:
    """`repro spool` and the --store drive of `repro partition`."""

    def test_spool_dataset_then_partition_store(self, capsys, tmp_path):
        store = tmp_path / "spool"
        code, out = run(
            ["spool", "--graph", "OR", "--scale", "tiny",
             "--out", str(store), "--chunk-size", "1000"],
            capsys,
        )
        assert code == 0
        assert "spooled" in out and "fingerprint" in out
        code, out = run(
            ["partition", "--store", str(store), "--cut", "vertex-cut",
             "--algorithm", "hdrf", "-k", "4"],
            capsys,
        )
        assert code == 0
        assert "HDRF" in out
        assert "peak memory" in out

    def test_spool_rmat_and_shuffle(self, capsys, tmp_path):
        store = tmp_path / "spool"
        buckets = tmp_path / "buckets"
        code, out = run(
            ["spool", "--rmat-edges", "5000", "--rmat-scale", "10",
             "--out", str(store), "--chunk-size", "1024"],
            capsys,
        )
        assert code == 0
        assert "5,000 edges" in out
        code, out = run(
            ["partition", "--store", str(store), "--cut", "vertex-cut",
             "--algorithm", "dbh", "-k", "4",
             "--shuffle-out", str(buckets)],
            capsys,
        )
        assert code == 0
        assert "buckets written" in out
        from repro.graph import EdgeChunkReader

        total = sum(
            EdgeChunkReader(str(buckets / f"part-{p:03d}")).num_edges
            for p in range(4)
        )
        assert total == 5000

    def test_partition_store_edge_cut(self, capsys, tmp_path):
        store = tmp_path / "spool"
        run(
            ["spool", "--graph", "OR", "--scale", "tiny",
             "--out", str(store)],
            capsys,
        )
        code, out = run(
            ["partition", "--store", str(store), "--cut", "edge-cut",
             "--algorithm", "ldg", "-k", "4"],
            capsys,
        )
        assert code == 0
        assert "LDG" in out

    def test_partition_store_rejects_non_streaming(
        self, capsys, tmp_path
    ):
        store = tmp_path / "spool"
        run(
            ["spool", "--graph", "OR", "--scale", "tiny",
             "--out", str(store)],
            capsys,
        )
        code, out = run(
            ["partition", "--store", str(store), "--cut", "edge-cut",
             "--algorithm", "metis", "-k", "4"],
            capsys,
        )
        assert code == 2
        assert "no streaming drive path" in out
