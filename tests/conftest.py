"""Shared fixtures: small deterministic graphs and splits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph, load_dataset, random_split

# A small hand-made graph: two 4-cliques joined by one bridge edge.
# Vertices 0-3 form clique A, 4-7 form clique B, edge (3, 4) bridges.
TWO_CLIQUES_EDGES = [
    (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
    (4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7),
    (3, 4),
]


@pytest.fixture
def two_cliques() -> Graph:
    return Graph.from_edge_list(TWO_CLIQUES_EDGES, name="two-cliques")


@pytest.fixture
def path_graph() -> Graph:
    """A 10-vertex path: the simplest connected sparse graph."""
    return Graph.from_edge_list(
        [(i, i + 1) for i in range(9)], name="path"
    )


@pytest.fixture
def star_graph() -> Graph:
    """Hub 0 connected to 1..19: the degenerate power-law case."""
    return Graph.from_edge_list(
        [(0, i) for i in range(1, 20)], name="star"
    )


@pytest.fixture(scope="session")
def tiny_or() -> Graph:
    return load_dataset("OR", "tiny")


@pytest.fixture(scope="session")
def tiny_di() -> Graph:
    return load_dataset("DI", "tiny")


@pytest.fixture(scope="session")
def tiny_hw() -> Graph:
    return load_dataset("HW", "tiny")


@pytest.fixture(scope="session")
def tiny_or_split(tiny_or):
    return random_split(tiny_or, seed=7)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
