"""Tests for edge-list IO."""

import numpy as np
import pytest

from repro.graph import Graph, read_edge_list, write_edge_list


def test_roundtrip(tmp_path, two_cliques):
    path = tmp_path / "g.txt"
    write_edge_list(two_cliques, path)
    loaded = read_edge_list(path, num_vertices=two_cliques.num_vertices)
    assert loaded.num_edges == two_cliques.num_edges
    assert np.array_equal(
        loaded.undirected_edges(), two_cliques.undirected_edges()
    )


def test_comments_and_blank_lines_skipped(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# header\n% konect\n\n0 1\n1 2\n")
    g = read_edge_list(path)
    assert g.num_edges == 2


def test_name_defaults_to_filename(tmp_path):
    path = tmp_path / "mygraph.txt"
    path.write_text("0 1\n")
    assert read_edge_list(path).name == "mygraph"


def test_directed_roundtrip(tmp_path):
    g = Graph(3, np.array([[0, 1], [1, 0], [1, 2]]), directed=True)
    path = tmp_path / "d.txt"
    write_edge_list(g, path)
    loaded = read_edge_list(path, directed=True)
    assert loaded.num_edges == 3


def test_malformed_line_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 1\n42\n")
    with pytest.raises(ValueError, match="bad.txt:2"):
        read_edge_list(path)


def test_extra_columns_ignored(tmp_path):
    path = tmp_path / "w.txt"
    path.write_text("0 1 3.5\n1 2 0.5\n")
    assert read_edge_list(path).num_edges == 2
