"""Tests for METIS-format IO."""

import numpy as np
import pytest

from repro.graph.metis_io import read_metis_graph, write_metis_graph


def test_roundtrip(two_cliques, tmp_path):
    path = tmp_path / "g.metis"
    write_metis_graph(two_cliques, path)
    loaded = read_metis_graph(path)
    assert loaded.num_vertices == two_cliques.num_vertices
    assert loaded.num_edges == two_cliques.num_edges
    assert np.array_equal(
        loaded.undirected_edges(), two_cliques.undirected_edges()
    )


def test_roundtrip_generated(tiny_or, tmp_path):
    path = tmp_path / "or.metis"
    write_metis_graph(tiny_or, path)
    loaded = read_metis_graph(path)
    assert loaded.num_edges == tiny_or.num_edges


def test_header_format(two_cliques, tmp_path):
    path = tmp_path / "g.metis"
    write_metis_graph(two_cliques, path)
    header = path.read_text().splitlines()[0]
    assert header == "8 13"


def test_isolated_vertices_survive(tmp_path):
    from repro.graph import Graph

    g = Graph(5, np.array([[0, 1]]))
    path = tmp_path / "iso.metis"
    write_metis_graph(g, path)
    loaded = read_metis_graph(path)
    assert loaded.num_vertices == 5
    assert loaded.num_edges == 1


def test_comments_skipped(tmp_path):
    path = tmp_path / "c.metis"
    path.write_text("3 2\n% a comment\n2\n1 3\n2\n")
    g = read_metis_graph(path)
    assert g.num_edges == 2


def test_weighted_rejected(tmp_path):
    path = tmp_path / "w.metis"
    path.write_text("2 1 1\n2 5\n1 5\n")
    with pytest.raises(ValueError, match="not supported"):
        read_metis_graph(path)


def test_edge_count_mismatch_rejected(tmp_path):
    path = tmp_path / "bad.metis"
    path.write_text("3 5\n2\n1 3\n2\n")
    with pytest.raises(ValueError, match="declares 5 edges"):
        read_metis_graph(path)


def test_vertex_count_mismatch_rejected(tmp_path):
    path = tmp_path / "bad2.metis"
    path.write_text("4 2\n2\n1 3\n2\n")
    with pytest.raises(ValueError, match="4 vertices"):
        read_metis_graph(path)


def test_out_of_range_neighbor_rejected(tmp_path):
    path = tmp_path / "bad3.metis"
    path.write_text("2 1\n9\n1\n")
    with pytest.raises(ValueError, match="out of range"):
        read_metis_graph(path)
