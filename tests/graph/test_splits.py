"""Tests for train/valid/test splits."""

import numpy as np
import pytest

from repro.graph import random_split


def test_default_fractions(tiny_or):
    split = random_split(tiny_or, seed=0)
    n = tiny_or.num_vertices
    assert abs(len(split.train) - 0.1 * n) <= 1
    assert abs(len(split.valid) - 0.1 * n) <= 1
    assert split.num_vertices == n


def test_partitions_are_disjoint_and_cover(tiny_or):
    split = random_split(tiny_or, seed=1)
    combined = np.concatenate([split.train, split.valid, split.test])
    assert np.array_equal(np.sort(combined), np.arange(tiny_or.num_vertices))


def test_deterministic(tiny_or):
    a = random_split(tiny_or, seed=5)
    b = random_split(tiny_or, seed=5)
    assert np.array_equal(a.train, b.train)


def test_seed_changes_split(tiny_or):
    a = random_split(tiny_or, seed=5)
    b = random_split(tiny_or, seed=6)
    assert not np.array_equal(a.train, b.train)


def test_train_mask(tiny_or):
    split = random_split(tiny_or, seed=0)
    mask = split.train_mask(tiny_or.num_vertices)
    assert mask.sum() == len(split.train)
    assert mask[split.train].all()


def test_role_codes(tiny_or):
    split = random_split(tiny_or, seed=0)
    roles = split.role_of(tiny_or.num_vertices)
    assert (roles[split.train] == 0).all()
    assert (roles[split.valid] == 1).all()
    assert (roles[split.test] == 2).all()


def test_invalid_fractions(tiny_or):
    with pytest.raises(ValueError):
        random_split(tiny_or, train_fraction=0.9, valid_fraction=0.3)
    with pytest.raises(ValueError):
        random_split(tiny_or, train_fraction=-0.1)
