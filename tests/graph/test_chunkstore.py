"""Tests for the on-disk edge chunk store."""

import numpy as np
import pytest

from repro.graph import (
    ChunkManifest,
    EdgeChunkReader,
    EdgeChunkWriter,
    rmat_graph,
    spool_edges,
    spool_graph,
)


def _edges(m, n=100, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, size=(m, 2), dtype=np.int64)


class TestRoundTrip:
    def test_read_back_equals_stream(self, tmp_path):
        edges = _edges(1000)
        reader = spool_edges([edges], str(tmp_path / "s"), chunk_size=64)
        assert np.array_equal(reader.read_all(), edges)
        assert reader.num_edges == 1000
        assert len(reader) == 1000 // 64 + 1

    def test_chunks_are_fixed_size_with_short_tail(self, tmp_path):
        reader = spool_edges(
            [_edges(150)], str(tmp_path / "s"), chunk_size=64
        )
        sizes = [c.shape[0] for c in reader.iter_chunks()]
        assert sizes == [64, 64, 22]

    def test_append_split_does_not_matter(self, tmp_path):
        edges = _edges(500)
        a = spool_edges([edges], str(tmp_path / "one"), chunk_size=100)
        parts = np.array_split(edges, 7)
        b = spool_edges(parts, str(tmp_path / "many"), chunk_size=100)
        assert np.array_equal(a.read_all(), b.read_all())
        assert a.fingerprint == b.fingerprint

    def test_empty_stream(self, tmp_path):
        reader = spool_edges([], str(tmp_path / "s"))
        assert reader.num_edges == 0
        assert len(reader) == 0
        assert reader.read_all().shape == (0, 2)
        assert reader.num_vertices == 1

    def test_inferred_vertex_count(self, tmp_path):
        reader = spool_edges(
            [np.array([[3, 7], [1, 2]])], str(tmp_path / "s")
        )
        assert reader.num_vertices == 8


class TestFingerprint:
    def test_invariant_to_chunk_size(self, tmp_path):
        edges = _edges(777)
        a = spool_edges([edges], str(tmp_path / "a"), chunk_size=64)
        b = spool_edges([edges], str(tmp_path / "b"), chunk_size=999)
        assert a.fingerprint == b.fingerprint

    def test_sensitive_to_content_and_order(self, tmp_path):
        edges = _edges(100)
        a = spool_edges([edges], str(tmp_path / "a"))
        b = spool_edges([edges[::-1]], str(tmp_path / "b"))
        assert a.fingerprint != b.fingerprint

    def test_verify_accepts_intact_store(self, tmp_path):
        reader = spool_edges(
            [_edges(300)], str(tmp_path / "s"), chunk_size=128
        )
        assert reader.verify()

    def test_verify_rejects_corrupted_chunk(self, tmp_path):
        reader = spool_edges(
            [_edges(300)], str(tmp_path / "s"), chunk_size=128
        )
        chunk_path = tmp_path / "s" / "chunk-00001.npy"
        chunk = np.load(chunk_path)
        chunk[0, 0] += 1
        np.save(str(chunk_path)[: -len(".npy")], chunk)
        assert not reader.verify()


class TestWriterContract:
    def test_refuses_existing_store(self, tmp_path):
        spool_edges([_edges(10)], str(tmp_path / "s"))
        with pytest.raises(FileExistsError):
            EdgeChunkWriter(str(tmp_path / "s"))

    def test_rejects_bad_shapes_and_ids(self, tmp_path):
        writer = EdgeChunkWriter(str(tmp_path / "s"))
        with pytest.raises(ValueError):
            writer.append(np.arange(6).reshape(2, 3))
        with pytest.raises(ValueError):
            writer.append(np.array([[-1, 0]]))

    def test_rejects_out_of_range_endpoint(self, tmp_path):
        writer = EdgeChunkWriter(str(tmp_path / "s"), num_vertices=4)
        writer.append(np.array([[0, 5]]))
        with pytest.raises(ValueError):
            writer.close()

    def test_append_after_close_rejected(self, tmp_path):
        writer = EdgeChunkWriter(str(tmp_path / "s"))
        writer.append(np.array([[0, 1]]))
        writer.close()
        with pytest.raises(RuntimeError):
            writer.append(np.array([[1, 2]]))

    def test_close_is_idempotent(self, tmp_path):
        writer = EdgeChunkWriter(str(tmp_path / "s"))
        writer.append(np.array([[0, 1]]))
        assert writer.close() == writer.close()

    def test_manifest_fields(self, tmp_path):
        spool_edges(
            [_edges(100)], str(tmp_path / "s"),
            chunk_size=32, num_vertices=100, directed=True,
        )
        manifest = ChunkManifest.load(str(tmp_path / "s"))
        assert manifest.num_edges == 100
        assert manifest.num_vertices == 100
        assert manifest.chunk_size == 32
        assert manifest.num_chunks == 4
        assert manifest.directed
        assert manifest.dtype == "int64"


class TestSpoolGraph:
    def test_undirected_view_matches_partitioner_stream(self, tmp_path):
        graph = rmat_graph(8, 500, seed=1)
        reader = spool_graph(graph, str(tmp_path / "s"), chunk_size=77)
        assert np.array_equal(reader.read_all(), graph.undirected_edges())
        assert not reader.directed
        assert reader.num_vertices == graph.num_vertices

    def test_arc_view_matches_stored_edges(self, tmp_path):
        graph = rmat_graph(8, 500, seed=1)
        reader = spool_graph(
            graph, str(tmp_path / "s"), undirected_view=False
        )
        assert np.array_equal(reader.read_all(), graph.edges)
        assert reader.directed == graph.directed
