"""Tests for the dataset registry."""

import pytest

from repro.graph import DATASET_KEYS, dataset_specs, load_dataset


def test_all_five_keys_present():
    assert set(DATASET_KEYS) == {"HW", "DI", "EN", "EU", "OR"}
    assert set(dataset_specs()) == set(DATASET_KEYS)


def test_specs_match_paper_table1_direction():
    specs = dataset_specs()
    assert not specs["HW"].directed  # Hollywood undirected
    assert specs["DI"].directed
    assert specs["EN"].directed
    assert specs["EU"].directed
    assert not specs["OR"].directed  # Orkut undirected


@pytest.mark.parametrize("key", DATASET_KEYS)
def test_tiny_scale_loads(key):
    g = load_dataset(key, "tiny")
    assert g.num_vertices > 100
    assert g.num_edges > 100
    assert g.name == key


def test_cache_returns_same_object():
    a = load_dataset("DI", "tiny")
    b = load_dataset("DI", "tiny")
    assert a is b


def test_case_insensitive():
    assert load_dataset("di", "tiny") is load_dataset("DI", "tiny")


def test_unknown_key_rejected():
    with pytest.raises(KeyError):
        load_dataset("XX")


def test_unknown_scale_rejected():
    with pytest.raises(ValueError):
        load_dataset("OR", "huge")


def test_structural_profiles():
    """Category fingerprints: road is sparse, collaboration is dense."""
    road = load_dataset("DI", "tiny")
    collab = load_dataset("HW", "tiny")
    assert road.degrees().mean() < 10
    assert collab.degrees().mean() > 3 * road.degrees().mean()
