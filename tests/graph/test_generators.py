"""Tests for the synthetic generators: determinism and structural shape."""

import numpy as np
import pytest

from repro.graph import (
    affiliation_graph,
    graph_stats,
    powerlaw_cluster_graph,
    preferential_attachment_graph,
    rmat_graph,
    road_network_graph,
    web_host_graph,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda s: rmat_graph(9, 3000, seed=s),
            lambda s: powerlaw_cluster_graph(400, 5, seed=s),
            lambda s: affiliation_graph(300, 150, seed=s),
            lambda s: road_network_graph(15, 15, seed=s),
            lambda s: preferential_attachment_graph(400, seed=s),
            lambda s: web_host_graph(400, seed=s),
        ],
    )
    def test_same_seed_same_graph(self, factory):
        a, b = factory(3), factory(3)
        assert a.num_vertices == b.num_vertices
        assert np.array_equal(a.edges, b.edges)

    def test_different_seed_different_graph(self):
        a = powerlaw_cluster_graph(400, 5, seed=1)
        b = powerlaw_cluster_graph(400, 5, seed=2)
        assert not np.array_equal(a.edges, b.edges)


class TestRmat:
    def test_size_and_direction(self):
        g = rmat_graph(9, 4000, seed=0)
        assert g.num_vertices == 512
        assert g.directed
        assert g.num_edges <= 4000

    def test_skewed_degrees(self):
        g = rmat_graph(10, 8000, seed=0)
        degrees = g.degrees()
        assert degrees.max() > 8 * degrees.mean()

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(5, 100, a=0.6, b=0.3, c=0.3)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            rmat_graph(0, 100)


class TestPowerlawCluster:
    def test_high_clustering(self):
        g = powerlaw_cluster_graph(600, 6, triangle_prob=0.8, seed=0)
        assert graph_stats(g).clustering > 0.1

    def test_undirected(self):
        assert not powerlaw_cluster_graph(100, 3, seed=0).directed

    def test_too_few_vertices_rejected(self):
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(5, 10)

    def test_bad_triangle_prob_rejected(self):
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(100, 3, triangle_prob=1.5)


class TestAffiliation:
    def test_dense_and_clustered(self):
        g = affiliation_graph(400, 300, mean_group_size=8, seed=0)
        stats = graph_stats(g)
        assert stats.mean_degree > 5
        assert stats.clustering > 0.3  # cliques everywhere

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            affiliation_graph(1, 10)


class TestRoadNetwork:
    def test_low_degree(self):
        g = road_network_graph(30, 30, seed=0)
        assert g.directed
        assert g.degrees().mean() < 10
        assert g.degrees().max() <= 16

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            road_network_graph(1, 5)


class TestPreferentialAttachment:
    def test_heavy_in_degree_tail(self):
        g = preferential_attachment_graph(800, mean_out_degree=8, seed=0)
        assert g.directed
        degrees = g.degrees()
        assert degrees.max() > 6 * degrees.mean()

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(2)


class TestCommunityStructure:
    """The planted communities must be discoverable - this is what the
    study's in-memory partitioners exploit."""

    def test_intra_community_edges_dominate(self):
        g = powerlaw_cluster_graph(
            600, 6, community_mean_size=60, inter_fraction=0.1, seed=0
        )
        # Community ids are contiguous blocks of ~60; a coarse proxy:
        block = g.edges // 60
        same = (block[:, 0] == block[:, 1]).mean()
        assert same > 0.5

    def test_web_host_locality(self):
        g = web_host_graph(800, host_mean_size=50, seed=0)
        block = g.edges // 50
        assert (block[:, 0] == block[:, 1]).mean() > 0.4
