"""Tests for the synthetic generators: determinism and structural shape."""

import numpy as np
import pytest

from repro.graph import (
    affiliation_graph,
    graph_stats,
    powerlaw_cluster_graph,
    preferential_attachment_graph,
    rmat_edge_chunks,
    rmat_graph,
    road_network_graph,
    web_host_graph,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda s: rmat_graph(9, 3000, seed=s),
            lambda s: powerlaw_cluster_graph(400, 5, seed=s),
            lambda s: affiliation_graph(300, 150, seed=s),
            lambda s: road_network_graph(15, 15, seed=s),
            lambda s: preferential_attachment_graph(400, seed=s),
            lambda s: web_host_graph(400, seed=s),
        ],
    )
    def test_same_seed_same_graph(self, factory):
        a, b = factory(3), factory(3)
        assert a.num_vertices == b.num_vertices
        assert np.array_equal(a.edges, b.edges)

    def test_different_seed_different_graph(self):
        a = powerlaw_cluster_graph(400, 5, seed=1)
        b = powerlaw_cluster_graph(400, 5, seed=2)
        assert not np.array_equal(a.edges, b.edges)


class TestRmat:
    def test_size_and_direction(self):
        g = rmat_graph(9, 4000, seed=0)
        assert g.num_vertices == 512
        assert g.directed
        # The generator loops until it has the requested count of
        # *distinct* edges (no 1.3x-oversample undershoot).
        assert g.num_edges == 4000

    def test_exact_count_across_sizes(self):
        for m in (1, 100, 2500):
            assert rmat_graph(9, m, seed=1).num_edges == m

    def test_edges_are_distinct(self):
        g = rmat_graph(8, 2000, seed=0)
        keys = g.edges[:, 0] * g.num_vertices + g.edges[:, 1]
        assert np.unique(keys).size == keys.size

    def test_saturation_rejected(self):
        # 2^3 vertices cannot host 200 distinct non-loop edges.
        with pytest.raises(ValueError):
            rmat_graph(3, 200, seed=0)

    def test_skewed_degrees(self):
        g = rmat_graph(10, 8000, seed=0)
        degrees = g.degrees()
        assert degrees.max() > 8 * degrees.mean()

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(5, 100, a=0.6, b=0.3, c=0.3)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            rmat_graph(0, 100)


class TestRmatChunks:
    """The chunk generator feeding the out-of-core pipeline."""

    def test_blocks_concatenate_to_exact_count(self):
        blocks = list(rmat_edge_chunks(10, 5000, seed=3))
        edges = np.concatenate(blocks)
        assert edges.shape == (5000, 2)
        assert edges.min() >= 0 and edges.max() < 1024

    def test_deterministic(self):
        a = np.concatenate(list(rmat_edge_chunks(9, 3000, seed=5)))
        b = np.concatenate(list(rmat_edge_chunks(9, 3000, seed=5)))
        assert np.array_equal(a, b)

    def test_distinct_chunks_match_rmat_graph(self):
        # rmat_graph is the distinct chunk stream finalised through
        # Graph (which canonicalises row order): same edge *set*.
        g = rmat_graph(9, 3000, seed=7)
        chunks = np.concatenate(
            list(rmat_edge_chunks(9, 3000, seed=7, distinct=True))
        )
        assert chunks.shape == g.edges.shape
        pack = lambda e: np.sort(e[:, 0] * g.num_vertices + e[:, 1])
        assert np.array_equal(pack(g.edges), pack(chunks))

    def test_undirected_rows_are_canonical(self):
        edges = np.concatenate(
            list(rmat_edge_chunks(9, 2000, seed=0, directed=False))
        )
        assert (edges[:, 0] <= edges[:, 1]).all()

    def test_no_self_loops(self):
        edges = np.concatenate(
            list(rmat_edge_chunks(8, 3000, seed=2))
        )
        assert (edges[:, 0] != edges[:, 1]).all()


class TestPowerlawCluster:
    def test_high_clustering(self):
        g = powerlaw_cluster_graph(600, 6, triangle_prob=0.8, seed=0)
        assert graph_stats(g).clustering > 0.1

    def test_undirected(self):
        assert not powerlaw_cluster_graph(100, 3, seed=0).directed

    def test_too_few_vertices_rejected(self):
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(5, 10)

    def test_bad_triangle_prob_rejected(self):
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(100, 3, triangle_prob=1.5)


class TestAffiliation:
    def test_dense_and_clustered(self):
        g = affiliation_graph(400, 300, mean_group_size=8, seed=0)
        stats = graph_stats(g)
        assert stats.mean_degree > 5
        assert stats.clustering > 0.3  # cliques everywhere

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            affiliation_graph(1, 10)


class TestRoadNetwork:
    def test_low_degree(self):
        g = road_network_graph(30, 30, seed=0)
        assert g.directed
        assert g.degrees().mean() < 10
        assert g.degrees().max() <= 16

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            road_network_graph(1, 5)


class TestPreferentialAttachment:
    def test_heavy_in_degree_tail(self):
        g = preferential_attachment_graph(800, mean_out_degree=8, seed=0)
        assert g.directed
        degrees = g.degrees()
        assert degrees.max() > 6 * degrees.mean()

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(2)


class TestCommunityStructure:
    """The planted communities must be discoverable - this is what the
    study's in-memory partitioners exploit."""

    def test_intra_community_edges_dominate(self):
        g = powerlaw_cluster_graph(
            600, 6, community_mean_size=60, inter_fraction=0.1, seed=0
        )
        # Community ids are contiguous blocks of ~60; a coarse proxy:
        block = g.edges // 60
        same = (block[:, 0] == block[:, 1]).mean()
        assert same > 0.5

    def test_web_host_locality(self):
        g = web_host_graph(800, host_mean_size=50, seed=0)
        block = g.edges // 50
        assert (block[:, 0] == block[:, 1]).mean() > 0.4
