"""Tests for graph transformations."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    filter_by_degree,
    largest_connected_component,
    relabel_compact,
    symmetrized,
)


@pytest.fixture
def two_components():
    """A triangle (0-2) and a 5-path (3-7), disconnected."""
    return Graph.from_edge_list(
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (5, 6), (6, 7)]
    )


def test_largest_component(two_components):
    lcc = largest_connected_component(two_components)
    assert lcc.num_vertices == 5  # the path wins
    assert lcc.num_edges == 4


def test_largest_component_of_connected_graph(two_cliques):
    lcc = largest_connected_component(two_cliques)
    assert lcc.num_vertices == two_cliques.num_vertices
    assert lcc.num_edges == two_cliques.num_edges


def test_filter_by_degree_min(star_graph):
    filtered = filter_by_degree(star_graph, min_degree=2)
    assert filtered.num_vertices == 1  # only the hub has degree >= 2


def test_filter_by_degree_max(star_graph):
    filtered = filter_by_degree(star_graph, min_degree=1, max_degree=1)
    assert filtered.num_vertices == 19  # leaves only
    assert filtered.num_edges == 0  # hub removed, so no edges survive


def test_filter_all_removed_rejected(path_graph):
    with pytest.raises(ValueError):
        filter_by_degree(path_graph, min_degree=100)


def test_relabel_compact():
    g = Graph(10, np.array([[2, 7], [7, 9]]))
    compact, mapping = relabel_compact(g)
    assert compact.num_vertices == 3
    assert mapping.tolist() == [2, 7, 9]
    assert compact.num_edges == 2


def test_relabel_compact_empty_rejected():
    g = Graph(4, np.zeros((0, 2), dtype=np.int64))
    with pytest.raises(ValueError):
        relabel_compact(g)


def test_symmetrized_collapses_reciprocal():
    g = Graph(3, np.array([[0, 1], [1, 0], [1, 2]]), directed=True)
    sym = symmetrized(g)
    assert not sym.directed
    assert sym.num_edges == 2


def test_symmetrized_noop_on_undirected(two_cliques):
    assert symmetrized(two_cliques) is two_cliques
