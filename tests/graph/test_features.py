"""Tests for synthetic classification tasks."""

import numpy as np
import pytest

from repro.gnn import Adam, build_model, full_graph_block, softmax_cross_entropy
from repro.graph import planted_community_task


def test_shapes_and_classes(tiny_or):
    task = planted_community_task(tiny_or, num_classes=6, feature_size=12)
    assert task.features.shape == (tiny_or.num_vertices, 12)
    assert task.labels.shape == (tiny_or.num_vertices,)
    assert task.num_classes == 6
    assert task.feature_size == 12


def test_block_labels_are_contiguous(tiny_or):
    task = planted_community_task(tiny_or, num_classes=4)
    # Non-decreasing label over vertex id == contiguous blocks.
    assert (np.diff(task.labels) >= 0).all()
    assert set(np.unique(task.labels)) == {0, 1, 2, 3}


def test_random_labels_cover_classes(tiny_or):
    task = planted_community_task(
        tiny_or, num_classes=4, label_mode="random", seed=1
    )
    assert len(np.unique(task.labels)) == 4
    assert (np.diff(task.labels) < 0).any()  # not sorted


def test_deterministic(tiny_or):
    a = planted_community_task(tiny_or, seed=3)
    b = planted_community_task(tiny_or, seed=3)
    assert np.array_equal(a.features, b.features)


def test_signal_is_learnable(tiny_or):
    task = planted_community_task(
        tiny_or, num_classes=4, feature_size=8, signal=2.0, noise=0.3
    )
    model = build_model("sage", 8, 16, 4, 2, seed=0)
    optimizer = Adam(lr=0.02)
    block = full_graph_block(tiny_or)
    first = last = None
    for _ in range(20):
        model.zero_grad()
        logits = model.forward([block, block], task.features)
        loss, grad = softmax_cross_entropy(logits, task.labels)
        model.backward(grad)
        optimizer.step(model.parameters())
        first = loss if first is None else first
        last = loss
    assert last < 0.5 * first


def test_more_classes_than_features_wraps(tiny_or):
    task = planted_community_task(
        tiny_or, num_classes=10, feature_size=4
    )
    assert task.num_classes == 10


def test_validation():
    import numpy as np

    from repro.graph import Graph

    g = Graph(4, np.array([[0, 1]]))
    with pytest.raises(ValueError):
        planted_community_task(g, num_classes=1)
    with pytest.raises(ValueError):
        planted_community_task(g, feature_size=0)
    with pytest.raises(ValueError):
        planted_community_task(g, label_mode="weird")
    with pytest.raises(ValueError):
        planted_community_task(g, noise=-1.0)
