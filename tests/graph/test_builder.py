"""Tests for GraphBuilder."""

import numpy as np
import pytest

from repro.graph import EdgeChunkReader, EdgeChunkWriter, GraphBuilder


def test_add_edge_and_build():
    builder = GraphBuilder()
    builder.add_edge(0, 1)
    builder.add_edge(1, 2)
    g = builder.build()
    assert g.num_vertices == 3
    assert g.num_edges == 2


def test_add_edges_iterable():
    builder = GraphBuilder(directed=True, name="d")
    builder.add_edges([(0, 1), (1, 0)])
    g = builder.build()
    assert g.directed
    assert g.name == "d"
    assert g.num_edges == 2


def test_add_edge_array_bulk():
    builder = GraphBuilder()
    builder.add_edge_array(np.array([[0, 1], [2, 3]]))
    builder.add_edge(3, 4)
    assert builder.num_pending_edges == 3
    g = builder.build()
    assert g.num_vertices == 5


def test_explicit_vertex_count():
    builder = GraphBuilder()
    builder.add_edge(0, 1)
    g = builder.build(num_vertices=10)
    assert g.num_vertices == 10


def test_negative_id_rejected():
    builder = GraphBuilder()
    with pytest.raises(ValueError):
        builder.add_edge(-1, 0)
    with pytest.raises(ValueError):
        builder.add_edge_array(np.array([[-1, 2]]))


def test_empty_build():
    g = GraphBuilder().build()
    assert g.num_vertices == 1
    assert g.num_edges == 0


def test_duplicate_edges_deduped_at_build():
    builder = GraphBuilder()
    builder.add_edges([(0, 1), (1, 0), (0, 1)])
    assert builder.build().num_edges == 1


def test_add_edges_ndarray_fast_path():
    array = np.array([[0, 1], [2, 3], [4, 5]])
    builder = GraphBuilder()
    builder.add_edges(array)
    # Bulk input must land as a single chunk, not a python loop of
    # scalar adds.
    assert builder.num_pending_edges == 3
    assert builder._sources == []
    assert builder.build().num_edges == 3


def test_add_edges_list_of_pairs_uses_bulk_path():
    builder = GraphBuilder()
    builder.add_edges([(0, 1), (2, 3)])
    assert builder._sources == []
    assert builder.num_pending_edges == 2


def test_add_edges_generator_still_works():
    builder = GraphBuilder()
    builder.add_edges((i, i + 1) for i in range(5))
    assert builder.num_pending_edges == 5
    assert builder.build().num_edges == 5


def test_add_edges_negative_rejected_on_bulk_path():
    builder = GraphBuilder()
    with pytest.raises(ValueError):
        builder.add_edges([(0, 1), (2, -3)])


def test_spill_to_round_trips_and_clears(tmp_path):
    builder = GraphBuilder()
    builder.add_edge(9, 3)
    builder.add_edge_array(np.array([[1, 2], [3, 4]]))
    writer = EdgeChunkWriter(str(tmp_path / "s"), chunk_size=2)
    assert builder.spill_to(writer) == 3
    assert builder.num_pending_edges == 0
    builder.add_edge(5, 6)
    assert builder.spill_to(writer) == 1
    writer.close()
    reader = EdgeChunkReader(str(tmp_path / "s"))
    assert np.array_equal(
        reader.read_all(),
        np.array([[1, 2], [3, 4], [9, 3], [5, 6]]),
    )
