"""Tests for the core Graph structure."""

import numpy as np
import pytest

from repro.graph import Graph, build_csr


class TestBuildCsr:
    def test_groups_targets_by_source(self):
        indptr, indices = build_csr(
            3, np.array([0, 0, 2, 1]), np.array([1, 2, 0, 2])
        )
        assert indptr.tolist() == [0, 2, 3, 4]
        assert indices[indptr[0] : indptr[1]].tolist() == [1, 2]
        assert indices[indptr[2] : indptr[3]].tolist() == [0]

    def test_targets_sorted_within_source(self):
        indptr, indices = build_csr(
            2, np.array([0, 0, 0]), np.array([1, 0, 1])
        )
        assert indices[: indptr[1]].tolist() == [0, 1, 1]

    def test_empty(self):
        indptr, indices = build_csr(
            4, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert indptr.tolist() == [0, 0, 0, 0, 0]
        assert indices.size == 0

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            build_csr(2, np.array([0]), np.array([0, 1]))


class TestGraphConstruction:
    def test_basic_properties(self, two_cliques):
        assert two_cliques.num_vertices == 8
        assert two_cliques.num_edges == 13
        assert not two_cliques.directed

    def test_rejects_bad_edge_shape(self):
        with pytest.raises(ValueError):
            Graph(3, np.array([1, 2, 3]))

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(ValueError):
            Graph(2, np.array([[0, 5]]))

    def test_rejects_nonpositive_vertex_count(self):
        with pytest.raises(ValueError):
            Graph(0, np.zeros((0, 2), dtype=np.int64))

    def test_undirected_dedups_mirrored_edges(self):
        g = Graph(3, np.array([[0, 1], [1, 0], [1, 2]]))
        assert g.num_edges == 2

    def test_directed_keeps_both_arcs(self):
        g = Graph(3, np.array([[0, 1], [1, 0]]), directed=True)
        assert g.num_edges == 2

    def test_duplicate_arcs_removed(self):
        g = Graph(3, np.array([[0, 1], [0, 1]]), directed=True)
        assert g.num_edges == 1


class TestAdjacency:
    def test_neighbors_symmetric(self, two_cliques):
        assert two_cliques.neighbors(0).tolist() == [1, 2, 3]
        assert two_cliques.neighbors(3).tolist() == [0, 1, 2, 4]

    def test_degrees(self, two_cliques):
        degrees = two_cliques.degrees()
        assert degrees[3] == 4 and degrees[4] == 4
        assert degrees[0] == 3

    def test_directed_out_csr_differs_from_symmetric(self):
        g = Graph(3, np.array([[0, 1], [0, 2]]), directed=True)
        assert g.out_degrees().tolist() == [2, 0, 0]
        assert g.degrees().tolist() == [2, 1, 1]

    def test_symmetric_csr_handles_self_loop(self):
        g = Graph(2, np.array([[0, 0], [0, 1]]))
        degrees = g.degrees()
        assert degrees[0] >= 2  # loop plus edge to 1

    def test_undirected_edges_canonical(self):
        g = Graph(4, np.array([[3, 1], [1, 3], [0, 2]]), directed=True)
        und = g.undirected_edges()
        assert (und[:, 0] <= und[:, 1]).all()
        assert und.shape[0] == 2  # reciprocal arcs collapse


class TestSubgraph:
    def test_induced_subgraph_relabels(self, two_cliques):
        sub = two_cliques.subgraph([0, 1, 2, 3])
        assert sub.num_vertices == 4
        assert sub.num_edges == 6  # clique A intact

    def test_subgraph_drops_cross_edges(self, two_cliques):
        sub = two_cliques.subgraph([3, 4])
        assert sub.num_edges == 1  # only the bridge

    def test_from_edge_list_infers_vertex_count(self):
        g = Graph.from_edge_list([(0, 5)])
        assert g.num_vertices == 6
