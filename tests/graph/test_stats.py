"""Tests for graph statistics."""

from repro.graph import Graph, graph_stats
from repro.graph.stats import clustering_sample, degree_skew


def test_clique_clustering_is_one(two_cliques):
    sub = two_cliques.subgraph([0, 1, 2])  # a triangle
    assert clustering_sample(sub) == 1.0


def test_path_clustering_is_zero(path_graph):
    assert clustering_sample(path_graph) == 0.0


def test_star_skew(star_graph):
    # Hub degree 19, mean degree 2*19/20 = 1.9 -> skew = 10.
    assert abs(degree_skew(star_graph) - 10.0) < 1e-9


def test_stats_bundle(two_cliques):
    stats = graph_stats(two_cliques)
    assert stats.num_vertices == 8
    assert stats.num_edges == 13
    assert stats.max_degree == 4
    assert 0.5 < stats.clustering <= 1.0
    assert "|V|" in stats.as_row()


def test_edgeless_graph():
    import numpy as np

    g = Graph(3, np.zeros((0, 2), dtype=np.int64))
    stats = graph_stats(g)
    assert stats.mean_degree == 0.0
    assert stats.clustering == 0.0
    assert stats.degree_skew == 0.0
