"""Tests for activation functions and their gradients."""

import numpy as np
import pytest

from repro.gnn.activations import (
    leaky_relu,
    leaky_relu_grad,
    relu,
    relu_grad,
    softmax,
)


def test_relu_values():
    x = np.array([-2.0, 0.0, 3.0])
    assert relu(x).tolist() == [0.0, 0.0, 3.0]


def test_relu_grad_masks_negatives():
    x = np.array([-1.0, 2.0])
    up = np.array([5.0, 5.0])
    assert relu_grad(x, up).tolist() == [0.0, 5.0]


def test_leaky_relu_slope():
    x = np.array([-10.0, 10.0])
    out = leaky_relu(x, slope=0.1)
    assert out.tolist() == [-1.0, 10.0]


def test_leaky_relu_grad_finite_difference():
    rng = np.random.default_rng(0)
    x = rng.normal(size=20)
    up = rng.normal(size=20)
    eps = 1e-6
    numeric = (leaky_relu(x + eps) - leaky_relu(x - eps)) / (2 * eps) * up
    analytic = leaky_relu_grad(x, up)
    assert np.allclose(numeric, analytic, atol=1e-6)


def test_softmax_rows_sum_to_one():
    rng = np.random.default_rng(0)
    probs = softmax(rng.normal(size=(5, 7)), axis=1)
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert (probs > 0).all()


def test_softmax_shift_invariant():
    x = np.array([[1.0, 2.0, 3.0]])
    assert np.allclose(softmax(x), softmax(x + 100.0))


def test_softmax_numerically_stable_for_large_logits():
    x = np.array([[1000.0, 0.0]])
    probs = softmax(x)
    assert np.isfinite(probs).all()
    assert probs[0, 0] == pytest.approx(1.0)
