"""Gradient and behaviour tests for SAGE/GCN/GAT layers.

Every layer's backward pass is verified against central finite differences
for both the input features and every parameter tensor.
"""

import numpy as np
import pytest

from repro.gnn import Block, GatLayer, GcnLayer, SageLayer

LAYER_TYPES = [SageLayer, GcnLayer, GatLayer]


@pytest.fixture
def block():
    """Small bipartite block: 3 dst, 6 src, 7 messages."""
    return Block(
        src_ids=np.arange(6),
        num_dst=3,
        edge_src=np.array([3, 4, 5, 0, 1, 2, 5]),
        edge_dst=np.array([0, 0, 1, 1, 2, 2, 2]),
    )


def numeric_input_grad(layer, block, x, upstream, eps=1e-6):
    grad = np.zeros_like(x)
    for i in range(x.shape[0]):
        for j in range(x.shape[1]):
            xp, xm = x.copy(), x.copy()
            xp[i, j] += eps
            xm[i, j] -= eps
            fp = (layer.forward(block, xp) * upstream).sum()
            fm = (layer.forward(block, xm) * upstream).sum()
            grad[i, j] = (fp - fm) / (2 * eps)
    return grad


def numeric_param_grad(layer, block, x, upstream, name, eps=1e-6):
    param = layer.params[name]
    grad = np.zeros_like(param)
    flat = param.reshape(-1)
    gflat = grad.reshape(-1)
    for idx in range(flat.size):
        old = flat[idx]
        flat[idx] = old + eps
        fp = (layer.forward(block, x) * upstream).sum()
        flat[idx] = old - eps
        fm = (layer.forward(block, x) * upstream).sum()
        flat[idx] = old
        gflat[idx] = (fp - fm) / (2 * eps)
    return grad


@pytest.mark.parametrize("layer_type", LAYER_TYPES)
class TestGradients:
    def test_input_gradient(self, layer_type, block, rng):
        layer = layer_type(4, 3, seed=1)
        x = rng.normal(size=(6, 4))
        upstream = rng.normal(size=(3, 3))
        layer.forward(block, x)
        analytic = layer.backward(upstream)
        numeric = numeric_input_grad(layer, block, x, upstream)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_parameter_gradients(self, layer_type, block, rng):
        layer = layer_type(4, 3, seed=1)
        x = rng.normal(size=(6, 4))
        upstream = rng.normal(size=(3, 3))
        layer.zero_grad()
        layer.forward(block, x)
        layer.backward(upstream)
        analytic = {k: v.copy() for k, v in layer.grads.items()}
        for name in layer.params:
            numeric = numeric_param_grad(layer, block, x, upstream, name)
            assert np.allclose(
                analytic[name], numeric, atol=1e-5
            ), f"{layer_type.__name__}.{name}"


@pytest.mark.parametrize("layer_type", LAYER_TYPES)
class TestShapeAndState:
    def test_output_shape(self, layer_type, block, rng):
        layer = layer_type(4, 5, seed=0)
        out = layer.forward(block, rng.normal(size=(6, 4)))
        assert out.shape == (3, 5)

    def test_zero_grad(self, layer_type, block, rng):
        layer = layer_type(4, 3, seed=0)
        layer.forward(block, rng.normal(size=(6, 4)))
        layer.backward(rng.normal(size=(3, 3)))
        layer.zero_grad()
        assert all((g == 0).all() for g in layer.grads.values())

    def test_num_params_positive(self, layer_type):
        assert layer_type(4, 3).num_params > 0

    def test_rejects_bad_dims(self, layer_type):
        with pytest.raises(ValueError):
            layer_type(0, 3)


class TestSageSemantics:
    def test_mean_aggregation(self, rng):
        """A destination with two identical neighbours aggregates to that
        same value (mean, not sum)."""
        block = Block(
            src_ids=np.arange(3),
            num_dst=1,
            edge_src=np.array([1, 2]),
            edge_dst=np.array([0, 0]),
        )
        layer = SageLayer(2, 2, seed=0)
        x = np.array([[0.0, 0.0], [1.0, 2.0], [1.0, 2.0]])
        out_two = layer.forward(block, x)
        single = Block(
            src_ids=np.arange(2),
            num_dst=1,
            edge_src=np.array([1]),
            edge_dst=np.array([0]),
        )
        out_one = layer.forward(single, x[:2])
        assert np.allclose(out_two, out_one)

    def test_isolated_destination_uses_self_only(self):
        block = Block(
            src_ids=np.arange(1), num_dst=1,
            edge_src=np.zeros(0, np.int64), edge_dst=np.zeros(0, np.int64),
        )
        layer = SageLayer(2, 2, seed=0)
        x = np.array([[1.0, -1.0]])
        out = layer.forward(block, x)
        expected = x @ layer.params["w_self"] + layer.params["bias"]
        assert np.allclose(out, expected)


class TestGatSemantics:
    def test_attention_is_convex_combination(self, rng):
        """With bias zero, a GAT output lies in the convex hull of the
        projected neighbour features."""
        block = Block(
            src_ids=np.arange(4), num_dst=1,
            edge_src=np.array([1, 2, 3]), edge_dst=np.array([0, 0, 0]),
        )
        layer = GatLayer(3, 2, seed=0)
        layer.params["bias"][:] = 0.0
        x = rng.normal(size=(4, 3))
        out = layer.forward(block, x)
        z = x @ layer.params["weight"]
        lo = z[1:].min(axis=0) - 1e-9
        hi = z[1:].max(axis=0) + 1e-9
        assert ((out >= lo) & (out <= hi)).all()
