"""Tests for multi-layer models."""

import numpy as np
import pytest

from repro.gnn import (
    ARCHITECTURES,
    Adam,
    build_model,
    full_graph_block,
    softmax_cross_entropy,
)


@pytest.mark.parametrize("arch", ARCHITECTURES)
class TestBuildModel:
    def test_layer_dims(self, arch):
        model = build_model(arch, 16, 32, 5, 3)
        assert model.num_layers == 3
        assert model.layers[0].dim_in == 16
        assert model.layers[1].dim_in == 32
        assert model.layers[-1].dim_out == 5

    def test_forward_full_graph(self, arch, two_cliques, rng):
        model = build_model(arch, 4, 8, 3, 2, seed=0)
        block = full_graph_block(two_cliques)
        logits = model.forward([block, block], rng.normal(size=(8, 4)))
        assert logits.shape == (8, 3)

    def test_training_reduces_loss(self, arch, two_cliques, rng):
        """Clique membership is learnable from features in a few steps."""
        labels = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        x = rng.normal(size=(8, 4)) * 0.1
        x[:4, 0] += 1.0
        x[4:, 1] += 1.0
        model = build_model(arch, 4, 8, 2, 2, seed=0)
        optimizer = Adam(lr=0.05)
        block = full_graph_block(two_cliques)
        losses = []
        for _ in range(40):
            model.zero_grad()
            logits = model.forward([block, block], x)
            loss, grad = softmax_cross_entropy(logits, labels)
            model.backward(grad)
            optimizer.step(model.parameters())
            losses.append(loss)
        assert losses[-1] < 0.5 * losses[0]


def test_unknown_arch_rejected():
    with pytest.raises(ValueError):
        build_model("transformer", 4, 8, 2, 2)


def test_zero_layers_rejected():
    with pytest.raises(ValueError):
        build_model("sage", 4, 8, 2, 0)


def test_block_count_mismatch_rejected(two_cliques, rng):
    model = build_model("sage", 4, 8, 2, 2)
    block = full_graph_block(two_cliques)
    with pytest.raises(ValueError):
        model.forward([block], rng.normal(size=(8, 4)))


def test_feature_size_mismatch_rejected(two_cliques, rng):
    model = build_model("sage", 4, 8, 2, 2)
    block = full_graph_block(two_cliques)
    with pytest.raises(ValueError):
        model.forward([block, block], rng.normal(size=(5, 4)))


def test_num_params_counts_all_layers():
    model = build_model("sage", 4, 8, 2, 2)
    manual = sum(layer.num_params for layer in model.layers)
    assert model.num_params == manual


def test_state_copy_detached():
    model = build_model("sage", 4, 8, 2, 2)
    snapshot = model.state_copy()
    for p, _ in model.parameters():
        p += 1.0
    snapshot2 = model.state_copy()
    assert not np.allclose(snapshot[0], snapshot2[0])


class TestMultiHeadGat:
    def test_hidden_layers_multi_head(self):
        model = build_model("gat", 8, 16, 4, 3, seed=0, num_heads=4)
        from repro.gnn.layers import GatLayer, MultiHeadGatLayer

        assert isinstance(model.layers[0], MultiHeadGatLayer)
        assert isinstance(model.layers[1], MultiHeadGatLayer)
        assert isinstance(model.layers[2], GatLayer)  # output single-head

    def test_forward_backward(self, two_cliques, rng):
        model = build_model("gat", 4, 8, 3, 2, seed=0, num_heads=2)
        block = full_graph_block(two_cliques)
        logits = model.forward([block, block], rng.normal(size=(8, 4)))
        assert logits.shape == (8, 3)
        model.backward(rng.normal(size=logits.shape))

    def test_heads_rejected_for_other_archs(self):
        with pytest.raises(ValueError):
            build_model("sage", 4, 8, 2, 2, num_heads=4)
