"""Tests for message-flow blocks."""

import numpy as np
import pytest

from repro.gnn import Block, full_graph_block


def test_block_validation_num_dst():
    with pytest.raises(ValueError):
        Block(np.arange(3), 5, np.zeros(0, np.int64), np.zeros(0, np.int64))


def test_block_validation_edge_ranges():
    with pytest.raises(ValueError):
        Block(np.arange(3), 2, np.array([5]), np.array([0]))
    with pytest.raises(ValueError):
        Block(np.arange(3), 2, np.array([0]), np.array([2]))


def test_block_counts():
    block = Block(
        np.array([7, 8, 9, 10]), 2, np.array([2, 3, 3]), np.array([0, 0, 1])
    )
    assert block.num_src == 4
    assert block.num_edges == 3
    assert block.in_degrees().tolist() == [2, 1]


def test_full_graph_block_covers_all_messages(two_cliques):
    block = full_graph_block(two_cliques)
    assert block.num_dst == 8
    assert block.num_src == 8
    # Every undirected edge contributes two messages.
    assert block.num_edges == 2 * two_cliques.num_edges


def test_full_graph_block_edges_match_adjacency(two_cliques):
    block = full_graph_block(two_cliques)
    # Messages into vertex 3 come exactly from its neighbours.
    senders = block.edge_src[block.edge_dst == 3]
    assert sorted(block.src_ids[senders].tolist()) == [0, 1, 2, 4]
