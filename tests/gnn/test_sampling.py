"""Tests for neighbourhood sampling."""

import numpy as np
import pytest

from repro.gnn import build_model, default_fanouts, sample_blocks


class TestDefaultFanouts:
    def test_paper_values(self):
        assert default_fanouts(2) == (25, 20)
        assert default_fanouts(3) == (15, 10, 5)
        assert default_fanouts(4) == (10, 10, 5, 5)

    def test_unsupported_depth(self):
        with pytest.raises(ValueError):
            default_fanouts(5)


class TestSampleBlocks:
    def test_block_count_matches_layers(self, tiny_or, rng):
        mb = sample_blocks(tiny_or, np.array([0, 1, 2]), (5, 5), rng)
        assert len(mb.blocks) == 2

    def test_seeds_are_final_destinations(self, tiny_or, rng):
        seeds = np.array([5, 1, 9])
        mb = sample_blocks(tiny_or, seeds, (5, 5), rng)
        last = mb.blocks[-1]
        assert np.array_equal(
            np.sort(last.src_ids[: last.num_dst]), np.sort(seeds)
        )

    def test_prefix_convention(self, tiny_or, rng):
        mb = sample_blocks(tiny_or, np.arange(10), (5, 5, 5), rng)
        for outer, inner in zip(mb.blocks[:-1], mb.blocks[1:]):
            # dst of the inner (later) layer == the next frontier's prefix.
            assert np.array_equal(
                outer.src_ids[: outer.num_dst], inner.src_ids
            )

    def test_fanout_respected(self, star_graph, rng):
        # Hub 0 has degree 19; fanout 5 caps its sampled in-edges.
        mb = sample_blocks(star_graph, np.array([0]), (5,), rng)
        assert mb.blocks[0].num_edges <= 5

    def test_low_degree_keeps_all_neighbors(self, path_graph, rng):
        mb = sample_blocks(path_graph, np.array([5]), (10,), rng)
        assert mb.blocks[0].num_edges == 2  # both path neighbours

    def test_sampled_edges_are_real(self, tiny_or, rng):
        mb = sample_blocks(tiny_or, np.arange(20), (8, 8), rng)
        indptr, indices = tiny_or.symmetric_csr()
        block = mb.blocks[0]
        for s, d in zip(block.edge_src[:100], block.edge_dst[:100]):
            src = int(block.src_ids[s])
            dst = int(block.src_ids[d])
            nbrs = indices[indptr[dst] : indptr[dst + 1]]
            assert src in nbrs

    def test_duplicate_seeds_deduped(self, tiny_or, rng):
        mb = sample_blocks(tiny_or, np.array([3, 3, 3]), (5,), rng)
        assert mb.seeds.tolist() == [3]

    def test_deterministic_given_rng_state(self, tiny_or):
        a = sample_blocks(
            tiny_or, np.arange(8), (5, 5), np.random.default_rng(42)
        )
        b = sample_blocks(
            tiny_or, np.arange(8), (5, 5), np.random.default_rng(42)
        )
        for ba, bb in zip(a.blocks, b.blocks):
            assert np.array_equal(ba.src_ids, bb.src_ids)
            assert np.array_equal(ba.edge_src, bb.edge_src)

    def test_empty_seeds_rejected(self, tiny_or, rng):
        with pytest.raises(ValueError):
            sample_blocks(tiny_or, np.zeros(0, dtype=np.int64), (5,), rng)

    def test_nonpositive_fanout_rejected(self, tiny_or, rng):
        with pytest.raises(ValueError):
            sample_blocks(tiny_or, np.array([0]), (0,), rng)

    def test_stats_helpers(self, tiny_or, rng):
        mb = sample_blocks(tiny_or, np.arange(16), (5, 5), rng)
        assert mb.num_input_vertices == mb.blocks[0].num_src
        assert mb.total_edges == sum(mb.edges_per_layer())
        assert len(mb.edges_per_layer()) == 2

    def test_blocks_feed_model(self, tiny_or, rng):
        mb = sample_blocks(tiny_or, np.arange(12), (5, 5), rng)
        model = build_model("sage", 6, 8, 3, 2, seed=0)
        x = rng.normal(size=(tiny_or.num_vertices, 6))
        logits = model.forward(mb.blocks, x[mb.input_ids])
        assert logits.shape == (12, 3)
