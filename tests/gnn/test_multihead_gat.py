"""Tests for the multi-head GAT layer."""

import numpy as np
import pytest

from repro.gnn import Block
from repro.gnn.layers import GatLayer, MultiHeadGatLayer


@pytest.fixture
def block():
    return Block(
        src_ids=np.arange(6),
        num_dst=3,
        edge_src=np.array([3, 4, 5, 0, 1, 2, 5]),
        edge_dst=np.array([0, 0, 1, 1, 2, 2, 2]),
    )


def test_output_shape(block, rng):
    layer = MultiHeadGatLayer(4, 8, num_heads=4, seed=0)
    out = layer.forward(block, rng.normal(size=(6, 4)))
    assert out.shape == (3, 8)


def test_one_head_matches_single_gat(block, rng):
    multi = MultiHeadGatLayer(4, 3, num_heads=1, seed=7)
    single = GatLayer(4, 3, seed=7 + 101 * 0)
    x = rng.normal(size=(6, 4))
    assert np.allclose(multi.forward(block, x), single.forward(block, x))


def test_gradient_check(block, rng):
    layer = MultiHeadGatLayer(4, 6, num_heads=2, seed=1)
    x = rng.normal(size=(6, 4))
    upstream = rng.normal(size=(3, 6))
    layer.zero_grad()
    layer.forward(block, x)
    analytic = layer.backward(upstream)
    eps = 1e-6
    numeric = np.zeros_like(x)
    for i in range(6):
        for j in range(4):
            xp, xm = x.copy(), x.copy()
            xp[i, j] += eps
            xm[i, j] -= eps
            fp = (layer.forward(block, xp) * upstream).sum()
            fm = (layer.forward(block, xm) * upstream).sum()
            numeric[i, j] = (fp - fm) / (2 * eps)
    assert np.allclose(analytic, numeric, atol=1e-5)


def test_param_dict_exposes_all_heads():
    layer = MultiHeadGatLayer(4, 8, num_heads=4)
    assert layer.num_params == 4 * GatLayer(4, 2).num_params
    assert any(name.startswith("h3_") for name in layer.params)


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        MultiHeadGatLayer(4, 7, num_heads=2)  # 7 not divisible
    with pytest.raises(ValueError):
        MultiHeadGatLayer(4, 8, num_heads=0)


def test_zero_grad_clears_heads(block, rng):
    layer = MultiHeadGatLayer(4, 4, num_heads=2, seed=0)
    layer.forward(block, rng.normal(size=(6, 4)))
    layer.backward(rng.normal(size=(3, 4)))
    layer.zero_grad()
    assert all((g == 0).all() for g in layer.grads.values())
