"""Tests for softmax cross-entropy."""

import numpy as np
import pytest

from repro.gnn import accuracy, softmax_cross_entropy


def test_perfect_prediction_low_loss():
    logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
    loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
    assert loss < 1e-6


def test_uniform_prediction_log_k():
    logits = np.zeros((4, 3))
    loss, _ = softmax_cross_entropy(logits, np.array([0, 1, 2, 0]))
    assert loss == pytest.approx(np.log(3))


def test_gradient_finite_difference():
    rng = np.random.default_rng(0)
    logits = rng.normal(size=(5, 4))
    labels = rng.integers(0, 4, size=5)
    _, grad = softmax_cross_entropy(logits.copy(), labels)
    eps = 1e-6
    for i in range(5):
        for j in range(4):
            lp, lm = logits.copy(), logits.copy()
            lp[i, j] += eps
            lm[i, j] -= eps
            fp, _ = softmax_cross_entropy(lp, labels)
            fm, _ = softmax_cross_entropy(lm, labels)
            assert grad[i, j] == pytest.approx(
                (fp - fm) / (2 * eps), abs=1e-5
            )


def test_gradient_rows_sum_to_zero():
    rng = np.random.default_rng(1)
    logits = rng.normal(size=(6, 3))
    _, grad = softmax_cross_entropy(logits, rng.integers(0, 3, size=6))
    assert np.allclose(grad.sum(axis=1), 0.0)


def test_empty_batch():
    loss, grad = softmax_cross_entropy(
        np.zeros((0, 3)), np.zeros(0, dtype=np.int64)
    )
    assert loss == 0.0
    assert grad.shape == (0, 3)


def test_shape_validation():
    with pytest.raises(ValueError):
        softmax_cross_entropy(np.zeros(3), np.zeros(3, dtype=np.int64))
    with pytest.raises(ValueError):
        softmax_cross_entropy(np.zeros((3, 2)), np.zeros(2, dtype=np.int64))


def test_accuracy():
    logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
    assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
    assert accuracy(np.zeros((0, 2)), np.zeros(0, dtype=np.int64)) == 0.0
