"""Tests for optimizers on a simple quadratic."""

import numpy as np
import pytest

from repro.gnn import Adam, Sgd


def quadratic_pair(x):
    """f(x) = 0.5 ||x||^2, grad = x."""
    return [(x, x.copy())]


def test_sgd_step_direction():
    x = np.array([1.0, -2.0])
    Sgd(lr=0.1).step(quadratic_pair(x))
    assert np.allclose(x, [0.9, -1.8])


def test_sgd_momentum_changes_trajectory_and_converges():
    x_plain = np.array([1.0])
    x_momentum = np.array([1.0])
    plain, momentum = Sgd(lr=0.1), Sgd(lr=0.1, momentum=0.5)
    for _ in range(5):
        plain.step(quadratic_pair(x_plain))
        momentum.step(quadratic_pair(x_momentum))
    assert x_momentum[0] != pytest.approx(x_plain[0])
    for _ in range(200):
        momentum.step(quadratic_pair(x_momentum))
    assert abs(x_momentum[0]) < 1e-6


def test_sgd_converges_quadratic():
    x = np.array([5.0, -3.0])
    opt = Sgd(lr=0.2)
    for _ in range(100):
        opt.step(quadratic_pair(x))
    assert np.abs(x).max() < 1e-4


def test_adam_converges_quadratic():
    x = np.array([5.0, -3.0])
    opt = Adam(lr=0.3)
    for _ in range(200):
        opt.step(quadratic_pair(x))
    assert np.abs(x).max() < 1e-2


def test_adam_first_step_size_near_lr():
    x = np.array([1000.0])
    Adam(lr=0.1).step(quadratic_pair(x))
    # Bias-corrected Adam steps ~lr regardless of gradient magnitude.
    assert x[0] == pytest.approx(1000.0 - 0.1, abs=1e-6)


def test_invalid_lr_rejected():
    with pytest.raises(ValueError):
        Sgd(lr=0.0)
    with pytest.raises(ValueError):
        Adam(lr=-1.0)


def test_updates_in_place():
    x = np.array([1.0])
    ref = x
    Sgd(lr=0.1).step(quadratic_pair(x))
    assert ref is x
