"""Fixtures for observability tests: isolate global obs state."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts and ends with observability off and empty."""
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()
