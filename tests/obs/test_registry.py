"""The metrics registry enforces the declarative catalog."""

import pytest

from repro.obs import (
    CATALOG,
    MetricsRegistry,
    MetricSpec,
    find_spec,
    metric_names,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCatalog:
    def test_every_spec_well_formed(self):
        for spec in CATALOG:
            assert spec.name
            assert spec.kind in ("counter", "gauge", "histogram", "timer")
            assert spec.unit
            assert spec.help

    def test_names_unique_and_namespaced(self):
        names = metric_names()
        assert len(names) == len(set(names))
        assert all("." in name for name in names)

    def test_find_spec_unknown_name(self):
        with pytest.raises(KeyError, match="not declared"):
            find_spec("nope.not_a_metric")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MetricSpec(name="x.y", kind="elephant", unit="1", help="h")
        with pytest.raises(ValueError):
            MetricSpec(name="x.y", kind="counter", unit="1", help="h",
                       buckets=(1.0, 2.0))  # buckets on a counter


class TestAccess:
    def test_counter_accumulates(self, registry):
        registry.counter("distgnn.epochs").add()
        registry.counter("distgnn.epochs").add(2.0)
        assert registry.counter("distgnn.epochs").value == 3.0

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("distgnn.epochs").add(-1)

    def test_gauge_tracks_max(self, registry):
        gauge = registry.gauge("cluster.memory_peak_bytes", machine=0)
        gauge.set(10.0)
        gauge.set(4.0)
        assert gauge.value == 4.0
        assert gauge.max_value == 10.0

    def test_labels_partition_instruments(self, registry):
        registry.counter("cluster.bytes_sent", machine=0).add(5.0)
        registry.counter("cluster.bytes_sent", machine=1).add(7.0)
        assert registry.counter("cluster.bytes_sent", machine=0).value == 5.0
        assert len(registry) == 2

    def test_undeclared_name_rejected(self, registry):
        with pytest.raises(KeyError):
            registry.counter("made.up")

    def test_label_mismatch_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("cluster.bytes_sent")  # missing machine=
        with pytest.raises(ValueError):
            registry.counter("distgnn.epochs", machine=3)  # extra label

    def test_kind_mismatch_rejected(self, registry):
        with pytest.raises(TypeError):
            registry.gauge("distgnn.epochs")  # declared as a counter

    def test_observe_dispatches_on_kind(self, registry):
        registry.observe("distgnn.epoch_seconds", 0.5)
        registry.observe("obs.span_seconds", 0.1, span="s")
        assert len(registry) == 2
        with pytest.raises(TypeError):
            registry.observe("distgnn.epochs", 1.0)  # counter


class TestHistogram:
    def test_summary_and_buckets(self, registry):
        hist = registry.histogram("partitioner.chunk_items", kernel="hdrf")
        for value in (100.0, 50000.0, 1e9):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(100.0 + 50000.0 + 1e9)
        assert hist.min == 100.0
        assert hist.max == 1e9
        # last bucket is the +inf overflow and must catch the 1e9
        assert hist.bucket_counts[-1] >= 1

    def test_snapshot_shape(self, registry):
        registry.counter("distgnn.epochs").add()
        registry.observe("distgnn.epoch_seconds", 0.25)
        entries = registry.snapshot()
        assert [e["name"] for e in entries] == [
            "distgnn.epoch_seconds", "distgnn.epochs"
        ]
        for entry in entries:
            assert {"name", "kind", "unit", "labels"} <= set(entry)

    def test_clear(self, registry):
        registry.counter("distgnn.epochs").add()
        registry.clear()
        assert len(registry) == 0
