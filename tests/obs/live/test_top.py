"""The daemon ops monitor: pure rendering and the injected loop."""

import io

from repro.obs.live import RuleSet, render_top_frame, top_loop


def _status(**overrides):
    status = {
        "healthz": {
            "status": "ok",
            "started": True,
            "workers": 2,
            "obs_level": "metrics",
            "uptime_seconds": 12.0,
            "scheduler_heartbeat_age_seconds": 0.2,
            "pending_cells": 3,
            "running_cells": 1,
            "max_pending_cells": 16,
            "queue_saturation": 0.1875,
        },
        "queue": {
            "pending_cells": 3,
            "running_cells": 1,
            "max_pending_cells": 16,
            "pending_by_tenant": {"alice": 2, "bob": 1},
            "jobs_by_state": {"running": 1, "done": 2},
            "dedup_hits_total": 2,
            "cells_computed_total": 6,
            "cached_cells": 6,
        },
        "totals": {
            "serve.http_requests": 40.0,
            "serve.admission_rejected": 0.0,
            "serve.admission_to_first_record_p95_seconds": 0.25,
        },
        "error": None,
    }
    status.update(overrides)
    return status


class TestRenderTopFrame:
    def test_frame_shows_queue_tenants_and_dedup(self):
        frame = render_top_frame(_status())
        assert "serve: ok, workers 2, obs metrics" in frame
        assert "queue: 3 pending / 1 running (limit 16)" in frame
        assert "tenants pending: alice=2, bob=1" in frame
        assert "jobs: 2 done, 1 running" in frame
        assert "6 computed, 2 dedup hits (25% dedup rate)" in frame
        assert "first-record p95 0.250s" in frame

    def test_unreachable_daemon_frame(self):
        frame = render_top_frame(
            {"error": "connection refused", "healthz": {}}
        )
        assert frame == "daemon unreachable: connection refused\n"

    def test_rules_fire_over_scraped_totals(self):
        rules = RuleSet.from_dict({
            "rules": [{
                "name": "slow-first-record",
                "kind": "threshold",
                "metric": (
                    "serve.admission_to_first_record_p95_seconds"
                ),
                "op": ">",
                "value": 0.1,
                "severity": "warning",
            }],
        })
        frame = render_top_frame(_status(), rules=rules)
        assert "[warning]" in frame
        assert "slow-first-record" in frame
        quiet = render_top_frame(
            _status(totals={
                "serve.admission_to_first_record_p95_seconds": 0.01,
            }),
            rules=rules,
        )
        assert "rules: none firing" in quiet


class TestTopLoop:
    def test_ticks_and_output(self):
        fetches = []

        def fetch():
            fetches.append(True)
            return _status()

        slept = []
        out = io.StringIO()
        final = top_loop(
            fetch, ticks=3, interval=0.5, out=out,
            sleep=slept.append, ansi=False,
        )
        assert len(fetches) == 3
        assert slept == [0.5, 0.5]
        assert out.getvalue().count("serve: ok") == 3
        assert final["error"] is None

    def test_ansi_clear_prefix(self):
        out = io.StringIO()
        top_loop(
            lambda: _status(), ticks=1, out=out,
            sleep=lambda _: None, ansi=True,
        )
        assert out.getvalue().startswith("\x1b[2J\x1b[H")

    def test_loop_survives_unreachable_daemon(self):
        out = io.StringIO()
        final = top_loop(
            lambda: {"error": "boom", "healthz": {}},
            ticks=2, out=out, sleep=lambda _: None, ansi=False,
        )
        assert final["error"] == "boom"
        assert out.getvalue().count("daemon unreachable") == 2
