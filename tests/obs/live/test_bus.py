"""The telemetry bus: writers, tailing, merge determinism."""

import json
import os

import pytest

from repro.obs.live import BusTailer, BusWriter, record_event_fields
from repro.obs.live.bus import (
    FINDING_CSEQ_BASE,
    MAX_CELL_RECORDS,
    merge_key,
)


class _Params:
    def label(self):
        return "f8 h4 L2"


class _Record:
    """Minimal stand-in for a sweep record."""

    graph = "OR"
    partitioner = "hdrf"
    num_machines = 4
    params = _Params()
    epoch_seconds = 1.25
    makespan_seconds = 5.0
    recovery_seconds = 0.5
    network_bytes = 1e6
    lost_messages = 2
    crashes = 1
    obs_metrics = {
        "phase_seconds": {"forward-l0": 0.3, "allreduce": 0.1},
        "bytes_sent_total": 1e6,
        "lost_messages_total": 2,
    }


class TestRecordEventFields:
    def test_simulated_fields(self):
        fields = record_event_fields(_Record(), "distgnn")
        assert fields["graph"] == "OR"
        assert fields["partitioner"] == "hdrf"
        assert fields["k"] == 4
        assert fields["params_label"] == "f8 h4 L2"
        assert fields["epoch_seconds"] == 1.25
        assert fields["lost_messages"] == 2
        assert fields["bytes_sent_total"] == 1e6
        assert "degraded_steps" not in fields

    def test_phase_seconds_as_ordered_pairs(self):
        # The sink writes sorted-key JSON, so phases must travel as a
        # list that preserves the record's insertion order — float
        # summation order downstream depends on it.
        fields = record_event_fields(_Record(), "distgnn")
        assert fields["phase_seconds"] == [
            ["forward-l0", 0.3], ["allreduce", 0.1],
        ]

    def test_distdgl_gets_degraded_steps(self):
        record = _Record()
        record.degraded_steps = 3
        fields = record_event_fields(record, "distdgl")
        assert fields["degraded_steps"] == 3


class TestBusWriter:
    def test_per_writer_file_and_cseq(self, tmp_path):
        bus = str(tmp_path)
        writer = BusWriter(bus, "w0")
        writer.cell_start(0, "distgnn", "OR", "hdrf", 4, 2)
        writer.record_done(0, 0, _Record(), "distgnn")
        writer.record_done(0, 1, _Record(), "distgnn")
        writer.cell_start(1, "distgnn", "OR", "random", 4, 2)
        writer.close()
        with open(os.path.join(bus, "events-w0.jsonl")) as fh:
            events = [json.loads(line) for line in fh]
        assert [e["cseq"] for e in events if e["cell"] == 0] == [0, 1, 2]
        assert [e["cseq"] for e in events if e["cell"] == 1] == [0]
        assert all(e["worker"] == "w0" for e in events)

    def test_finding_cseq_sorts_after_records(self):
        finding_event = {
            "kind": "finding", "cell": 3,
            "cseq": FINDING_CSEQ_BASE + 0,
        }
        record_event = {"kind": "record-done", "cell": 3, "cseq": 99}
        assert merge_key(record_event) < merge_key(finding_event)
        # ...but still inside its own cell.
        assert merge_key(finding_event) < merge_key(
            {"kind": "cell-start", "cell": 4, "cseq": 0}
        )

    def test_writer_id_defaults_to_pid(self, tmp_path):
        writer = BusWriter(str(tmp_path))
        assert writer.writer_id == f"pid{os.getpid()}"
        writer.close()


class TestBusTailer:
    def _write_lines(self, path, lines, terminate_last=True):
        with open(path, "a", encoding="utf-8") as fh:
            for i, line in enumerate(lines):
                fh.write(line)
                if terminate_last or i < len(lines) - 1:
                    fh.write("\n")

    def test_merge_is_order_independent(self, tmp_path):
        # Two interleavings of the same per-writer streams must merge
        # to the same (cell, cseq) order.
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        for bus in (a, b):
            os.makedirs(bus)
        events = [
            {"kind": "cell-start", "cell": c, "cseq": 0}
            for c in (0, 1, 2)
        ] + [
            {"kind": "cell-done", "cell": c, "cseq": 1}
            for c in (0, 1, 2)
        ]
        # Bus a: cells 0,2 on w0 and 1 on w1; bus b: the reverse split.
        def route_a(e):
            return "w0" if e["cell"] in (0, 2) else "w1"

        def route_b(e):
            return "w1" if e["cell"] in (0, 2) else "w0"

        for bus, route in ((a, route_a), (b, route_b)):
            for event in events:
                self._write_lines(
                    os.path.join(bus, f"events-{route(event)}.jsonl"),
                    [json.dumps(event)],
                )
        merged_a = sorted(BusTailer(a).poll(), key=merge_key)
        merged_b = sorted(BusTailer(b).poll(), key=merge_key)
        keys = [merge_key(e) for e in merged_a]
        assert keys == sorted(keys)
        assert [merge_key(e) for e in merged_b] == keys

    def test_resumable_offsets(self, tmp_path):
        path = str(tmp_path / "events-w0.jsonl")
        tailer = BusTailer(str(tmp_path))
        self._write_lines(path, ['{"kind": "heartbeat", "n": 1}'])
        assert len(tailer.poll()) == 1
        assert tailer.poll() == []  # nothing new
        self._write_lines(path, ['{"kind": "heartbeat", "n": 2}'])
        again = tailer.poll()
        assert [e["n"] for e in again] == [2]

    def test_partial_tail_line_left_for_next_poll(self, tmp_path):
        path = str(tmp_path / "events-w0.jsonl")
        tailer = BusTailer(str(tmp_path))
        self._write_lines(path, ['{"kind": "heartbeat", "n": 1}'])
        # A line still being appended (no trailing newline yet).
        self._write_lines(
            path, ['{"kind": "heartbeat", '], terminate_last=False
        )
        events = tailer.poll()
        assert [e["n"] for e in events] == [1]
        assert tailer.skipped == 0
        # The writer finishes the line: now it parses.
        self._write_lines(path, ['"n": 2}'])
        assert [e["n"] for e in tailer.poll()] == [2]

    def test_corrupt_complete_line_counted_and_skipped(self, tmp_path):
        path = str(tmp_path / "events-w0.jsonl")
        self._write_lines(
            path, ['{"kind": "heartbeat"}', "{not json", '{"ok": 1}']
        )
        tailer = BusTailer(str(tmp_path))
        events = tailer.poll()
        assert len(events) == 2
        assert tailer.skipped == 1

    def test_new_stream_files_discovered_between_polls(self, tmp_path):
        tailer = BusTailer(str(tmp_path))
        assert tailer.poll() == []
        self._write_lines(
            str(tmp_path / "events-late.jsonl"), ['{"n": 1}']
        )
        assert [e["n"] for e in tailer.poll()] == [1]


class TestWriterLifecycle:
    def test_context_manager_closes_and_flushes(self, tmp_path):
        with BusWriter(str(tmp_path), "w0") as writer:
            writer.sweep_start(1)
            assert not writer.closed
        assert writer.closed
        events = BusTailer(str(tmp_path)).poll()
        assert [e["kind"] for e in events] == ["sweep-start"]

    def test_close_is_idempotent(self, tmp_path):
        writer = BusWriter(str(tmp_path), "w0")
        writer.heartbeat()
        writer.close()
        writer.close()
        assert writer.closed

    def test_events_after_close_are_dropped_silently(self, tmp_path):
        writer = BusWriter(str(tmp_path), "w0")
        writer.heartbeat()
        writer.close()
        writer.heartbeat()  # must not raise or corrupt the file
        events = BusTailer(str(tmp_path)).poll()
        assert len(events) == 1


class TestCseqBudget:
    def test_max_cell_records_bound(self):
        assert MAX_CELL_RECORDS == FINDING_CSEQ_BASE - 2

    def test_cell_start_rejects_oversized_cell(self, tmp_path):
        writer = BusWriter(str(tmp_path), "w0")
        with pytest.raises(ValueError, match="per-cell cap"):
            writer.cell_start(
                0, "distgnn", "OR", "hdrf", 4, MAX_CELL_RECORDS + 1
            )
        # Nothing was emitted: failing beats corrupting the merge.
        assert BusTailer(str(tmp_path)).poll() == []

    def test_cell_start_accepts_cap_exactly(self, tmp_path):
        writer = BusWriter(str(tmp_path), "w0")
        writer.cell_start(
            0, "distgnn", "OR", "hdrf", 4, MAX_CELL_RECORDS
        )
        assert len(BusTailer(str(tmp_path)).poll()) == 1

    def test_cseq_overflow_raises_instead_of_colliding(self, tmp_path):
        writer = BusWriter(str(tmp_path), "w0")
        writer.cell_start(0, "distgnn", "OR", "hdrf", 4, 1)
        # White box: wind the cell's counter to the finding range
        # instead of emitting 100k events.
        writer._cseq[0] = FINDING_CSEQ_BASE
        with pytest.raises(ValueError, match="finding range"):
            writer.record_done(0, 0, _Record(), "distgnn")

    def test_finding_rejects_negative_index(self, tmp_path):
        writer = BusWriter(str(tmp_path), "w0")

        class _Finding:
            def to_dict(self):
                return {}

        with pytest.raises(ValueError, match=">= 0"):
            writer.finding(0, -1, _Finding())
