"""Serial and parallel sweeps must tail to byte-identical watch state.

The acceptance bar for the live bus: tailing the bus of a ``--workers
N`` sweep and folding it through :class:`WatchState` yields exactly the
deterministic summary of the serial sweep — same cells, same records,
same streamed anomaly findings, byte for byte.
"""

from repro import obs
from repro.experiments import (
    reduced_grid,
    run_distdgl_grid_parallel,
    run_distgnn_grid_parallel,
)
from repro.graph import random_split
from repro.obs.live import BusTailer, WatchState

EDGE_NAMES = ["random", "hdrf"]
VERTEX_NAMES = ["random", "ldg"]
MACHINES = [2, 4]


def _grid():
    return list(reduced_grid())[:2]


def _watch(bus_dir):
    state = WatchState()
    state.apply_all(BusTailer(str(bus_dir)).poll())
    return state


def test_distgnn_bus_parallel_matches_serial(tiny_or, tmp_path):
    obs.enable()
    try:
        run_distgnn_grid_parallel(
            tiny_or, EDGE_NAMES, MACHINES, _grid(), seed=0,
            workers=1, bus_dir=str(tmp_path / "serial"),
        )
        obs.reset()
        obs.enable()
        run_distgnn_grid_parallel(
            tiny_or, EDGE_NAMES, MACHINES, _grid(), seed=0,
            workers=2, bus_dir=str(tmp_path / "parallel"),
        )
    finally:
        obs.reset()
        obs.disable()
    serial = _watch(tmp_path / "serial")
    parallel = _watch(tmp_path / "parallel")
    assert len(serial.records) == len(MACHINES) * len(EDGE_NAMES) * 2
    assert (
        parallel.to_deterministic_json()
        == serial.to_deterministic_json()
    )


def test_distdgl_bus_parallel_matches_serial(tiny_or, tmp_path):
    split = random_split(tiny_or, seed=0)
    obs.enable()
    try:
        run_distdgl_grid_parallel(
            tiny_or, VERTEX_NAMES, [2], _grid(), split=split, seed=0,
            workers=1, bus_dir=str(tmp_path / "serial"),
        )
        obs.reset()
        obs.enable()
        run_distdgl_grid_parallel(
            tiny_or, VERTEX_NAMES, [2], _grid(), split=split, seed=0,
            workers=2, bus_dir=str(tmp_path / "parallel"),
        )
    finally:
        obs.reset()
        obs.disable()
    assert (
        _watch(tmp_path / "parallel").to_deterministic_json()
        == _watch(tmp_path / "serial").to_deterministic_json()
    )


def test_streamed_findings_match_posthoc_analysis(tiny_or, tmp_path):
    """The online detector over bus shims must reproduce the post-hoc
    detector over the actual records — including float-for-float equal
    finding values (the ordered phase_seconds pairs guarantee this)."""
    from repro.obs.analysis import detect_record_anomalies, sort_findings

    obs.enable()
    try:
        records = run_distgnn_grid_parallel(
            tiny_or, EDGE_NAMES, MACHINES, _grid(), seed=0,
            workers=2, bus_dir=str(tmp_path / "bus"),
        )
    finally:
        obs.reset()
        obs.disable()
    state = _watch(tmp_path / "bus")
    streamed = [f.to_dict() for f in state.findings()]
    posthoc = [
        f.to_dict()
        for f in sort_findings(detect_record_anomalies(records))
    ]
    assert streamed == posthoc
