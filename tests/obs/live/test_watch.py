"""The watch monitor: state folding, rendering, the tick loop."""

import io
import json

from repro.obs.live import BusTailer, BusWriter, RuleSet, WatchState
from repro.obs.live import render_frame, watch_loop
from repro.obs.live.rules import AlertRule


def sweep_start(cells):
    return {"kind": "sweep-start", "cell": -1, "cseq": 0,
            "cells": cells, "t_wall": 10.0, "worker": "coord"}


def cell_start(cell, worker="w0", partitioner="hdrf", k=4):
    return {"kind": "cell-start", "cell": cell, "cseq": 0,
            "engine": "distgnn", "graph": "OR",
            "partitioner": partitioner, "k": k, "records_total": 2,
            "worker": worker, "t_wall": 11.0}


def record_done(cell, index, epoch=1.5, phases=None):
    return {
        "kind": "record-done", "cell": cell, "cseq": 1 + index,
        "index": index, "engine": "distgnn", "graph": "OR",
        "partitioner": "hdrf", "k": 4, "params_label": "p",
        "epoch_seconds": epoch, "makespan_seconds": 4 * epoch,
        "recovery_seconds": 0.0, "network_bytes": 1e5,
        "lost_messages": 0, "crashes": 0, "worker": "w0",
        "phase_seconds": phases or [["forward", 1.0], ["sync", 0.5]],
    }


def cell_done(cell, records=2, wall=3.0):
    return {"kind": "cell-done", "cell": cell, "cseq": 10,
            "records": records, "wall_seconds": wall, "worker": "w0"}


def full_sweep_events():
    # Distinct epoch times per record, so rule firings (which embed the
    # observed value) stay distinct under the findings dedup.
    return [
        sweep_start(2),
        cell_start(0), record_done(0, 0, epoch=1.5),
        record_done(0, 1, epoch=1.6), cell_done(0),
        cell_start(1, worker="w1", partitioner="random"),
        record_done(1, 0, epoch=1.7), record_done(1, 1, epoch=1.8),
        cell_done(1),
    ]


class TestWatchState:
    def test_fold_counts(self):
        state = WatchState()
        state.apply_all(full_sweep_events())
        assert state.total_cells == 2
        assert state.cells_done() == 2
        assert len(state.records) == 4
        assert state.records_done(0) == 2
        assert state.complete()

    def test_order_insensitive_and_idempotent(self):
        events = full_sweep_events()
        forward = WatchState()
        forward.apply_all(events)
        shuffled = WatchState()
        shuffled.apply_all(reversed(events))
        shuffled.apply_all(events)  # replays must be harmless
        assert (
            forward.to_deterministic_json()
            == shuffled.to_deterministic_json()
        )

    def test_heartbeats_update_liveness_only(self):
        state = WatchState()
        baseline = None
        state.apply_all(full_sweep_events())
        baseline = state.to_deterministic_json()
        state.apply({"kind": "heartbeat", "worker": "w9",
                     "t_wall": 99.0})
        assert state.workers["w9"] == 99.0
        assert state.to_deterministic_json() == baseline

    def test_worker_timestamp_keeps_max(self):
        state = WatchState()
        state.apply({"kind": "heartbeat", "worker": "w0", "t_wall": 50.0})
        state.apply({"kind": "heartbeat", "worker": "w0", "t_wall": 40.0})
        assert state.workers["w0"] == 50.0

    def test_records_done_beats_stale_cell_done(self):
        state = WatchState()
        state.apply(cell_done(0, records=1))
        state.apply(record_done(0, 0))
        state.apply(record_done(0, 1))
        assert state.records_done(0) == 2

    def test_incomplete_without_sweep_start(self):
        state = WatchState()
        state.apply_all(full_sweep_events()[1:])
        assert not state.complete()

    def test_eta_from_completed_cell_walls(self):
        state = WatchState()
        state.apply_all([
            sweep_start(4),
            cell_start(0), cell_done(0, wall=2.0),
            cell_start(1), cell_done(1, wall=4.0),
        ])
        # Two cells left at a mean of 3s each.
        assert state.eta_seconds() == 6.0

    def test_phase_mix_sums_ordered_pairs(self):
        state = WatchState()
        state.apply_all(full_sweep_events())
        mix = state.phase_mix()
        assert mix == {"forward": 4.0, "sync": 2.0}

    def test_bus_findings_deduplicated(self):
        finding = {
            "kind": "alert:threshold", "severity": "critical",
            "subject": "s", "message": "m",
        }
        state = WatchState()
        state.apply({"kind": "finding", "cell": 0, "cseq": 100000,
                     "finding": finding})
        state.apply({"kind": "finding", "cell": 0, "cseq": 100000,
                     "finding": dict(finding)})
        assert len(state.bus_findings) == 1

    def test_local_rules_fire_in_findings(self):
        ruleset = RuleSet((
            AlertRule(
                name="epoch-cap", kind="threshold",
                metric="distgnn.epoch_seconds", op=">", value=1.0,
                severity="critical",
            ),
        ))
        state = WatchState(rules=ruleset)
        state.apply_all(full_sweep_events())
        fired = [
            f for f in state.findings() if f.kind == "alert:threshold"
        ]
        assert len(fired) == 4  # every record breaches the 1.0s cap
        assert all(f.severity == "critical" for f in fired)

    def test_deterministic_summary_has_no_wall_fields(self):
        state = WatchState()
        state.apply_all(full_sweep_events())
        summary = state.deterministic_summary()
        text = json.dumps(summary)
        assert "wall" not in text
        assert "worker" not in text
        assert summary["cells"]["0"]["records_done"] == 2


class TestRenderFrame:
    def test_frame_sections(self):
        state = WatchState()
        state.apply_all(full_sweep_events())
        frame = render_frame(state, now=20.0)
        assert "sweep: 2/2 cells, 4 records [complete]" in frame
        assert "[#" in frame  # progress bar full
        assert "phase mix: forward 67%, sync 33%" in frame
        assert "findings: none" in frame
        assert "\x1b" not in frame  # rendering itself is ANSI-free

    def test_running_cell_shown_against_worker(self):
        state = WatchState()
        state.apply_all([
            sweep_start(2), cell_start(0), record_done(0, 0),
        ])
        frame = render_frame(state, now=20.0)
        assert "w0: cell 0: distgnn/OR/hdrf/k=4 [1/2]" in frame
        assert "(seen 9s ago)" in frame

    def test_skipped_lines_surface_in_header(self):
        state = WatchState()
        state.apply(sweep_start(1))
        state.skipped = 3
        assert "(3 corrupt lines skipped)" in render_frame(state)


class TestWatchLoop:
    def _bus(self, tmp_path):
        writer = BusWriter(str(tmp_path), "w0")
        for event in full_sweep_events():
            writer.emit(event)
        writer.close()
        return BusTailer(str(tmp_path))

    def test_fixed_ticks_with_injected_clock(self, tmp_path):
        out = io.StringIO()
        slept = []
        state = watch_loop(
            self._bus(tmp_path), ticks=2, interval=0.5, out=out,
            clock=lambda: 42.0, sleep=slept.append, ansi=False,
        )
        assert state.complete()
        assert slept == [0.5]  # no sleep after the final tick
        frames = out.getvalue()
        assert frames.count("sweep: 2/2 cells") == 2
        assert "\x1b" not in frames

    def test_ansi_clear_prefixes_frames(self, tmp_path):
        out = io.StringIO()
        watch_loop(
            self._bus(tmp_path), ticks=1, out=out,
            clock=lambda: 0.0, sleep=lambda _s: None,
        )
        assert out.getvalue().startswith("\x1b[2J\x1b[H")

    def test_stops_when_complete(self, tmp_path):
        ticks = []
        state = watch_loop(
            self._bus(tmp_path), ticks=None, out=None,
            clock=lambda: 0.0,
            sleep=lambda s: ticks.append(s),
        )
        assert state.complete()
        assert ticks == []  # complete on the very first poll
