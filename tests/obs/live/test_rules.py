"""Alert rules: validation, evaluation, serialization, abort plumbing."""

import json

import pytest

from repro.obs.live import (
    AlertRule,
    RuleSet,
    SweepAborted,
    record_totals,
    severity_at_least,
)


def rule(**overrides):
    base = dict(
        name="r", kind="threshold", metric="cluster.lost_messages",
        op=">", value=0.0, severity="warning",
    )
    base.update(overrides)
    return AlertRule(**base)


class TestValidation:
    def test_unknown_metric_rejected_at_construction(self):
        with pytest.raises(KeyError):
            rule(metric="cluster.no_such_metric")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            rule(kind="median")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            rule(severity="fatal")

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            rule(op="==")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            rule(name="")

    def test_ratio_requires_denominator(self):
        with pytest.raises(ValueError):
            rule(kind="ratio")

    def test_ratio_denominator_must_be_catalog_name(self):
        with pytest.raises(KeyError):
            rule(kind="ratio", denominator="nope.nope")

    def test_denominator_rejected_on_threshold(self):
        with pytest.raises(ValueError):
            rule(denominator="cluster.bytes_sent")

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError):
            AlertRule.from_dict({
                "name": "r", "kind": "threshold",
                "metric": "cluster.lost_messages", "theshold": 3,
            })

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            RuleSet.from_dict({
                "rules": [rule().to_dict(), rule().to_dict()],
            })

    def test_rules_key_must_be_list(self):
        with pytest.raises(ValueError):
            RuleSet.from_dict({"rules": {"name": "r"}})


class TestEvaluate:
    def test_threshold_fires(self):
        finding = rule(value=1.0).evaluate(
            {"cluster.lost_messages": 2.0}, "OR/hdrf/k=4"
        )
        assert finding is not None
        assert finding.kind == "alert:threshold"
        assert finding.severity == "warning"
        assert finding.context["rule"] == "r"
        assert finding.value == 2.0

    def test_threshold_below_value_silent(self):
        assert rule(value=5.0).evaluate(
            {"cluster.lost_messages": 2.0}, "s"
        ) is None

    def test_threshold_missing_metric_skipped(self):
        assert rule().evaluate({"cluster.bytes_sent": 1.0}, "s") is None

    def test_ratio_fires_on_quotient(self):
        r = rule(
            kind="ratio", metric="cluster.phase_seconds",
            denominator="distgnn.epoch_seconds", value=3.0,
        )
        totals = {
            "cluster.phase_seconds": 10.0,
            "distgnn.epoch_seconds": 2.0,
        }
        finding = r.evaluate(totals, "s")
        assert finding is not None
        assert finding.value == 5.0

    def test_ratio_zero_denominator_skipped(self):
        r = rule(
            kind="ratio", metric="cluster.phase_seconds",
            denominator="distgnn.epoch_seconds", value=0.0,
        )
        assert r.evaluate({"cluster.phase_seconds": 10.0}, "s") is None
        assert r.evaluate(
            {
                "cluster.phase_seconds": 10.0,
                "distgnn.epoch_seconds": 0.0,
            },
            "s",
        ) is None

    def test_absence_fires_on_missing_or_zero(self):
        r = rule(kind="absence", metric="cluster.bytes_sent")
        assert r.evaluate({}, "s") is not None
        assert r.evaluate({"cluster.bytes_sent": 0.0}, "s") is not None
        assert r.evaluate({"cluster.bytes_sent": 1.0}, "s") is None

    def test_custom_message_included(self):
        finding = rule(message="boom").evaluate(
            {"cluster.lost_messages": 1.0}, "s"
        )
        assert "boom" in finding.message
        assert "'r'" in finding.message


class TestSerialization:
    def test_round_trip(self):
        original = rule(
            kind="ratio", metric="cluster.phase_seconds",
            denominator="distgnn.epoch_seconds", value=2.5,
            severity="critical", message="m",
        )
        assert AlertRule.from_dict(original.to_dict()) == original

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [rule().to_dict()]}))
        loaded = RuleSet.load(str(path))
        assert len(loaded.rules) == 1
        assert loaded.rules[0] == rule()

    def test_example_rules_file_is_valid(self):
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "..", "..",
            "examples", "alert_rules.json",
        )
        ruleset = RuleSet.load(path)
        assert {r.kind for r in ruleset.rules} == {
            "threshold", "ratio", "absence",
        }


class TestRecordTotals:
    def test_distgnn_record_mapping(self, tiny_or):
        from repro.experiments import TrainingParams, run_distgnn

        record = run_distgnn(tiny_or, "hdrf", 2, TrainingParams(), seed=0)
        totals = record_totals(record)
        assert totals["cluster.bytes_sent"] == record.network_bytes
        assert totals["cluster.phase_seconds"] == record.makespan_seconds
        assert totals["distgnn.epoch_seconds"] == record.epoch_seconds
        assert "distgnn.replayed_epochs" in totals
        assert "distdgl.degraded_steps" not in totals

    def test_obs_metrics_win_over_record_fields(self):
        class Shim:
            graph = "OR"
            partitioner = "hdrf"
            num_machines = 2
            epoch_seconds = 1.0
            makespan_seconds = 2.0
            network_bytes = 10.0
            lost_messages = 1
            obs_metrics = {
                "bytes_sent_total": 99.0,
                "lost_messages_total": 7,
                "memory_peak_bytes_max": 123.0,
            }

        totals = record_totals(Shim())
        assert totals["cluster.bytes_sent"] == 99.0
        assert totals["cluster.lost_messages"] == 7.0
        assert totals["cluster.memory_peak_bytes"] == 123.0

    def test_ruleset_evaluate_records_subjects(self):
        class Shim:
            graph = "OR"
            partitioner = "hdrf"
            num_machines = 4
            epoch_seconds = 1.0
            makespan_seconds = 2.0
            network_bytes = 10.0
            lost_messages = 3
            obs_metrics = None

        ruleset = RuleSet((rule(severity="critical"),))
        findings = ruleset.evaluate_records([Shim()])
        assert len(findings) == 1
        assert findings[0].subject == "OR/hdrf/k=4"


class TestAbort:
    def test_severity_ordering(self):
        assert severity_at_least("critical", "warning")
        assert severity_at_least("warning", "warning")
        assert not severity_at_least("info", "warning")

    def test_sweep_aborted_names_fired_rules(self):
        f1 = rule(name="first", severity="critical").evaluate(
            {"cluster.lost_messages": 1.0}, "s"
        )
        f2 = rule(name="second", severity="critical").evaluate(
            {"cluster.lost_messages": 2.0}, "s"
        )
        error = SweepAborted([f1, f2])
        assert "first" in str(error)
        assert "second" in str(error)
        assert error.findings == [f1, f2]
