"""Tests for the peak-memory tracker."""

import numpy as np

from repro.obs import (
    PeakMemoryTracker,
    read_rss_high_water,
    reset_rss_high_water,
)


def test_traced_peak_sees_large_allocation():
    with PeakMemoryTracker() as tracker:
        block = np.zeros(2_000_000, dtype=np.int64)  # 16 MB
        del block
    assert tracker.traced_peak_bytes >= 16_000_000


def test_peak_resets_between_uses():
    with PeakMemoryTracker() as big:
        block = np.zeros(2_000_000, dtype=np.int64)
        del block
    with PeakMemoryTracker() as small:
        block = np.zeros(10_000, dtype=np.int64)
        del block
    # A fresh tracker must not inherit the previous block's peak.
    assert small.traced_peak_bytes < big.traced_peak_bytes / 10


def test_as_dict_shape():
    with PeakMemoryTracker() as tracker:
        pass
    summary = tracker.as_dict()
    assert set(summary) == {
        "traced_peak_bytes", "rss_peak_bytes", "rss_resettable",
    }
    assert summary["traced_peak_bytes"] >= 0


def test_rss_helpers_are_consistent():
    rss = read_rss_high_water()
    if rss is None:
        return  # platform without /proc or resource
    assert rss > 0
    # Reset (where supported) must leave a readable high-water mark.
    reset_rss_high_water()
    assert read_rss_high_water() > 0


def test_nested_trackers_do_not_stop_outer_tracing():
    with PeakMemoryTracker() as outer:
        with PeakMemoryTracker() as inner:
            block = np.zeros(1_000_000, dtype=np.int64)
            del block
        after_inner = np.zeros(500_000, dtype=np.int64)
        del after_inner
    assert inner.traced_peak_bytes >= 8_000_000
    assert outer.traced_peak_bytes >= 4_000_000
