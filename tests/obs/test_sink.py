"""Event sinks: sequencing, JSONL persistence, close semantics."""

from repro.obs import JsonlSink, MemorySink, read_jsonl


def test_memory_sink_stamps_monotonic_seq():
    sink = MemorySink()
    sink.emit({"kind": "a", "name": "one"})
    sink.emit({"kind": "b", "name": "two"})
    assert [e["seq"] for e in sink.events] == [0, 1]


def test_emit_does_not_mutate_caller_dict():
    sink = MemorySink()
    original = {"kind": "a", "name": "one"}
    sink.emit(original)
    assert "seq" not in original


def test_jsonl_roundtrip(tmp_path):
    path = str(tmp_path / "events.jsonl")
    sink = JsonlSink(path)
    sink.emit({"kind": "phase", "name": "forward", "seconds": 0.5})
    sink.emit({"kind": "mark", "name": "fault"})
    sink.close()
    events = read_jsonl(path)
    assert len(events) == 2
    assert events[0]["name"] == "forward"
    assert events[0]["seconds"] == 0.5
    assert [e["seq"] for e in events] == [0, 1]


def test_jsonl_lazy_open(tmp_path):
    path = tmp_path / "never.jsonl"
    JsonlSink(str(path))
    assert not path.exists()  # no events, no file


def test_jsonl_drops_after_close(tmp_path):
    path = str(tmp_path / "closed.jsonl")
    sink = JsonlSink(path)
    sink.emit({"kind": "a", "name": "kept"})
    sink.close()
    sink.emit({"kind": "a", "name": "dropped"})  # silent, no raise
    assert len(read_jsonl(path)) == 1


def test_read_jsonl_skips_truncated_final_line(tmp_path):
    """A writer killed mid-line must not lose the rest of the trace."""
    path = str(tmp_path / "truncated.jsonl")
    sink = JsonlSink(path)
    sink.emit({"kind": "phase", "name": "forward"})
    sink.emit({"kind": "phase", "name": "backward"})
    sink.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "phase", "name": "upda')  # no newline
    events = read_jsonl(path)
    assert [e["name"] for e in events] == ["forward", "backward"]


def test_read_jsonl_returns_skip_count(tmp_path):
    path = str(tmp_path / "corrupt.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"kind": "a", "name": "ok"}\n')
        handle.write("not json at all\n")
        handle.write("\n")  # blank lines are not skips
        handle.write('{"kind": "a", "name": "also-ok"}\n')
        handle.write('{"trunc')
    events, skipped = read_jsonl(path, return_skipped=True)
    assert [e["name"] for e in events] == ["ok", "also-ok"]
    assert skipped == 2


def _append_worker(path, worker, count):
    sink = JsonlSink(path)
    for i in range(count):
        sink.emit({
            "kind": "stress", "name": f"w{worker}", "i": i,
            # Enough payload that a torn write would show as a skip.
            "pad": "x" * 200,
        })
    sink.close()


def test_jsonl_concurrent_multiprocess_appends(tmp_path):
    """Several processes appending to one shared JSONL file: every
    event emits as exactly one line-buffered ``write()`` of a complete
    line, so lines from different processes may interleave but no line
    is ever torn — every line parses and nothing is skipped.

    (The live bus avoids even this interleaving by giving each writer
    its own file; this pins the sink-level guarantee the bus relies
    on.)"""
    import multiprocessing

    path = str(tmp_path / "shared.jsonl")
    workers, per_worker = 4, 200
    ctx = multiprocessing.get_context("spawn")
    procs = [
        ctx.Process(target=_append_worker, args=(path, w, per_worker))
        for w in range(workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
    assert all(p.exitcode == 0 for p in procs)
    events, skipped = read_jsonl(path, return_skipped=True)
    assert skipped == 0
    assert len(events) == workers * per_worker
    # Every worker's events all arrived, each exactly once, in its
    # own emission order.
    by_worker = {}
    for event in events:
        by_worker.setdefault(event["name"], []).append(event["i"])
    assert set(by_worker) == {f"w{w}" for w in range(workers)}
    for indices in by_worker.values():
        assert indices == list(range(per_worker))


def test_jsonl_appends(tmp_path):
    path = str(tmp_path / "append.jsonl")
    first = JsonlSink(path)
    first.emit({"kind": "a", "name": "one"})
    first.close()
    second = JsonlSink(path)
    second.emit({"kind": "a", "name": "two"})
    second.close()
    assert [e["name"] for e in read_jsonl(path)] == ["one", "two"]
