"""Function-level profile diffs on synthetic profiles."""

from repro.obs.profiling import (
    FunctionStat,
    Profile,
    profile_diff,
    render_diff,
)


def _profile(funcs, name="p"):
    """``funcs`` maps func id -> (ncalls, cumtime)."""
    return Profile(
        name=name,
        functions=[
            FunctionStat(func, ncalls, ncalls, cumtime / 2, cumtime)
            for func, (ncalls, cumtime) in funcs.items()
        ],
    )


BASE = {"a.py:1:f": (10, 0.100), "a.py:9:g": (5, 0.050)}


class TestClassification:
    def test_self_diff_is_empty(self):
        diff = profile_diff(_profile(BASE), _profile(BASE))
        assert diff.is_empty
        assert diff.findings == []
        assert "no function-level regressions" in render_diff(diff)

    def test_regression_needs_both_guards(self):
        # +5% is under the 10% relative threshold: unchanged.
        small = dict(BASE, **{"a.py:1:f": (10, 0.105)})
        assert profile_diff(_profile(BASE), _profile(small)).is_empty
        # +50% over both guards: regressed.
        big = dict(BASE, **{"a.py:1:f": (10, 0.150)})
        diff = profile_diff(_profile(BASE), _profile(big))
        assert [e.func for e in diff.findings] == ["a.py:1:f"]
        assert diff.findings[0].status == "regressed"

    def test_improvement_is_not_a_finding(self):
        faster = dict(BASE, **{"a.py:1:f": (10, 0.050)})
        diff = profile_diff(_profile(BASE), _profile(faster))
        assert diff.is_empty
        statuses = {e.func: e.status for e in diff.entries}
        assert statuses["a.py:1:f"] == "improved"

    def test_added_function_flagged_above_floor(self):
        grown = dict(BASE, **{"b.py:2:h": (1, 0.030)})
        diff = profile_diff(_profile(BASE), _profile(grown))
        assert not diff.is_empty
        assert [e.func for e in diff.findings] == ["b.py:2:h"]
        assert diff.findings[0].status == "added"

    def test_added_function_below_floor_is_noise(self):
        grown = dict(BASE, **{"b.py:2:h": (1, 0.0005)})
        diff = profile_diff(_profile(BASE), _profile(grown))
        assert diff.is_empty

    def test_removed_function_breaks_emptiness(self):
        shrunk = {"a.py:1:f": BASE["a.py:1:f"]}
        diff = profile_diff(_profile(BASE), _profile(shrunk))
        assert not diff.is_empty
        # ...but removals are not findings (nothing got slower).
        assert diff.findings == []
        assert "removed" in render_diff(diff)

    def test_removed_below_floor_is_noise(self):
        base = dict(BASE, **{"tiny.py:1:t": (1, 0.0004)})
        diff = profile_diff(_profile(base), _profile(BASE))
        assert diff.is_empty


class TestRanking:
    def test_findings_worst_first(self):
        worse = {
            "a.py:1:f": (10, 0.200),  # +0.100
            "a.py:9:g": (5, 0.080),   # +0.030
        }
        diff = profile_diff(_profile(BASE), _profile(worse))
        assert [e.func for e in diff.findings] == [
            "a.py:1:f", "a.py:9:g",
        ]
        assert diff.findings[0].delta > diff.findings[1].delta

    def test_render_lists_flagged_functions(self):
        worse = dict(BASE, **{"a.py:1:f": (10, 0.300)})
        text = render_diff(profile_diff(_profile(BASE), _profile(worse)))
        assert "regressed" in text
        assert "a.py:1:f" in text

    def test_to_dict_drops_unchanged(self):
        worse = dict(BASE, **{"a.py:1:f": (10, 0.300)})
        data = profile_diff(_profile(BASE), _profile(worse)).to_dict()
        assert data["empty"] is False
        assert {e["func"] for e in data["entries"]} == {"a.py:1:f"}
