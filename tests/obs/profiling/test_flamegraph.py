"""Flamegraph HTML: self-contained, well-formed, deterministic."""

import json
import re

from repro.obs.profiling import (
    FunctionStat,
    Profile,
    render_flamegraph,
)


def _profile():
    return Profile(
        name="cell-000000",
        mode="cprofile",
        seconds=0.5,
        functions=[FunctionStat("a.py:1:f", 1, 1, 0.1, 0.5)],
        stacks={
            "a.py:1:f": 0.1,
            "a.py:1:f;a.py:9:g": 0.3,
            "a.py:1:f;</script>evil": 0.1,
        },
    )


def _payload(html: str) -> dict:
    match = re.search(
        r'<script type="application/json" id="profile-data">(.*?)'
        r"</script>",
        html,
        re.S,
    )
    assert match, "embedded profile payload missing"
    return json.loads(match.group(1).replace("<\\/", "</"))


class TestWellFormed:
    def test_single_self_contained_document(self):
        html = render_flamegraph(_profile())
        assert html.startswith("<!DOCTYPE html>")
        assert "<script src=" not in html  # no network dependencies
        assert 'href="http' not in html

    def test_embedded_payload_round_trips(self):
        payload = _payload(render_flamegraph(_profile()))
        assert payload["name"] == "cell-000000"
        assert payload["mode"] == "cprofile"
        assert set(payload["stacks"]) == set(_profile().stacks)

    def test_script_closers_escaped(self):
        html = render_flamegraph(_profile())
        # The raw "</script>" inside a stack key must not terminate
        # the JSON block early: exactly one profile-data block.
        assert html.count('id="profile-data"') == 1
        assert _payload(html)  # still parses

    def test_title_defaults_to_profile_name(self):
        assert "<title>cell-000000" in render_flamegraph(_profile())
        assert "<title>custom" in render_flamegraph(
            _profile(), title="custom"
        )


class TestDeterminism:
    def test_same_profile_same_bytes(self):
        assert render_flamegraph(_profile()) == render_flamegraph(
            _profile()
        )

    def test_weights_do_not_change_markup_shape(self):
        slow = _profile()
        slow.stacks = {k: v * 3 for k, v in slow.stacks.items()}
        fast_html = render_flamegraph(_profile())
        slow_html = render_flamegraph(slow)
        # Same stack keys, different weights: only the embedded JSON
        # numbers differ, never the surrounding markup.
        strip = re.compile(
            r'<script type="application/json" id="profile-data">.*?'
            r"</script>",
            re.S,
        )
        assert strip.sub("", fast_html) == strip.sub("", slow_html)
