"""Profiling must never change experiment results.

The pinned contract: a sweep run with ``profile_dir`` set emits records
byte-identical (as JSON) to the same sweep without profiling — the
profiler observes the cells, it does not perturb them.
"""

from repro.experiments import (
    reduced_grid,
    run_distgnn_grid_parallel,
)
from repro.experiments.export import records_to_json
from repro.obs.profiling import load_profile

PARTITIONERS = ["hdrf", "random"]
MACHINES = [2]


def _grid():
    return list(reduced_grid())[:2]


def _sweep(tiny_or, profile_dir=None):
    return run_distgnn_grid_parallel(
        tiny_or, PARTITIONERS, MACHINES, _grid(), seed=0,
        workers=1, profile_dir=profile_dir,
    )


class TestRecordIdentity:
    def test_records_byte_identical_with_profiling(
        self, tiny_or, tmp_path
    ):
        plain = records_to_json(_sweep(tiny_or))
        profiled = records_to_json(
            _sweep(tiny_or, profile_dir=str(tmp_path / "profiles"))
        )
        assert profiled == plain

    def test_one_artifact_per_cell(self, tiny_or, tmp_path):
        out = tmp_path / "profiles"
        _sweep(tiny_or, profile_dir=str(out))
        names = sorted(p.name for p in out.iterdir())
        assert names == [
            "profile-cell-000000.json",
            "profile-cell-000001.json",
        ]
        for name in names:
            profile = load_profile(str(out / name))
            assert profile.mode == "cprofile"
            assert profile.stacks

    def test_cell_profiles_deterministic_across_runs(
        self, tiny_or, tmp_path
    ):
        # Warm process-level caches first so both profiled runs see
        # the same world (cold-start imports are run-one-only work).
        _sweep(tiny_or)
        _sweep(tiny_or, profile_dir=str(tmp_path / "one"))
        _sweep(tiny_or, profile_dir=str(tmp_path / "two"))
        for name in ("profile-cell-000000.json",
                     "profile-cell-000001.json"):
            one = load_profile(str(tmp_path / "one" / name))
            two = load_profile(str(tmp_path / "two" / name))
            assert one.identity() == two.identity()
