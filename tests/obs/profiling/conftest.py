"""Fixtures for profiling tests: isolate the ambient capture state."""

import pytest

from repro.obs.profiling import capture as profiling


@pytest.fixture(autouse=True)
def clean_profiling_state():
    """Every test starts and ends with ambient profiling off and
    the collector empty (``disable`` clears it)."""
    profiling.disable()
    yield
    profiling.disable()
