"""Bench-history trend analysis: series extraction, creep, anomalies."""

import json

from repro.obs.profiling import (
    TrendThresholds,
    detect_drift,
    detect_trends,
    extract_history_series,
    load_bench_history,
    render_trend_report,
)


def _entry(kernel_seconds, off=0.07, plain=0.07, sampling=0.02):
    return {
        "kernels": {"OR/hdrf": {"seconds": kernel_seconds}},
        "sampling": {"seconds": sampling},
        "obs_overhead": {
            "off_seconds": off, "plain_seconds": plain,
        },
        "profiling_overhead": {
            "off_seconds": off, "plain_seconds": plain,
        },
    }


class TestSeriesExtraction:
    def test_unwraps_seconds_blocks(self):
        series = extract_history_series([_entry(0.1), _entry(0.2)])
        assert series["kernels/OR/hdrf"] == [0.1, 0.2]
        assert series["sampling"] == [0.02, 0.02]
        assert series["obs_overhead/off_seconds"] == [0.07, 0.07]
        assert series["profiling_overhead/plain_seconds"] == [0.07, 0.07]

    def test_missing_sections_shorten_series(self):
        old = {"kernels": {"OR/hdrf": {"seconds": 0.1}}}
        series = extract_history_series([old, _entry(0.2)])
        assert series["kernels/OR/hdrf"] == [0.1, 0.2]
        assert series["sampling"] == [0.02]

    def test_non_numeric_values_skipped(self):
        entry = {"kernels": {"OR/hdrf": {"note": "broken"}},
                 "sampling": True}
        assert extract_history_series([entry]) == {}


class TestDriftDetection:
    def test_injected_slow_creep_is_flagged(self):
        # +10% per entry: every adjacent step is inside a 2x pairwise
        # gate, but the cumulative drift is 1.5x+.
        values = [0.1 * (1.1 ** i) for i in range(8)]
        findings = detect_drift("kernels/OR/hdrf", values)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.kind == "perf-drift"
        assert finding.value > 1.25
        assert "kernels/OR/hdrf" in finding.message

    def test_flat_series_is_quiet(self):
        assert detect_drift("k", [0.1] * 10) == []

    def test_short_series_is_quiet(self):
        values = [0.1 * (1.1 ** i) for i in range(4)]
        assert detect_drift("k", values) == []

    def test_sub_jitter_series_is_quiet(self):
        values = [0.001 * (1.1 ** i) for i in range(8)]
        assert detect_drift("k", values) == []

    def test_threshold_knobs_respected(self):
        values = [0.1 * (1.1 ** i) for i in range(8)]
        loose = TrendThresholds(creep_ratio=5.0)
        assert detect_drift("k", values, loose) == []


class TestDetectTrends:
    def test_clean_history_has_no_findings(self):
        history = [_entry(0.1) for _ in range(6)]
        assert detect_trends(history) == []

    def test_spike_raises_series_anomaly(self):
        history = [_entry(0.1) for _ in range(7)] + [_entry(0.5)]
        kinds = {f.kind for f in detect_trends(history)}
        assert "bench-series-anomaly" in kinds

    def test_creep_raises_perf_drift(self):
        history = [_entry(0.1 * (1.1 ** i)) for i in range(8)]
        findings = detect_trends(history)
        drift = [f for f in findings if f.kind == "perf-drift"]
        assert any(
            f.subject == "kernels/OR/hdrf" for f in drift
        )


class TestHistoryLoading:
    def test_schema_2_history(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "schema": 2,
            "baseline": _entry(0.1),
            "history": [_entry(0.1), _entry(0.11)],
        }))
        history = load_bench_history(str(path))
        assert len(history) == 2

    def test_bare_list_schema_1(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps([_entry(0.1)]))
        assert len(load_bench_history(str(path))) == 1


class TestRendering:
    def test_quiet_report(self):
        series = extract_history_series([_entry(0.1)] * 3)
        text = render_trend_report([], series)
        assert "no drift or anomalies detected" in text
        assert "3 entries" in text

    def test_findings_listed(self):
        history = [_entry(0.1 * (1.1 ** i)) for i in range(8)]
        findings = detect_trends(history)
        text = render_trend_report(
            findings, extract_history_series(history)
        )
        assert "perf-drift" in text
