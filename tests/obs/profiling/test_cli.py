"""CLI round-trips: obs profile / flamegraph / profile-diff / trend."""

import json

import pytest

from repro.cli import main
from repro.obs.profiling import load_profile


def run(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


@pytest.fixture
def profile_json(tmp_path, capsys):
    """One captured profile of a fast command, as a saved artifact."""
    path = tmp_path / "profile.json"
    code, out = run(
        ["obs", "profile", "-o", str(path), "--top", "3",
         "--", "datasets"],
        capsys,
    )
    assert code == 0
    return str(path)


class TestObsProfile:
    def test_prints_hotspot_table_and_saves(self, profile_json, capsys):
        profile = load_profile(profile_json)
        assert profile.mode == "cprofile"
        assert profile.name == "cli:datasets"
        assert profile.functions and profile.stacks

    def test_collapsed_and_flamegraph_outputs(self, tmp_path, capsys):
        collapsed = tmp_path / "stacks.txt"
        flame = tmp_path / "flame.html"
        code, out = run(
            ["obs", "profile", "--collapsed", str(collapsed),
             "--flamegraph", str(flame), "--", "datasets"],
            capsys,
        )
        assert code == 0
        lines = collapsed.read_text().strip().splitlines()
        assert lines == sorted(lines)
        assert all(" " in line for line in lines)
        assert flame.read_text().startswith("<!DOCTYPE html>")

    def test_no_command_is_usage_error(self, capsys):
        code, out = run(["obs", "profile"], capsys)
        assert code == 2
        assert "give a repro subcommand" in out

    def test_scoped_mode_writes_ambient_profiles(
        self, tmp_path, capsys
    ):
        scoped = tmp_path / "scopes"
        code, out = run(
            ["obs", "profile", "--scoped", str(scoped), "--",
             "partition", "--graph", "OR", "--scale", "tiny",
             "--cut", "vertex-cut", "--algorithm", "dbh", "-k", "4"],
            capsys,
        )
        assert code == 0
        names = sorted(p.name for p in scoped.iterdir())
        assert any("partitioner.dbh" in n for n in names)
        for name in names:
            loaded = load_profile(str(scoped / name))
            assert loaded.mode == "cprofile"


class TestObsFlamegraph:
    def test_renders_from_artifact(self, profile_json, tmp_path, capsys):
        out_path = tmp_path / "flame.html"
        code, out = run(
            ["obs", "flamegraph", profile_json, "-o", str(out_path)],
            capsys,
        )
        assert code == 0
        assert "profile-data" in out_path.read_text()

    def test_stackless_artifact_is_an_error(self, tmp_path, capsys):
        data = {"schema": 1, "name": "trimmed", "mode": "cprofile",
                "seconds": 0.1, "functions": [], "stacks": {}}
        path = tmp_path / "trimmed.json"
        path.write_text(json.dumps(data))
        code, out = run(
            ["obs", "flamegraph", str(path),
             "-o", str(tmp_path / "f.html")],
            capsys,
        )
        assert code == 1
        assert "no collapsed stacks" in out


class TestObsProfileDiff:
    def test_self_diff_is_clean_exit_zero(self, profile_json, capsys):
        code, out = run(
            ["obs", "profile-diff", profile_json, profile_json],
            capsys,
        )
        assert code == 0
        assert "no function-level regressions" in out

    def test_regression_exits_one(self, profile_json, tmp_path, capsys):
        data = json.loads(open(profile_json).read())
        for entry in data["functions"]:
            entry["cumtime"] = entry["cumtime"] * 10 + 0.05
        slower = tmp_path / "slower.json"
        slower.write_text(json.dumps(data))
        report = tmp_path / "diff.json"
        code, out = run(
            ["obs", "profile-diff", profile_json, str(slower),
             "-o", str(report)],
            capsys,
        )
        assert code == 1
        assert "regressed" in out
        payload = json.loads(report.read_text())
        assert payload["empty"] is False


class TestObsTrend:
    @staticmethod
    def _history(path, kernel_values):
        entries = [
            {"kernels": {"OR/hdrf": {"seconds": value}}}
            for value in kernel_values
        ]
        path.write_text(json.dumps(
            {"schema": 2, "baseline": entries[0], "history": entries}
        ))

    def test_flat_history_exits_zero(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        self._history(bench, [0.1] * 8)
        out_path = tmp_path / "trend.json"
        code, out = run(
            ["obs", "trend", "--bench", str(bench),
             "-o", str(out_path)],
            capsys,
        )
        assert code == 0
        assert "no drift or anomalies detected" in out
        assert json.loads(out_path.read_text())["findings"] == []

    def test_slow_creep_exits_one(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        self._history(bench, [0.1 * (1.1 ** i) for i in range(8)])
        code, out = run(
            ["obs", "trend", "--bench", str(bench)], capsys
        )
        assert code == 1
        assert "perf-drift" in out

    def test_creep_ratio_knob(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        self._history(bench, [0.1 * (1.1 ** i) for i in range(8)])
        code, out = run(
            ["obs", "trend", "--bench", str(bench),
             "--creep-ratio", "10"],
            capsys,
        )
        assert code == 0
