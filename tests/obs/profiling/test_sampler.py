"""The serve daemon's wall-clock thread sampler."""

import threading
import time

from repro.obs.profiling import ThreadSampler


def _busy(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(1000))


class TestLifecycle:
    def test_start_stop_idempotent(self):
        sampler = ThreadSampler(interval=0.005)
        sampler.start()
        sampler.start()  # second start is a no-op
        assert sampler.running
        sampler.stop()
        sampler.stop()  # second stop is a no-op
        assert not sampler.running

    def test_concurrent_start_stop_is_safe(self):
        sampler = ThreadSampler(interval=0.005)
        threads = [
            threading.Thread(target=sampler.start) for _ in range(4)
        ] + [threading.Thread(target=sampler.stop) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sampler.stop()
        assert not sampler.running


class TestSampling:
    def test_samples_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy, args=(stop,))
        worker.start()
        sampler = ThreadSampler(interval=0.005)
        sampler.start()
        time.sleep(0.15)
        sampler.stop()
        stop.set()
        worker.join()
        assert sampler.samples > 0
        profile = sampler.build("serve.sample")
        assert profile.mode == "sample"
        assert profile.stacks
        assert any("_busy" in f for f in profile.stacks)

    def test_build_identity_is_name_and_mode(self):
        sampler = ThreadSampler(interval=0.005)
        sampler.start()
        time.sleep(0.05)
        sampler.stop()
        profile = sampler.build("serve.sample")
        assert profile.identity() == {
            "name": "serve.sample", "mode": "sample",
        }

    def test_weights_scale_with_interval(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy, args=(stop,))
        worker.start()
        sampler = ThreadSampler(interval=0.01)
        sampler.start()
        time.sleep(0.1)
        sampler.stop()
        stop.set()
        worker.join()
        profile = sampler.build()
        # Every stack weight is a whole multiple of the interval.
        for weight in profile.stacks.values():
            ratio = weight / 0.01
            assert abs(ratio - round(ratio)) < 1e-9
