"""Deterministic cProfile capture: identity, gating, nesting."""

import sys

from repro import obs
from repro.experiments.executor import CellTask
from repro.obs.profiling import capture as profiling
from repro.partitioning import make_edge_partitioner


def _kernel(graph):
    make_edge_partitioner("hdrf").partition(graph, 4, seed=0)


def _warm(graph):
    """Warm the cached adjacency views (and any lazy imports) so two
    captures see the same call graph."""
    graph.undirected_edges()
    graph.degrees()
    _kernel(graph)


class TestCaptureDeterminism:
    def test_same_seed_same_identity(self, tiny_or):
        _warm(tiny_or)
        with profiling.capture("kernel") as first:
            _kernel(tiny_or)
        with profiling.capture("kernel") as second:
            _kernel(tiny_or)
        assert first.profile is not None
        assert first.profile.identity() == second.profile.identity()

    def test_profile_has_kernel_frames(self, tiny_or):
        _warm(tiny_or)
        with profiling.capture("kernel") as cap:
            _kernel(tiny_or)
        funcs = {stat.func for stat in cap.profile.functions}
        assert any("hdrf" in f for f in funcs)
        assert cap.profile.stacks

    def test_capture_machinery_pruned(self, tiny_or):
        _warm(tiny_or)
        with profiling.capture("kernel") as cap:
            _kernel(tiny_or)
        for stat in cap.profile.functions:
            assert "profiling/capture.py" not in stat.func
            assert "_lsprof" not in stat.func

    def test_import_subtrees_collapse(self):
        sys.modules.pop("colorsys", None)
        with profiling.capture("imports") as cap:
            import colorsys  # noqa: F401 - the import IS the workload
        keys = list(cap.profile.stacks)
        assert any(key.endswith("<import>") for key in keys)
        assert not any("<frozen importlib" in key for key in keys)

    def test_capture_callable_returns_result_and_profile(self):
        result, profile = profiling.capture_callable(
            "fn", lambda x: x + 1, 41
        )
        assert result == 42
        assert profile is not None and profile.name == "fn"


class TestNesting:
    def test_inner_capture_is_noop(self):
        with profiling.capture("outer") as outer:
            with profiling.capture("inner") as inner:
                pass
        assert inner.profile is None
        assert outer.profile is not None

    def test_scope_inside_capture_is_null(self):
        profiling.enable()
        with profiling.capture("outer"):
            scope = profiling.profile_scope("inner")
        assert scope is profiling._NULL_SCOPE
        assert profiling.drain() == []


class TestAmbientScope:
    def test_off_by_default_returns_shared_null(self):
        assert not profiling.enabled()
        assert profiling.profile_scope("x") is profiling._NULL_SCOPE

    def test_enabled_scope_collects(self):
        profiling.enable()
        with profiling.profile_scope("scope.name"):
            sum(range(100))
        profiles = profiling.drain()
        assert [p.name for p in profiles] == ["scope.name"]
        assert profiling.drain() == []  # drained

    def test_disable_clears_collector(self):
        profiling.enable()
        with profiling.profile_scope("x"):
            pass
        profiling.disable()
        assert profiling.drain() == []

    def test_executor_cell_scope(self):
        profiling.enable()
        task = CellTask(index=0, fn=lambda: sum(range(50)))
        task.run()
        assert [p.name for p in profiling.drain()] == ["executor.cell"]

    def test_partitioner_scope_name(self, tiny_or):
        _warm(tiny_or)
        profiling.enable()
        _kernel(tiny_or)
        names = [p.name for p in profiling.drain()]
        assert names == ["partitioner.hdrf"]


class TestMetricsReporting:
    def test_capture_reports_when_obs_enabled(self):
        obs.configure("metrics")
        with profiling.capture("reported"):
            pass
        names = {entry["name"] for entry in obs.snapshot()}
        assert "profiling.captures" in names
        assert "profiling.capture_seconds" in names

    def test_capture_silent_when_obs_off(self):
        with profiling.capture("quiet"):
            pass
        assert len(obs.get_registry()) == 0
