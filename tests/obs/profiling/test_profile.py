"""The normalized Profile artifact: identifiers, views, round-trips."""

import pytest

from repro.obs.profiling import (
    FunctionStat,
    Profile,
    load_profile,
    normalize_func,
)


def _profile(seconds_scale=1.0, name="t"):
    """A small hand-built cprofile-mode Profile; scaling the timings
    must never change its identity."""
    return Profile(
        name=name,
        mode="cprofile",
        seconds=0.5 * seconds_scale,
        functions=[
            FunctionStat("a.py:1:f", 3, 3, 0.1 * seconds_scale,
                         0.4 * seconds_scale),
            FunctionStat("a.py:9:g", 6, 3, 0.3 * seconds_scale,
                         0.3 * seconds_scale),
        ],
        stacks={
            "a.py:1:f": 0.1 * seconds_scale,
            "a.py:1:f;a.py:9:g": 0.3 * seconds_scale,
        },
        meta={"argv": ["x"]},
    )


class TestNormalizeFunc:
    def test_builtin_collapses_to_bare_name(self):
        assert (
            normalize_func(("~", 0, "<built-in method builtins.len>"))
            == "<built-in method builtins.len>"
        )

    def test_builtin_memory_address_stripped(self):
        name = "<built-in method __new__ of type object at 0x7f95fdc5ea00>"
        assert (
            normalize_func(("~", 0, name))
            == "<built-in method __new__ of type object>"
        )

    def test_repo_path_relativized_posix(self):
        import repro.obs.profiling.profile as module

        ident = normalize_func((module.__file__, 12, "fn"))
        assert ident == "repro/obs/profiling/profile.py:12:fn"

    def test_unknown_path_falls_back_to_basename(self):
        ident = normalize_func(("/nowhere/at/all/thing.py", 3, "fn"))
        assert ident == "thing.py:3:fn"


class TestProfileViews:
    def test_top_functions_sorted_by_key(self):
        profile = _profile()
        by_cum = profile.top_functions(2, key="cumtime")
        assert [s.func for s in by_cum] == ["a.py:1:f", "a.py:9:g"]
        by_tot = profile.top_functions(2, key="tottime")
        assert [s.func for s in by_tot] == ["a.py:9:g", "a.py:1:f"]

    def test_top_functions_rejects_unknown_key(self):
        with pytest.raises(ValueError):
            _profile().top_functions(2, key="ncalls")

    def test_top_table_mentions_name_and_functions(self):
        table = _profile().top_table(5)
        assert "profile t" in table
        assert "a.py:1:f" in table

    def test_collapsed_usec_integers_sorted(self):
        lines = _profile().collapsed().strip().splitlines()
        assert lines == [
            "a.py:1:f 100000",
            "a.py:1:f;a.py:9:g 300000",
        ]

    def test_collapsed_seconds_unit(self):
        text = _profile().collapsed(unit="seconds")
        assert "a.py:1:f 0.100000000" in text


class TestIdentity:
    def test_identity_is_timing_free(self):
        assert _profile(1.0).identity() == _profile(7.3).identity()

    def test_identity_differs_on_stacks(self):
        other = _profile()
        other.stacks["a.py:1:f;b.py:2:h"] = 0.0
        assert other.identity() != _profile().identity()

    def test_sample_mode_identity_is_name_and_mode_only(self):
        profile = _profile()
        profile.mode = "sample"
        assert profile.identity() == {"name": "t", "mode": "sample"}


class TestSerialization:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "sub" / "p.json")
        original = _profile()
        original.save(path)
        loaded = load_profile(path)
        assert loaded.to_dict() == original.to_dict()
        assert loaded.identity() == original.identity()

    def test_save_is_byte_deterministic(self, tmp_path):
        one, two = str(tmp_path / "1.json"), str(tmp_path / "2.json")
        _profile().save(one)
        _profile().save(two)
        assert open(one, "rb").read() == open(two, "rb").read()

    def test_load_tolerates_trimmed_sections(self, tmp_path):
        data = _profile().to_dict()
        del data["stacks"]
        path = tmp_path / "trim.json"
        path.write_text(__import__("json").dumps(data))
        loaded = load_profile(str(path))
        assert loaded.stacks == {}
        assert len(loaded.functions) == 2
