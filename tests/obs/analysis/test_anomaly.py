"""Anomaly detectors: robust statistics, deterministic findings."""

import numpy as np
import pytest

from repro.cluster import Timeline
from repro.obs.analysis import (
    AnomalyThresholds,
    detect_record_anomalies,
    detect_snapshot_anomalies,
    detect_timeline_anomalies,
    rolling_mad_zscores,
)
from .conftest import snapshot_entry


class TestRollingMadZscores:
    def test_constant_series_scores_zero(self):
        scores = rolling_mad_zscores([5.0] * 20)
        assert np.all(scores == 0.0)

    def test_spike_scores_high(self):
        values = [1.0] * 10 + [10.0]
        scores = rolling_mad_zscores(values)
        assert scores[-1] > 3.5
        assert np.all(scores[:-1] == 0.0)

    def test_warmup_points_score_zero(self):
        # Fewer than min_points priors -> no score, even for a spike.
        scores = rolling_mad_zscores([1.0, 1.0, 100.0], min_points=4)
        assert np.all(scores == 0.0)

    def test_level_shift_scores_on_arrival(self):
        """The scored point is excluded from its own window, so the
        first point after a level shift flags immediately."""
        values = [1.0] * 8 + [2.0] * 8
        scores = rolling_mad_zscores(values)
        assert scores[8] > 3.5

    def test_deterministic(self):
        values = list(np.linspace(1.0, 2.0, 30)) + [9.0]
        a = rolling_mad_zscores(values)
        b = rolling_mad_zscores(values)
        assert np.array_equal(a, b)


class TestTimelineAnomalies:
    def test_phase_duration_spike_flagged(self):
        timeline = Timeline()
        for _ in range(8):
            timeline.add_phase("fwd", np.array([1.0, 1.01]))
        timeline.add_phase("fwd", np.array([1.0, 5.0]))
        findings = detect_timeline_anomalies(timeline)
        kinds = {f.kind for f in findings}
        assert "phase-duration-spike" in kinds

    def test_straggler_machine_flagged(self):
        timeline = Timeline()
        for _ in range(6):
            timeline.add_phase("fwd", np.array([1.0, 1.0, 1.9]))
        findings = detect_timeline_anomalies(timeline)
        stragglers = [
            f for f in findings if f.kind == "straggler-machine"
        ]
        assert len(stragglers) == 1
        assert stragglers[0].subject == "machine-2"

    def test_recovery_spike_severities(self):
        thresholds = AnomalyThresholds()
        quiet = Timeline()
        quiet.add_phase("fwd", np.array([10.0]))
        assert not any(
            f.kind == "recovery-spike"
            for f in detect_timeline_anomalies(quiet, thresholds)
        )

        noisy = Timeline()
        noisy.add_phase("fwd", np.array([1.0]))
        noisy.add_phase("fault-restore", np.array([1.0]))
        spikes = [
            f
            for f in detect_timeline_anomalies(noisy, thresholds)
            if f.kind == "recovery-spike"
        ]
        assert len(spikes) == 1
        assert spikes[0].severity == "critical"  # 50% >= 25% bar

    def test_healthy_timeline_yields_no_findings(self):
        timeline = Timeline()
        for _ in range(10):
            timeline.add_phase("fwd", np.array([1.0, 1.0]))
        assert detect_timeline_anomalies(timeline) == []


class TestRecordAnomalies:
    def test_epoch_time_outlier_across_partitioners(self, make_record):
        records = [
            make_record(partitioner=name, epoch_seconds=1.0)
            for name in ("a", "b", "c", "d", "e")
        ] + [make_record(partitioner="slow", epoch_seconds=50.0)]
        findings = detect_record_anomalies(records)
        outliers = [
            f for f in findings if f.kind == "epoch-time-outlier"
        ]
        assert len(outliers) == 1
        assert "slow" in outliers[0].subject

    def test_small_groups_not_scored(self, make_record):
        records = [
            make_record(partitioner="a", epoch_seconds=1.0),
            make_record(partitioner="b", epoch_seconds=100.0),
        ]
        assert detect_record_anomalies(records) == []

    def test_recovery_spike_per_cell(self, make_record):
        record = make_record(
            makespan_seconds=10.0, recovery_seconds=4.0
        )
        findings = detect_record_anomalies([record])
        spikes = [f for f in findings if f.kind == "recovery-spike"]
        assert len(spikes) == 1
        assert spikes[0].severity == "critical"
        assert spikes[0].value == pytest.approx(0.4)

    def test_phase_dominance_from_obs_metrics(self, make_record):
        record = make_record(
            obs_metrics={
                "phase_seconds": {"backward": 9.0, "forward": 1.0}
            }
        )
        findings = detect_record_anomalies([record])
        dominance = [
            f for f in findings if f.kind == "phase-dominance"
        ]
        assert len(dominance) == 1
        assert dominance[0].severity == "info"
        assert dominance[0].context["phase"] == "backward"

    def test_dominant_recovery_phase_not_flagged(self, make_record):
        record = make_record(
            obs_metrics={
                "phase_seconds": {"fault-restore": 9.0, "forward": 1.0}
            }
        )
        assert not any(
            f.kind == "phase-dominance"
            for f in detect_record_anomalies([record])
        )


class TestSnapshotAnomalies:
    def test_machine_imbalance_flagged(self, machine_snapshot):
        findings = detect_snapshot_anomalies(machine_snapshot)
        imbalance = [
            f for f in findings if f.kind == "machine-imbalance"
        ]
        assert len(imbalance) == 1
        assert imbalance[0].subject == "machine-3"

    def test_balanced_machines_quiet(self):
        entries = [
            snapshot_entry(
                "cluster.machine_busy_seconds", kind="gauge",
                value=1.0, labels={"machine": m},
            )
            for m in range(4)
        ]
        assert detect_snapshot_anomalies(entries) == []

    def test_partition_cache_collapse(self):
        entries = [
            snapshot_entry("partition_cache.hits", value=5.0),
            snapshot_entry("partition_cache.misses", value=195.0),
        ]
        findings = detect_snapshot_anomalies(entries)
        assert [f.kind for f in findings] == ["cache-collapse"]
        assert findings[0].subject == "partition-cache"

    def test_feature_cache_without_hits_means_no_cache(self):
        """The feature-cache hit counter exists even when no cache is
        configured; zero hits must read as 'no cache', not a collapse."""
        entries = [
            snapshot_entry("distdgl.cache_hits", value=0.0),
            snapshot_entry(
                "distdgl.remote_input_vertices", value=250000.0
            ),
        ]
        assert detect_snapshot_anomalies(entries) == []

    def test_feature_cache_with_bad_rate_flagged(self):
        entries = [
            snapshot_entry("distdgl.cache_hits", value=10.0),
            snapshot_entry(
                "distdgl.remote_input_vertices", value=990.0
            ),
        ]
        findings = detect_snapshot_anomalies(entries)
        assert [f.kind for f in findings] == ["cache-collapse"]
        assert findings[0].subject == "feature-cache"

    def test_small_caches_below_min_requests_ignored(self):
        entries = [
            snapshot_entry("partition_cache.hits", value=1.0),
            snapshot_entry("partition_cache.misses", value=9.0),
        ]
        assert detect_snapshot_anomalies(entries) == []

    def test_lost_messages_reported(self):
        entries = [
            snapshot_entry("cluster.lost_messages", value=3.0),
        ]
        findings = detect_snapshot_anomalies(entries)
        assert [f.kind for f in findings] == ["lost-messages"]
        assert findings[0].severity == "info"
