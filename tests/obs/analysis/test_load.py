"""Artifact loading: content sniffing, trace tolerance, labels."""

import json

import pytest

from repro.experiments import reduced_grid, run_distgnn, save_records
from repro.obs import JsonlSink
from repro.obs.analysis import load_run_inputs


@pytest.fixture(scope="module")
def record_file(tmp_path_factory, request):
    graph = request.getfixturevalue("tiny_or")
    params = next(iter(reduced_grid()))
    path = tmp_path_factory.mktemp("records") / "sweep.json"
    records = [
        run_distgnn(graph, name, 2, params, seed=0)
        for name in ("random", "hdrf")
    ]
    save_records(records, path)
    return str(path)


def make_snapshot_file(tmp_path, name="metrics.json"):
    path = tmp_path / name
    path.write_text(
        json.dumps(
            [
                {
                    "name": "cluster.bytes_sent", "kind": "counter",
                    "unit": "bytes", "labels": {"machine": 0},
                    "value": 10.0,
                },
            ]
        )
    )
    return str(path)


def test_record_json_classified_as_records(record_file):
    run = load_run_inputs([record_file])
    assert len(run.records) == 2
    assert run.metrics == []
    assert run.label == "sweep.json"


def test_snapshot_json_classified_as_metrics(tmp_path):
    run = load_run_inputs([make_snapshot_file(tmp_path)])
    assert run.records == []
    assert len(run.metrics) == 1


def test_mixed_inputs_and_sorted_label(record_file, tmp_path):
    snapshot = make_snapshot_file(tmp_path, "a_metrics.json")
    run = load_run_inputs([record_file, snapshot])
    assert len(run.records) == 2
    assert len(run.metrics) == 1
    # Sorted basenames, never paths, so labels are location-independent.
    assert run.label == "a_metrics.json+sweep.json"


def test_explicit_label_wins(tmp_path):
    run = load_run_inputs(
        [make_snapshot_file(tmp_path)], label="my-run"
    )
    assert run.label == "my-run"


def test_trace_events_and_embedded_snapshot(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    sink = JsonlSink(path)
    sink.emit({"kind": "phase", "name": "forward", "seconds": 0.5})
    sink.emit(
        {
            "kind": "metrics-snapshot",
            "name": "final",
            "metrics": [
                {
                    "name": "cluster.bytes_sent", "kind": "counter",
                    "unit": "bytes", "labels": {}, "value": 1.0,
                }
            ],
        }
    )
    sink.close()
    run = load_run_inputs([path])
    assert len(run.events) == 1  # snapshot extracted, not an event
    assert len(run.metrics) == 1
    assert run.skipped_lines == 0


def test_truncated_trace_counts_skips(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text(
        '{"kind": "phase", "name": "forward"}\n{"kind": "pha'
    )
    run = load_run_inputs([str(path)])
    assert len(run.events) == 1
    assert run.skipped_lines == 1
    assert run.source_dict()["skipped_lines"] == 1


def test_unrecognized_json_rejected(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text('{"what": "ever"}')
    with pytest.raises(ValueError, match="junk.json"):
        load_run_inputs([str(path)])


def test_empty_list_file_is_absorbed_quietly(tmp_path):
    path = tmp_path / "empty.json"
    path.write_text("[]")
    run = load_run_inputs([str(path)])
    assert run.records == [] and run.metrics == []
