"""End-to-end determinism: the analysis of a parallel sweep must be
byte-identical to the analysis of the equivalent serial sweep, and a
report must diff clean against itself."""

from repro.experiments import (
    reduced_grid,
    run_distgnn_grid,
    run_distgnn_grid_parallel,
)
from repro.obs.analysis import build_analysis_report, diff_runs
from repro.obs.analysis.load import RunData

EDGE_NAMES = ["random", "hdrf"]


def _grid():
    return list(reduced_grid())[:2]


def _report(records):
    return build_analysis_report(
        RunData(label="sweep", records=list(records))
    )


def test_analysis_identical_serial_vs_parallel(tiny_or):
    from repro import obs

    obs.enable()
    try:
        serial = run_distgnn_grid(
            tiny_or, EDGE_NAMES, [2], _grid(), seed=0
        )
        obs.reset()
        obs.enable()
        parallel = run_distgnn_grid_parallel(
            tiny_or, EDGE_NAMES, [2], _grid(), seed=0, workers=2
        )
    finally:
        obs.reset()
        obs.disable()
    assert _report(serial).to_json() == _report(parallel).to_json()


def test_analysis_json_stable_across_invocations(tiny_or):
    records = run_distgnn_grid(
        tiny_or, EDGE_NAMES, [2], _grid(), seed=0
    )
    assert _report(records).to_json() == _report(records).to_json()


def test_serial_vs_parallel_diff_clean(tiny_or):
    serial = run_distgnn_grid(
        tiny_or, EDGE_NAMES, [2], _grid(), seed=0
    )
    parallel = run_distgnn_grid_parallel(
        tiny_or, EDGE_NAMES, [2], _grid(), seed=0, workers=2
    )
    diff = diff_runs(
        RunData(label="serial", records=list(serial)),
        RunData(label="parallel", records=list(parallel)),
    )
    assert diff.clean
    assert diff.findings() == []
