"""Finding/AnalysisReport: validation, ordering, canonical JSON."""

import pytest

from repro.obs.analysis import AnalysisReport, Finding, sort_findings


def make(kind="k", severity="info", subject="s", message="m", **kw):
    return Finding(kind=kind, severity=severity, subject=subject,
                   message=message, **kw)


def test_unknown_severity_rejected():
    with pytest.raises(ValueError, match="severity"):
        make(severity="catastrophic")


def test_finding_roundtrip():
    finding = make(
        kind="recovery-spike", severity="critical", value=0.3,
        threshold=0.25, context={"b": 2, "a": 1},
    )
    assert Finding.from_dict(finding.to_dict()) == finding


def test_to_dict_sorts_context_keys():
    finding = make(context={"zz": 1, "aa": 2})
    assert list(finding.to_dict()["context"]) == ["aa", "zz"]


def test_sort_most_severe_first_then_textual():
    findings = [
        make(kind="b", severity="info"),
        make(kind="a", severity="critical"),
        make(kind="a", severity="info"),
        make(kind="z", severity="warning"),
    ]
    ordered = sort_findings(findings)
    assert [(f.severity, f.kind) for f in ordered] == [
        ("critical", "a"), ("warning", "z"), ("info", "a"), ("info", "b"),
    ]


def test_sort_is_input_order_independent():
    """Serial and parallel analyses may collect findings in different
    orders; sorting must erase that."""
    findings = [
        make(kind="a", subject="x"),
        make(kind="a", subject="y"),
        make(kind="b", subject="x"),
    ]
    assert sort_findings(findings) == sort_findings(findings[::-1])


def test_report_severity_counts_and_worst():
    report = AnalysisReport(
        findings=[make(severity="warning"), make(severity="warning"),
                  make(severity="info")]
    )
    assert report.severity_counts() == {
        "info": 1, "warning": 2, "critical": 0,
    }
    assert report.worst_severity() == "warning"
    assert AnalysisReport().worst_severity() is None


def test_report_json_is_canonical_and_roundtrips():
    report = AnalysisReport(
        source={"label": "x"},
        summary={"total_phase_seconds": 1.0},
        attribution={"phase_mix": {}},
        findings=[make(severity="critical"), make(severity="info")],
    )
    text = report.to_json()
    assert text.endswith("\n")
    assert text == report.to_json()  # repeated serialization is stable
    rebuilt = AnalysisReport.from_dict(report.to_dict())
    assert rebuilt.to_json() == text


def test_report_save(tmp_path):
    path = str(tmp_path / "report.json")
    report = AnalysisReport(source={"label": "x"})
    report.save(path)
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == report.to_json()
