"""Fixtures for analysis tests: synthetic records and snapshots.

The analyzers duck-type sweep records (``degraded_steps`` marks a
DistDGL-shaped record), so these stubs carry exactly the fields the
analysis layer reads — keeping the tests independent of the engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import pytest


@dataclass(frozen=True)
class StubParams:
    tag: str = "f64-h64-l3"

    def label(self) -> str:
        return self.tag


@dataclass
class StubRecord:
    """DistGNN-shaped sweep record (no ``degraded_steps``)."""

    graph: str = "OR"
    partitioner: str = "random"
    num_machines: int = 4
    params: StubParams = field(default_factory=StubParams)
    epoch_seconds: float = 1.0
    network_bytes: float = 1e6
    forward_seconds: float = 0.4
    backward_seconds: float = 0.5
    sync_seconds: float = 0.1
    makespan_seconds: float = 0.0
    recovery_seconds: float = 0.0
    partitioning_seconds: float = 0.5
    obs_metrics: Optional[Dict[str, object]] = None
    comm_config: Optional[object] = None
    traffic_saved_bytes: float = 0.0
    codec_seconds: float = 0.0
    accuracy_proxy_error: float = 0.0


@dataclass
class StubDglRecord(StubRecord):
    """DistDGL-shaped record: has ``degraded_steps`` + phase table."""

    degraded_steps: int = 0
    phase_seconds: Dict[str, float] = field(
        default_factory=lambda: {
            "sample": 0.2, "fetch": 0.3, "forward": 0.2,
            "backward": 0.2, "update": 0.1,
        }
    )


@pytest.fixture
def make_record():
    def factory(**kwargs):
        return StubRecord(**kwargs)

    return factory


@pytest.fixture
def make_dgl_record():
    def factory(**kwargs):
        return StubDglRecord(**kwargs)

    return factory


def snapshot_entry(name, kind="counter", value=0.0, unit="count",
                   labels=None, **extra):
    entry = {
        "name": name, "kind": kind, "unit": unit,
        "labels": labels or {}, "value": value,
    }
    entry.update(extra)
    return entry


@pytest.fixture
def machine_snapshot():
    """Four-machine snapshot with machine 3 visibly overloaded."""
    entries = []
    for machine, busy in enumerate((1.0, 1.1, 0.9, 2.5)):
        entries.append(
            snapshot_entry(
                "cluster.machine_busy_seconds", kind="gauge",
                value=busy, unit="seconds",
                labels={"machine": machine},
            )
        )
    return entries
