"""Critical-path attribution: the compute/skew decomposition must be
exact under barrier semantics, and stragglers must be charged to the
machine that actually bound each barrier."""

import numpy as np
import pytest

from repro.cluster import Timeline
from repro.obs.analysis import attribute_phase_totals, attribute_timeline


def test_duration_decomposes_into_compute_plus_skew():
    timeline = Timeline()
    timeline.add_phase("fwd", np.array([1.0, 3.0]))  # mean 2, max 3
    result = attribute_timeline(timeline)
    assert result.total_seconds == pytest.approx(3.0)
    assert result.compute_seconds == pytest.approx(2.0)
    assert result.skew_seconds == pytest.approx(1.0)
    assert result.skew_fraction == pytest.approx(1.0 / 3.0)
    phase = result.phases[0]
    assert phase.imbalance == pytest.approx(1.5)


def test_balanced_phase_has_zero_skew():
    timeline = Timeline()
    timeline.add_phase("fwd", np.array([2.0, 2.0, 2.0]))
    result = attribute_timeline(timeline)
    assert result.skew_seconds == pytest.approx(0.0)
    assert result.phases[0].imbalance == pytest.approx(1.0)


def test_phases_sorted_by_contribution_then_name():
    timeline = Timeline()
    timeline.add_phase("small", np.array([1.0]))
    timeline.add_phase("big", np.array([5.0]))
    timeline.add_phase("aaa", np.array([1.0]))  # ties with "small"
    result = attribute_timeline(timeline)
    assert [p.name for p in result.phases] == ["big", "aaa", "small"]


def test_straggler_counting_and_severity():
    timeline = Timeline()
    # Machine 1 binds both barriers, 50% slower than the pack mean.
    timeline.add_phase("fwd", np.array([1.0, 2.0, 1.5]))  # mean 1.5
    timeline.add_phase("bwd", np.array([2.0, 4.0, 3.0]))  # mean 3.0
    result = attribute_timeline(timeline)
    straggler = result.machines[1]
    assert straggler.straggler_count == 2
    assert straggler.straggler_fraction == pytest.approx(1.0)
    assert straggler.straggler_severity == pytest.approx(1.0 / 3.0)
    assert result.machines[0].straggler_count == 0


def test_straggler_tie_goes_to_lowest_index():
    timeline = Timeline()
    timeline.add_phase("fwd", np.array([2.0, 2.0]))
    result = attribute_timeline(timeline)
    assert result.machines[0].straggler_count == 1
    assert result.machines[1].straggler_count == 0


def test_recovery_and_checkpoint_shares():
    timeline = Timeline()
    timeline.add_phase("forward", np.array([4.0]))
    timeline.add_phase("fault-detect", np.array([0.5]))
    timeline.add_phase("replay:forward", np.array([1.0]))
    timeline.add_phase("checkpoint", np.array([0.5]))
    result = attribute_timeline(timeline)
    assert result.recovery_seconds == pytest.approx(1.5)
    assert result.checkpoint_seconds == pytest.approx(0.5)
    assert result.recovery_fraction == pytest.approx(1.5 / 6.0)
    by_name = {p.name: p for p in result.phases}
    assert by_name["fault-detect"].to_dict()["recovery"] is True
    assert by_name["checkpoint"].to_dict()["recovery"] is False


def test_empty_timeline_attribution():
    result = attribute_timeline(Timeline())
    assert result.total_seconds == 0.0
    assert result.phases == []
    assert result.machines == []
    assert result.skew_fraction == 0.0


def test_interrupted_occurrences_tracked():
    timeline = Timeline()
    timeline.add_phase("fwd", np.array([1.0]), interrupted=True)
    timeline.add_phase("fwd", np.array([1.0]))
    result = attribute_timeline(timeline)
    assert result.phases[0].interrupted_occurrences == 1


def test_attribute_phase_totals_fractions_and_recovery():
    result = attribute_phase_totals(
        {"forward": 3.0, "fault-detect": 1.0, "checkpoint": 1.0}
    )
    assert result["total_seconds"] == pytest.approx(5.0)
    assert result["recovery_seconds"] == pytest.approx(1.0)
    assert result["recovery_fraction"] == pytest.approx(0.2)
    assert result["checkpoint_seconds"] == pytest.approx(1.0)
    assert [p["name"] for p in result["phases"]] == [
        "forward", "checkpoint", "fault-detect",
    ]


def test_attribute_phase_totals_empty():
    result = attribute_phase_totals({})
    assert result["total_seconds"] == 0.0
    assert result["phases"] == []
