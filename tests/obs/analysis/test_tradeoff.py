"""Traffic-vs-accuracy tradeoff extraction and its report plumbing."""

import pytest

from repro.experiments import CommConfig
from repro.obs.analysis import traffic_accuracy_tradeoff
from repro.obs.analysis.tradeoff import _dominates

BASELINE = None
FP16 = CommConfig(compression="fp16")
INT8 = CommConfig(compression="int8")
FP16_R2 = CommConfig(compression="fp16", refresh_interval=2)


class TestTradeoffExtraction:
    def test_empty_without_comm_sweep(self, make_record):
        # Pre-comm record sets (no comm_config attribute, or all None)
        # produce no tradeoff section at all.
        assert traffic_accuracy_tradeoff([]) == {}
        assert traffic_accuracy_tradeoff([make_record()]) == {}

    def test_groups_by_engine_partitioner_and_config(
        self, make_record, make_dgl_record
    ):
        records = [
            make_record(comm_config=None, network_bytes=100.0),
            make_record(
                comm_config=FP16, network_bytes=50.0,
                traffic_saved_bytes=50.0,
                accuracy_proxy_error=FP16.codec().error_per_value,
            ),
            make_dgl_record(
                partitioner="metis", comm_config=None,
                network_bytes=80.0,
            ),
        ]
        tradeoff = traffic_accuracy_tradeoff(records)
        assert set(tradeoff) == {"distgnn", "distdgl"}
        assert set(tradeoff["distgnn"]) == {"random"}
        assert set(tradeoff["distdgl"]) == {"metis"}
        assert len(tradeoff["distgnn"]["random"]) == 2

    def test_points_sorted_by_descending_wire(self, make_record):
        records = [
            make_record(
                comm_config=INT8, network_bytes=25.0,
                traffic_saved_bytes=75.0, accuracy_proxy_error=0.002,
            ),
            make_record(comm_config=None, network_bytes=100.0),
            make_record(
                comm_config=FP16, network_bytes=50.0,
                traffic_saved_bytes=50.0, accuracy_proxy_error=0.0005,
            ),
        ]
        points = traffic_accuracy_tradeoff(records)["distgnn"]["random"]
        assert [p["wire_bytes"] for p in points] == [100.0, 50.0, 25.0]
        assert points[0]["comm"] == "baseline"

    def test_cells_average_and_saved_fraction(self, make_record):
        records = [
            make_record(
                comm_config=FP16, network_bytes=40.0,
                traffic_saved_bytes=40.0, accuracy_proxy_error=0.001,
            ),
            make_record(
                comm_config=FP16, network_bytes=60.0,
                traffic_saved_bytes=60.0, accuracy_proxy_error=0.002,
            ),
        ]
        (point,) = traffic_accuracy_tradeoff(records)["distgnn"]["random"]
        assert point["cells"] == 2
        assert point["wire_bytes"] == 50.0
        assert point["saved_bytes"] == 50.0
        assert point["saved_fraction"] == pytest.approx(0.5)
        # Error is the worst cell, not the mean.
        assert point["accuracy_proxy_error"] == 0.002

    def test_frontier_marks_undominated_points(self, make_record):
        # baseline: most bytes, zero error -> frontier anchor.
        # fp16: half the bytes, small error -> frontier.
        # fp16 r2: MORE error than int8 and MORE bytes -> dominated.
        # int8: fewest bytes -> frontier.
        records = [
            make_record(comm_config=None, network_bytes=100.0),
            make_record(
                comm_config=FP16, network_bytes=50.0,
                traffic_saved_bytes=50.0, accuracy_proxy_error=0.0005,
            ),
            make_record(
                comm_config=FP16_R2, network_bytes=40.0,
                traffic_saved_bytes=60.0, accuracy_proxy_error=0.0105,
            ),
            make_record(
                comm_config=INT8, network_bytes=25.0,
                traffic_saved_bytes=75.0, accuracy_proxy_error=0.002,
            ),
        ]
        points = traffic_accuracy_tradeoff(records)["distgnn"]["random"]
        frontier = {p["comm"]: p["on_frontier"] for p in points}
        assert frontier["baseline"] is True
        assert frontier["fp16 r1 c0"] is True
        assert frontier["int8 r1 c0"] is True
        assert frontier["fp16 r2 c0"] is False

    def test_dominates_requires_strict_improvement(self):
        a = {"wire_bytes": 50.0, "accuracy_proxy_error": 0.01}
        same = {"wire_bytes": 50.0, "accuracy_proxy_error": 0.01}
        worse = {"wire_bytes": 60.0, "accuracy_proxy_error": 0.01}
        assert not _dominates(a, same)
        assert _dominates(a, worse)
        assert not _dominates(worse, a)


class TestReportPlumbing:
    def _comm_records(self, make_record):
        return [
            make_record(comm_config=None),
            make_record(
                comm_config=FP16, network_bytes=5e5,
                traffic_saved_bytes=5e5, accuracy_proxy_error=0.0005,
            ),
        ]

    def test_attribution_report_carries_comm_tradeoff(self, make_record):
        from repro.obs.analysis import build_analysis_report
        from repro.obs.analysis.load import RunData

        run = RunData(records=self._comm_records(make_record))
        report = build_analysis_report(run)
        tradeoff = report.attribution["comm_tradeoff"]
        assert set(tradeoff) == {"distgnn"}

    def test_runreport_markdown_has_comm_section(self, tiny_or):
        from repro.experiments import reduced_grid, run_distgnn
        from repro.experiments.runreport import build_run_report

        params = list(reduced_grid())[0]
        records = [
            run_distgnn(tiny_or, "random", 2, params),
            run_distgnn(tiny_or, "random", 2, params, comm_config=FP16),
        ]
        markdown, report = build_run_report(records)
        assert "## Communication reduction" in markdown
        assert "fp16 r1 c0" in markdown
        assert report["comm"] is not None
        assert "fp16 r1 c0" in report["comm"]["configs"]

    def test_runreport_without_comm_has_no_section(self, tiny_or):
        from repro.experiments import reduced_grid, run_distgnn
        from repro.experiments.runreport import build_run_report

        params = list(reduced_grid())[0]
        markdown, report = build_run_report(
            [run_distgnn(tiny_or, "random", 2, params)]
        )
        assert "## Communication reduction" not in markdown
        assert report["comm"] is None

    def test_dashboard_html_includes_tradeoff_panel(self, make_record):
        from repro.obs.analysis import (
            build_analysis_report,
            render_dashboard,
        )
        from repro.obs.analysis.load import RunData

        run = RunData(records=self._comm_records(make_record))
        html = render_dashboard(build_analysis_report(run).to_dict())
        assert 'id="tradeoff"' in html
        assert "renderTradeoff" in html
