"""Report building and the renderers (text + HTML dashboard)."""

import json
import re

from repro.obs.analysis import (
    build_analysis_report,
    per_partitioner_breakdown,
    render_dashboard,
    render_diff_text,
    render_report_text,
)
from repro.obs.analysis.load import RunData


def make_run(make_record, make_dgl_record):
    records = [
        make_record(
            partitioner=name,
            epoch_seconds=seconds,
            obs_metrics={
                "phase_seconds": {"forward": 0.4, "backward": 0.6}
            },
        )
        for name, seconds in (("random", 1.0), ("hdrf", 0.5))
    ]
    records.append(make_dgl_record(partitioner="metis"))
    return RunData(label="test-run", records=records)


def test_per_partitioner_breakdown_shapes(make_record, make_dgl_record):
    run = make_run(make_record, make_dgl_record)
    breakdown = per_partitioner_breakdown(run.records)
    assert set(breakdown) == {"distgnn", "distdgl"}
    entry = breakdown["distgnn"]["hdrf"]
    assert entry["cells"] == 1
    assert entry["mean_epoch_seconds"] == 0.5
    # Full-batch records decompose into forward/backward/sync.
    assert set(entry["phase_seconds"]) == {"forward", "backward", "sync"}
    # Mini-batch records carry their own phase table.
    assert "fetch" in breakdown["distdgl"]["metis"]["phase_seconds"]
    fractions = entry["phase_fractions"]
    assert abs(sum(fractions.values()) - 1.0) < 1e-12


def test_build_report_structure(make_record, make_dgl_record):
    run = make_run(make_record, make_dgl_record)
    report = build_analysis_report(run)
    data = report.to_dict()
    assert data["schema"] == 1
    assert data["source"]["label"] == "test-run"
    assert data["summary"]["engines"] == ["distdgl", "distgnn"]
    assert "thresholds" in data["summary"]
    assert data["attribution"]["phase_mix"]["total_seconds"] > 0
    assert "per_partitioner" in data["attribution"]


def test_report_notes_truncated_traces(make_record):
    run = RunData(records=[make_record()], skipped_lines=3)
    report = build_analysis_report(run)
    truncated = [
        f for f in report.findings if f.kind == "trace-truncated"
    ]
    assert len(truncated) == 1
    assert truncated[0].value == 3.0


def test_render_report_text(make_record, make_dgl_record):
    run = make_run(make_record, make_dgl_record)
    text = render_report_text(build_analysis_report(run).to_dict())
    assert "analysis: test-run" in text
    assert "critical path" in text
    assert "distgnn" in text and "distdgl" in text
    assert "\x1b" not in text  # no ANSI; CI-log safe


def test_render_diff_text_clean_and_dirty():
    clean = render_diff_text(
        {"label_a": "x", "label_b": "y", "clean": True}
    )
    assert "clean" in clean
    dirty = render_diff_text(
        {
            "label_a": "x",
            "label_b": "y",
            "clean": False,
            "changed_cells": [
                {
                    "cell": "distgnn/OR/hdrf/k=4/f64",
                    "field": "epoch_seconds",
                    "a": 1.0, "b": 2.0, "rel_delta": 0.5,
                }
            ],
        }
    )
    assert "epoch_seconds" in dirty
    assert "50.00%" in dirty


class TestDashboard:
    def build(self, make_record, make_dgl_record):
        run = make_run(make_record, make_dgl_record)
        return render_dashboard(build_analysis_report(run).to_dict())

    def test_single_file_no_network(self, make_record, make_dgl_record):
        html = self.build(make_record, make_dgl_record)
        # No external fetches of any kind: no URLs, no src/href, no
        # css imports — the file must render offline from disk.
        assert not re.search(
            r"https?://|src=|href=|@import|url\(", html
        )
        assert html.startswith("<!DOCTYPE html>")

    def test_report_json_embedded_and_parseable(
        self, make_record, make_dgl_record
    ):
        html = self.build(make_record, make_dgl_record)
        match = re.search(
            r'<script type="application/json" id="report-data">'
            r"(.*?)</script>",
            html,
            re.S,
        )
        assert match
        embedded = json.loads(match.group(1).replace("<\\/", "</"))
        assert embedded["source"]["label"] == "test-run"

    def test_deterministic_output(self, make_record, make_dgl_record):
        assert self.build(make_record, make_dgl_record) == self.build(
            make_record, make_dgl_record
        )

    def test_dark_and_light_palettes_declared(
        self, make_record, make_dgl_record
    ):
        html = self.build(make_record, make_dgl_record)
        assert 'data-theme="dark"' in html
        assert "prefers-color-scheme: dark" in html
        # Status colors ship with textual labels, never color alone.
        assert "CRITICAL" in html or "severity.toUpperCase()" in html


def _resource_metrics(k=2, scale=1.0):
    return {
        "phase_seconds": {"forward": 0.4, "backward": 0.6},
        "traffic_matrix": [
            [0.0, 10.0 * scale], [5.0 * scale, 0.0]
        ],
        "traffic_phase_bytes": {"sync": 15.0 * scale},
        "memory_category_peaks": {
            "features": [100.0 * scale, 80.0 * scale]
        },
        "memory_timeline": {"forward": [120.0 * scale, 90.0 * scale]},
    }


class TestResourceDepth:
    def test_aggregates_largest_k_per_engine(self, make_record):
        from repro.obs.analysis.report import resource_depth

        records = [
            make_record(num_machines=2, obs_metrics=_resource_metrics()),
            make_record(num_machines=2, partitioner="hdrf",
                        obs_metrics=_resource_metrics(scale=2.0)),
            # Smaller k: excluded from the depth view.
            make_record(num_machines=1, obs_metrics={
                "traffic_matrix": [[0.0]],
            }),
        ]
        depth = resource_depth(records)
        assert set(depth) == {"distgnn"}
        entry = depth["distgnn"]
        assert entry["k"] == 2
        assert entry["cells"] == 2
        # Matrices sum across records; memory tables keep the max.
        assert entry["traffic_matrix"] == [[0.0, 30.0], [15.0, 0.0]]
        assert entry["memory_category_peaks"] == {
            "features": [200.0, 160.0]
        }
        assert entry["memory_timeline"] == {"forward": [240.0, 180.0]}

    def test_records_without_matrix_ignored(self, make_record):
        from repro.obs.analysis.report import resource_depth

        assert resource_depth([make_record()]) == {}
        assert resource_depth(
            [make_record(obs_metrics={"phase_seconds": {"f": 1.0}})]
        ) == {}

    def test_report_attribution_carries_resources(self, make_record):
        run = RunData(label="r", records=[
            make_record(obs_metrics=_resource_metrics()),
        ])
        report = build_analysis_report(run)
        resources = report.to_dict()["attribution"]["resources"]
        assert "distgnn" in resources
        assert resources["distgnn"]["traffic_matrix"]

    def test_dashboard_renders_resource_sections(self, make_record):
        run = RunData(label="r", records=[
            make_record(obs_metrics=_resource_metrics()),
        ])
        html = render_dashboard(build_analysis_report(run).to_dict())
        assert "renderResources" in html
        assert 'id="resources"' in html
        assert "heatTable" in html
        assert "memory peaks by ledger category" in html
        assert "memory watermark by phase" in html
