"""Cross-run diffing: self-diffs are clean, regressions are typed."""

import pytest

from repro.obs.analysis import diff_records, diff_runs, diff_snapshots
from repro.obs.analysis.diff import DiffTolerances
from repro.obs.analysis.load import RunData
from .conftest import snapshot_entry


def make_snapshot():
    return [
        snapshot_entry("cluster.bytes_sent", value=100.0,
                       labels={"machine": 0}),
        snapshot_entry("cluster.bytes_sent", value=150.0,
                       labels={"machine": 1}),
        snapshot_entry(
            "cluster.phase_seconds", kind="histogram", unit="seconds",
            labels={"phase": "forward"}, count=2, sum=1.0,
        ),
        snapshot_entry(
            "cluster.phase_seconds", kind="histogram", unit="seconds",
            labels={"phase": "backward"}, count=2, sum=3.0,
        ),
    ]


class TestDiffSnapshots:
    def test_self_diff_clean(self):
        snapshot = make_snapshot()
        diff = diff_snapshots(snapshot, snapshot)
        assert diff.clean
        assert diff.findings() == []
        assert diff.to_dict()["clean"] is True

    def test_value_move_beyond_tolerance_flagged(self):
        a = make_snapshot()
        b = make_snapshot()
        b[0]["value"] = 120.0
        diff = diff_snapshots(a, b)
        assert not diff.clean
        assert len(diff.changed_metrics) == 1
        change = diff.changed_metrics[0]
        assert change["metric"] == "cluster.bytes_sent{machine=0}"
        assert change["a"] == 100.0 and change["b"] == 120.0

    def test_added_and_removed_series(self):
        a = make_snapshot()
        b = make_snapshot()[1:] + [
            snapshot_entry("cluster.lost_messages", value=1.0)
        ]
        diff = diff_snapshots(a, b)
        assert diff.added_metrics == ["cluster.lost_messages"]
        assert diff.removed_metrics == ["cluster.bytes_sent{machine=0}"]
        kinds = [f.kind for f in diff.findings()]
        assert "metric-added" in kinds
        assert "metric-removed" in kinds

    def test_phase_mix_shift(self):
        a = make_snapshot()
        b = make_snapshot()
        b[2]["sum"] = 3.0  # forward grows from 25% to 50%
        diff = diff_snapshots(a, b)
        assert diff.phase_mix["shifted"] is True
        assert diff.phase_mix["l1_shift"] == pytest.approx(0.5)
        assert any(
            f.kind == "phase-mix-shift" for f in diff.findings()
        )

    def test_tiny_float_drift_tolerated(self):
        a = make_snapshot()
        b = make_snapshot()
        b[0]["value"] = 100.0 + 1e-13
        assert diff_snapshots(a, b).clean


class TestDiffRecords:
    def test_self_diff_clean(self, make_record):
        records = [
            make_record(partitioner=p) for p in ("random", "hdrf")
        ]
        assert diff_records(records, records).clean

    def test_epoch_regression_flagged(self, make_record):
        a = [make_record(epoch_seconds=1.0)]
        b = [make_record(epoch_seconds=1.5)]
        diff = diff_records(a, b)
        assert len(diff.changed_cells) == 1
        assert diff.changed_cells[0]["field"] == "epoch_seconds"

    def test_partitioning_seconds_is_not_compared(self, make_record):
        """Wall-clock partitioning time differs across hosts and must
        never fail a diff."""
        a = [make_record(partitioning_seconds=1.0)]
        b = [make_record(partitioning_seconds=99.0)]
        assert diff_records(a, b).clean

    def test_cells_added_and_removed(self, make_record):
        a = [make_record(partitioner="random")]
        b = [make_record(partitioner="hdrf")]
        diff = diff_records(a, b)
        assert len(diff.added_cells) == 1
        assert "hdrf" in diff.added_cells[0]
        assert len(diff.removed_cells) == 1
        assert "random" in diff.removed_cells[0]

    def test_engines_distinguished_in_cell_keys(
        self, make_record, make_dgl_record
    ):
        """A DistGNN and a DistDGL record with identical coordinates
        are different cells, not a collision."""
        diff = diff_records([make_record()], [make_dgl_record()])
        assert len(diff.added_cells) == 1
        assert len(diff.removed_cells) == 1


class TestDiffRuns:
    def test_run_self_diff_clean(self, make_record):
        run = RunData(
            label="x",
            records=[make_record()],
            metrics=make_snapshot(),
        )
        diff = diff_runs(run, run)
        assert diff.clean
        assert diff.label_a == "x"

    def test_event_mix_compared_when_both_sides_have_traces(self):
        run_a = RunData(events=[{"kind": "phase"}, {"kind": "phase"}])
        run_b = RunData(events=[{"kind": "phase"}, {"kind": "mark"}])
        diff = diff_runs(run_a, run_b)
        assert diff.event_mix == {
            "mark": {"a": 0, "b": 1},
            "phase": {"a": 2, "b": 1},
        }

    def test_snapshot_phase_mix_wins_over_records(self, make_record):
        record = make_record(
            obs_metrics={"phase_seconds": {"forward": 1.0}}
        )
        run = RunData(records=[record], metrics=make_snapshot())
        diff = diff_runs(run, run)
        # The snapshot has forward+backward; records only forward.
        assert set(diff.phase_mix["phases"]) == {"forward", "backward"}


def test_tolerances_exceeded_logic():
    tolerances = DiffTolerances(rel=0.01, abs_floor=1e-6)
    assert not tolerances.exceeded(0.0, 0.0)
    assert not tolerances.exceeded(1.0, 1.0000001)  # below abs floor
    assert not tolerances.exceeded(100.0, 100.5)  # 0.5% < 1%
    assert tolerances.exceeded(100.0, 102.0)  # 2% > 1%
