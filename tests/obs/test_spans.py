"""Module-level hooks: levels, spans, events, snapshots."""

import pytest

from repro import obs


class TestLevels:
    def test_off_by_default(self):
        assert obs.level() == "off"
        assert not obs.enabled()
        assert not obs.tracing()

    def test_enable_disable(self):
        obs.enable()
        assert obs.level() == "metrics"
        assert obs.enabled() and not obs.tracing()
        obs.enable("trace")
        assert obs.tracing()
        obs.disable()
        assert obs.level() == "off"

    def test_configure_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            obs.configure("loud")


class TestHooksOff:
    def test_hooks_are_noops_when_off(self):
        obs.count("distgnn.epochs")
        obs.gauge("cluster.memory_peak_bytes", 5.0, machine=0)
        obs.observe("distgnn.epoch_seconds", 1.0)
        obs.event("phase", "forward")
        with obs.span("anything"):
            pass
        assert len(obs.get_registry()) == 0

    def test_null_span_is_shared(self):
        assert obs.span("a") is obs.span("b")


class TestHooksOn:
    def test_count_and_observe(self):
        obs.enable()
        obs.count("distgnn.epochs", 2)
        obs.observe("distgnn.epoch_seconds", 0.5)
        names = [e["name"] for e in obs.snapshot()]
        assert "distgnn.epochs" in names
        assert "distgnn.epoch_seconds" in names

    def test_span_observes_timer(self):
        obs.enable()
        with obs.span("my-block"):
            pass
        entry = next(
            e for e in obs.snapshot() if e["name"] == "obs.span_seconds"
        )
        assert entry["labels"] == {"span": "my-block"}
        assert entry["count"] == 1

    def test_record_span_uses_given_seconds(self):
        obs.enable()
        obs.record_span("simulated", 42.0)
        entry = next(
            e for e in obs.snapshot() if e["name"] == "obs.span_seconds"
        )
        assert entry["sum"] == pytest.approx(42.0)

    def test_events_only_at_trace_level(self):
        sink = obs.MemorySink()
        obs.configure("metrics", sink)
        obs.event("mark", "checkpoint")
        assert sink.events == []
        obs.configure("trace", sink)
        obs.event("mark", "checkpoint", epoch=3)
        assert sink.events[0]["kind"] == "mark"
        assert sink.events[0]["epoch"] == 3

    def test_span_emits_trace_events(self):
        sink = obs.MemorySink()
        obs.configure("trace", sink)
        with obs.span("gather", machine=1):
            pass
        kinds = [e["kind"] for e in sink.events]
        assert kinds == ["span-begin", "span-end"]
        assert sink.events[0]["machine"] == 1

    def test_reset_clears_registry_and_epoch(self):
        obs.enable()
        obs.count("distgnn.epochs")
        obs.reset()
        assert len(obs.get_registry()) == 0
        # reset keeps the level: collection continues
        assert obs.enabled()

    def test_save_metrics(self, tmp_path):
        obs.enable()
        obs.count("distgnn.epochs")
        path = tmp_path / "metrics.json"
        obs.save_metrics(str(path))
        import json

        payload = json.loads(path.read_text())
        assert payload[0]["name"] == "distgnn.epochs"
