"""The library's built-in instrumentation, end to end.

Covers the ISSUE's core guarantees: disabled-by-default (no telemetry
state is created unless opted in), subsystem coverage when enabled, and
deterministic ``obs_metrics`` summaries on experiment records.
"""

import pytest

from repro import obs
from repro.distdgl import DistDglEngine
from repro.distgnn import DistGnnEngine
from repro.experiments import (
    TrainingParams,
    cached_edge_partition,
    clear_cache,
    run_distdgl,
    run_distgnn,
)
from repro.partitioning import make_edge_partitioner, make_vertex_partitioner


def _names():
    return {entry["name"] for entry in obs.snapshot()}


@pytest.fixture
def params():
    return TrainingParams(feature_size=32, hidden_dim=32, num_layers=2)


class TestDisabledByDefault:
    def test_partitioner_creates_no_instruments(self, tiny_or):
        make_edge_partitioner("hdrf").partition(tiny_or, 4)
        assert len(obs.get_registry()) == 0

    def test_engines_create_no_instruments(self, tiny_or, tiny_or_split):
        edge = make_edge_partitioner("random").partition(tiny_or, 4)
        DistGnnEngine(
            edge, feature_size=32, hidden_dim=32, num_layers=2
        ).simulate_epoch()
        vertex = make_vertex_partitioner("random").partition(tiny_or, 4)
        DistDglEngine(
            vertex, tiny_or_split, feature_size=32
        ).run_epoch()
        assert len(obs.get_registry()) == 0

    def test_record_has_no_obs_metrics(self, tiny_or, params):
        record = run_distgnn(tiny_or, "random", 4, params)
        assert record.obs_metrics is None


class TestPartitionerMetrics:
    def test_run_and_chunk_metrics(self, tiny_or):
        obs.enable()
        make_edge_partitioner("hdrf").partition(tiny_or, 4)
        names = _names()
        assert "partitioner.runs" in names
        assert "partitioner.seconds" in names
        assert "partitioner.edges_assigned" in names
        assert "partitioner.chunk_items" in names

    def test_vertex_streaming_chunk_metrics(self, tiny_or):
        obs.enable()
        make_vertex_partitioner("ldg").partition(tiny_or, 4)
        entry = next(
            e for e in obs.snapshot()
            if e["name"] == "partitioner.chunk_items"
        )
        assert entry["labels"] == {"kernel": "ldg"}

    def test_instrumentation_does_not_change_result(self, tiny_or):
        plain = make_edge_partitioner("hdrf").partition(tiny_or, 4)
        obs.enable()
        observed = make_edge_partitioner("hdrf").partition(tiny_or, 4)
        assert (plain.assignment == observed.assignment).all()


class TestEngineMetrics:
    def test_distgnn_epoch_metrics(self, tiny_or):
        obs.enable()
        edge = make_edge_partitioner("random").partition(tiny_or, 4)
        DistGnnEngine(
            edge, feature_size=32, hidden_dim=32, num_layers=2
        ).simulate_epoch()
        names = _names()
        assert "distgnn.epochs" in names
        assert "distgnn.epoch_seconds" in names
        assert "distgnn.network_bytes" in names
        assert "cluster.phase_seconds" in names
        assert "cluster.machine_busy_seconds" in names
        assert "cluster.bytes_sent" in names

    def test_distdgl_step_metrics(self, tiny_or, tiny_or_split):
        obs.enable()
        vertex = make_vertex_partitioner("random").partition(tiny_or, 4)
        DistDglEngine(vertex, tiny_or_split, feature_size=32).run_epoch()
        names = _names()
        assert "distdgl.steps" in names
        assert "distdgl.step_seconds" in names
        assert "distdgl.sampled_edges" in names
        assert "distdgl.remote_input_vertices" in names

    def test_cache_metrics(self, tiny_or):
        obs.enable()
        clear_cache()
        cached_edge_partition(tiny_or, "random", 4)
        cached_edge_partition(tiny_or, "random", 4)
        entries = {
            e["name"]: e["value"] for e in obs.snapshot()
            if e["name"].startswith("partition_cache.")
        }
        assert entries["partition_cache.misses"] == 1.0
        assert entries["partition_cache.hits"] == 1.0


class TestRecordObsMetrics:
    def test_obs_metrics_is_simulated_only(self, tiny_or, params):
        obs.enable()
        record = run_distgnn(tiny_or, "random", 4, params)
        metrics = record.obs_metrics
        assert metrics is not None
        assert set(metrics) == {
            "phase_seconds", "marks", "bytes_sent_total",
            "bytes_received_total", "lost_messages_total",
            "memory_peak_bytes_max", "traffic_matrix",
            "traffic_phase_bytes", "memory_category_peaks",
            "memory_timeline",
        }
        assert metrics["bytes_sent_total"] > 0
        k = record.num_machines
        matrix = metrics["traffic_matrix"]
        assert len(matrix) == k and all(len(row) == k for row in matrix)
        total = sum(sum(row) for row in matrix)
        assert total == pytest.approx(metrics["bytes_sent_total"])
        assert sum(metrics["traffic_phase_bytes"].values()) == (
            pytest.approx(total)
        )
        assert all(matrix[i][i] == 0.0 for i in range(k))
        peaks = metrics["memory_category_peaks"]
        assert "features" in peaks
        assert all(len(v) == k for v in peaks.values())
        assert all(len(v) == k for v in metrics["memory_timeline"].values())

    def test_obs_metrics_deterministic(self, tiny_or, tiny_or_split,
                                       params):
        obs.enable()
        first = run_distdgl(tiny_or, "random", 4, params,
                            split=tiny_or_split)
        obs.reset()
        obs.enable()
        second = run_distdgl(tiny_or, "random", 4, params,
                             split=tiny_or_split)
        assert first.obs_metrics == second.obs_metrics
        assert first == second

    def test_experiments_runs_counted(self, tiny_or, params):
        obs.enable()
        run_distgnn(tiny_or, "random", 4, params)
        entry = next(
            e for e in obs.snapshot() if e["name"] == "experiments.runs"
        )
        assert entry["labels"] == {"engine": "distgnn"}
        assert entry["value"] == 1.0
