"""ServeMetrics: daemon telemetry, exposition round trip, quantiles."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.serve_metrics import (
    ServeMetrics,
    histogram_quantile,
    parse_prometheus_totals,
    prometheus_name,
    render_prometheus,
)
from repro.obs.sink import MemorySink


class TestDisabled:
    def test_hooks_are_noops_and_snapshot_empty(self):
        metrics = ServeMetrics(enabled=False)
        metrics.request_started()
        metrics.request_finished("GET", "/queue", 200, 0.01)
        metrics.job_admitted("alice")
        metrics.cell_finished("distgnn", 0.1, 0.2)
        metrics.refresh_queue({}, 0, 10, 0, 0, 0)
        assert metrics.snapshot() == []
        assert metrics.totals() == {}

    def test_heartbeat_tracked_even_when_disabled(self):
        metrics = ServeMetrics(enabled=False)
        assert metrics.heartbeat_age() is None
        metrics.heartbeat(now=100.0)
        assert metrics.heartbeat_age(now=102.5) == pytest.approx(2.5)


class TestEnabled:
    def test_http_request_accounting(self):
        metrics = ServeMetrics(enabled=True)
        metrics.request_started()
        metrics.request_finished("GET", "/queue", 200, 0.01)
        metrics.request_finished("POST", "/jobs", 429, 0.02)
        totals = metrics.totals()
        assert totals["serve.http_requests"] == 2
        assert totals["serve.http_inflight"] == 0
        assert totals["serve.http_request_seconds"] == pytest.approx(
            0.03
        )

    def test_request_events_reach_sink(self):
        sink = MemorySink()
        metrics = ServeMetrics(enabled=True, sink=sink)
        metrics.request_finished(
            "POST", "/jobs", 201, 0.05, tenant="alice"
        )
        metrics.log("GET /queue HTTP/1.1 200 -")
        kinds = [event["kind"] for event in sink.events]
        assert kinds == ["http-request", "http-log"]
        assert sink.events[0]["tenant"] == "alice"
        assert sink.events[0]["status"] == 201
        assert "GET /queue" in sink.events[1]["message"]

    def test_counters_and_evictions(self):
        metrics = ServeMetrics(enabled=True)
        metrics.job_admitted("a")
        metrics.job_finished("done")
        metrics.admission_rejected("queue-full")
        metrics.dedup_hit("a")
        metrics.dedup_miss("b")
        metrics.cell_served("a")
        metrics.cache_evicted(3)
        metrics.job_evicted()
        metrics.cache_evicted(0)  # no-op, no series created
        totals = metrics.totals()
        assert totals["serve.jobs_admitted"] == 1
        assert totals["serve.jobs_finished"] == 1
        assert totals["serve.admission_rejected"] == 1
        assert totals["serve.dedup_hits"] == 1
        assert totals["serve.dedup_misses"] == 1
        assert totals["serve.tenant_cells_served"] == 1
        assert totals["serve.cell_cache_evictions"] == 3
        assert totals["serve.job_evictions"] == 1

    def test_refresh_queue_zeroes_stale_tenants(self):
        metrics = ServeMetrics(enabled=True)
        metrics.refresh_queue(
            {("alice", 0): 5}, total=5, capacity=10, running=1,
            cached_cells=2, jobs_retained=3,
        )
        metrics.refresh_queue(
            {("bob", 1): 2}, total=2, capacity=10, running=0,
            cached_cells=2, jobs_retained=3,
        )
        depth = {
            tuple(sorted(entry["labels"].items())): entry["value"]
            for entry in metrics.snapshot()
            if entry["name"] == "serve.queue_depth"
        }
        # Label values are stringified by the registry.
        assert depth[(("priority", "0"), ("tenant", "alice"))] == 0.0
        assert depth[(("priority", "1"), ("tenant", "bob"))] == 2.0
        totals = metrics.totals()
        assert totals["serve.queue_depth_total"] == 2
        assert totals["serve.queue_capacity"] == 10

    def test_snapshot_derives_p95_and_heartbeat_age(self):
        metrics = ServeMetrics(enabled=True)
        for seconds in (0.02, 0.03, 0.05):
            metrics.first_record(seconds)
        metrics.heartbeat(now=10.0)
        totals = metrics.totals(metrics.snapshot(now=10.5))
        assert totals[
            "serve.scheduler_heartbeat_age_seconds"
        ] == pytest.approx(0.5)
        p95 = totals["serve.admission_to_first_record_p95_seconds"]
        assert 0.01 < p95 <= 0.1  # inside the observations' bucket


class TestHistogramQuantile:
    def _histogram(self, values):
        registry = MetricsRegistry()
        histogram = registry.timer(
            "serve.admission_to_first_record_seconds"
        )
        for value in values:
            histogram.observe(value)
        return histogram

    def test_interpolates_within_bucket(self):
        histogram = self._histogram([0.02] * 100)
        # All mass in the (0.01, 0.1] bucket; the median interpolates
        # to the bucket midpoint.
        assert histogram_quantile(histogram, 0.5) == pytest.approx(
            0.055
        )

    def test_overflow_bucket_clamps_to_max(self):
        histogram = self._histogram([50.0, 60.0])
        assert histogram_quantile(histogram, 0.99) == 60.0

    def test_empty_histogram_is_zero(self):
        histogram = self._histogram([])
        assert histogram_quantile(histogram, 0.95) == 0.0

    def test_rejects_bad_quantile(self):
        histogram = self._histogram([0.01])
        with pytest.raises(ValueError):
            histogram_quantile(histogram, 1.5)


class TestExposition:
    def test_prometheus_name_mangling(self):
        assert (
            prometheus_name("serve.http_requests")
            == "repro_serve_http_requests"
        )

    def test_render_parse_round_trip(self):
        metrics = ServeMetrics(enabled=True)
        metrics.request_finished("GET", "/queue", 200, 0.01)
        metrics.request_finished("POST", "/jobs", 201, 0.03)
        metrics.job_admitted("alice")
        metrics.job_admitted("bob")
        metrics.refresh_queue(
            {("alice", 0): 4}, total=4, capacity=16, running=1,
            cached_cells=0, jobs_retained=2,
        )
        text = render_prometheus(metrics.snapshot())
        assert "# TYPE repro_serve_http_requests counter" in text
        assert "# TYPE repro_serve_http_request_seconds histogram" in text
        assert 'le="+Inf"' in text
        totals = parse_prometheus_totals(text)
        # The scraped totals reconstruct the registry-side totals.
        expected = metrics.totals()
        for name, value in expected.items():
            assert totals[name] == pytest.approx(value), name

    def test_histogram_buckets_are_cumulative(self):
        metrics = ServeMetrics(enabled=True)
        metrics.first_record(0.02)
        metrics.first_record(5.0)
        text = render_prometheus(metrics.snapshot())
        prefix = (
            "repro_serve_admission_to_first_record_seconds_bucket"
        )
        counts = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith(prefix)
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 2.0

    def test_parser_skips_foreign_and_malformed_lines(self):
        text = (
            "# HELP x y\n"
            "not_a_repro_metric 7\n"
            "repro_serve_http_requests{route=\"/queue\"} nonsense\n"
            "repro_serve_http_requests{route=\"/queue\"} 3\n"
        )
        assert parse_prometheus_totals(text) == {
            "serve.http_requests": 3.0
        }
