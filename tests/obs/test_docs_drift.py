"""docs/observability.md must match the catalog it is rendered from."""

import os

from repro.obs import metric_names, render_metric_docs

DOCS_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir,
    "docs", "observability.md",
)


def test_rendered_docs_match_committed_file():
    with open(DOCS_PATH, encoding="utf-8") as handle:
        committed = handle.read()
    assert committed == render_metric_docs(), (
        "docs/observability.md is stale; regenerate with "
        "`PYTHONPATH=src python scripts/gen_metric_docs.py`"
    )


def test_rendered_docs_cover_every_metric():
    rendered = render_metric_docs()
    for name in metric_names():
        assert f"`{name}`" in rendered, name


def test_rendered_docs_carry_generation_warning():
    rendered = render_metric_docs()
    assert "Generated file" in rendered
    assert "gen_metric_docs.py" in rendered
