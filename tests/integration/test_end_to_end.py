"""End-to-end integration: dataset -> partition -> engines -> findings.

These tests assert the paper's *qualitative* findings survive the whole
pipeline at test scale (the benchmarks assert them at full scale).
"""

import numpy as np
import pytest

from repro.distdgl import DistDglEngine, DistributedMiniBatchTrainer
from repro.distgnn import DistGnnEngine, DistributedFullBatchTrainer
from repro.experiments import (
    TrainingParams,
    amortization_table,
    r_squared,
    run_distgnn_grid,
)
from repro.graph import load_dataset, random_split
from repro.partitioning import (
    make_edge_partitioner,
    make_vertex_partitioner,
)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("OR", "tiny")


@pytest.fixture(scope="module")
def split(graph):
    return random_split(graph, seed=7)


def test_finding1_partitioning_speeds_up_training(graph, split):
    """RQ-1: partitioning reduces training time in both systems."""
    rnd_ep = make_edge_partitioner("random").partition(graph, 8, seed=0)
    hep_ep = make_edge_partitioner("hep100").partition(graph, 8, seed=0)
    t_rnd = DistGnnEngine(rnd_ep, 64, 64, 3).simulate_epoch().epoch_seconds
    t_hep = DistGnnEngine(hep_ep, 64, 64, 3).simulate_epoch().epoch_seconds
    assert t_hep < t_rnd

    rnd_vp = make_vertex_partitioner("random").partition(graph, 4, seed=0)
    met_vp = make_vertex_partitioner("metis").partition(graph, 4, seed=0)
    t_rnd2 = DistDglEngine(
        rnd_vp, split, feature_size=256, seed=0
    ).run_epoch().epoch_seconds
    t_met = DistDglEngine(
        met_vp, split, feature_size=256, seed=0
    ).run_epoch().epoch_seconds
    assert t_met < t_rnd2


def test_finding2_rf_correlates_with_memory_and_traffic(graph):
    """RQ-2: replication factor tracks memory and network (R^2 >= 0.95)."""
    params = TrainingParams(feature_size=64, hidden_dim=64, num_layers=3)
    records = run_distgnn_grid(
        graph,
        ["random", "dbh", "hdrf", "2ps-l", "hep10", "hep100"],
        [8],
        [params],
    )
    rf = [r.replication_factor for r in records]
    assert r_squared(rf, [r.network_bytes for r in records]) > 0.95
    assert r_squared(rf, [r.total_memory_bytes for r in records]) > 0.95


def test_finding3_feature_size_raises_effectiveness(graph, split):
    """RQ-3 (DistDGL): bigger features -> partitioning matters more."""
    speedups = {}
    for fs in (16, 512):
        times = {}
        for name in ("random", "metis"):
            part = make_vertex_partitioner(name).partition(graph, 4, seed=0)
            times[name] = DistDglEngine(
                part, split, feature_size=fs, seed=0
            ).run_epoch().epoch_seconds
        speedups[fs] = times["random"] / times["metis"]
    assert speedups[512] > speedups[16] * 0.98  # at least not worse


def test_finding4_scaleout_helps_distgnn(graph):
    """RQ-4 (DistGNN): effectiveness grows with machine count."""
    speedups = []
    for k in (4, 16):
        t = {}
        for name in ("random", "hep100"):
            part = make_edge_partitioner(name).partition(graph, k, seed=0)
            t[name] = DistGnnEngine(part, 64, 64, 3).simulate_epoch().epoch_seconds
        speedups.append(t["random"] / t["hep100"])
    assert speedups[1] > speedups[0]


def test_finding5_amortization(graph):
    """RQ-5: partitioning time amortizes within a plausible epoch count."""
    params = TrainingParams(feature_size=64, hidden_dim=64, num_layers=3)
    records = run_distgnn_grid(
        graph, ["random", "dbh", "hep100"], [8], [params]
    )
    table = amortization_table(records)["OR"]
    assert table["dbh"].epochs is not None
    assert table["hep100"].epochs is not None


def test_real_training_pipeline_full_and_minibatch(graph, split):
    """Both executable trainers learn the same synthetic task."""
    rng = np.random.default_rng(0)
    labels = rng.integers(0, 4, size=graph.num_vertices)
    features = rng.normal(size=(graph.num_vertices, 8)) * 0.3
    features[np.arange(graph.num_vertices), labels] += 2.0

    ep = make_edge_partitioner("hdrf").partition(graph, 4, seed=0)
    full = DistributedFullBatchTrainer(
        ep, features, labels, split.train_mask(graph.num_vertices),
        hidden_dim=16, num_layers=2,
    )
    full_losses = full.train(15)
    assert full_losses[-1] < full_losses[0]

    vp = make_vertex_partitioner("metis").partition(graph, 4, seed=0)
    mini = DistributedMiniBatchTrainer(
        vp, split, features, labels,
        hidden_dim=16, num_layers=2, global_batch_size=64, seed=0,
    )
    mini_losses = mini.train(6)
    assert mini_losses[-1] < mini_losses[0]
    assert full.evaluate(split.test) > 0.4
    assert mini.evaluate(split.test) > 0.4
