"""Smoke tests: every example script runs end to end.

These call the example mains in-process (importing by path) so the
partition/dataset caches are shared and failures produce real tracebacks.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)


def run_example(name: str, argv=None, capsys=None) -> str:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    spec = importlib.util.spec_from_file_location(
        f"example_{name.removesuffix('.py')}", path
    )
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [path] + list(argv or [])
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys=capsys)
    assert "speedup over Random" in out
    assert "HEP100" in out


def test_social_network_full_batch(capsys):
    out = run_example("social_network_full_batch.py", capsys=capsys)
    assert "Final-loss spread" in out
    # Equivalence: the spread across partitioners is numerically zero.
    spread = float(out.split("spread across partitioners:")[1].split()[0])
    assert spread < 1e-9


def test_minibatch_sampling_study(capsys):
    out = run_example("minibatch_sampling_study.py", capsys=capsys)
    assert "partitioner" in out
    assert "metis" in out


def test_partitioner_selection(capsys):
    out = run_example(
        "partitioner_selection.py", argv=["OR", "8", "30"], capsys=capsys
    )
    assert "Recommendation for 30 epochs" in out


def test_distributed_inference(capsys):
    out = run_example("distributed_inference.py", capsys=capsys)
    assert "True" in out  # distributed == centralized
    assert "halo" in out


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "social_network_full_batch.py",
        "minibatch_sampling_study.py",
        "partitioner_selection.py",
        "distributed_inference.py",
        "delayed_aggregation.py",
        "observability_tour.py",
    ],
)
def test_example_exists_and_documented(name):
    path = os.path.join(EXAMPLES_DIR, name)
    assert os.path.exists(path)
    with open(path) as handle:
        content = handle.read()
    assert content.startswith('"""')  # module docstring
    assert "Usage::" in content or "Usage:" in content


def test_delayed_aggregation(capsys):
    out = run_example("delayed_aggregation.py", capsys=capsys)
    assert "traffic saved" in out
    assert "r=2" in out


def test_observability_tour(capsys):
    from repro import obs

    out = run_example("observability_tour.py", capsys=capsys)
    assert "no instruments created" in out
    assert "series collected" in out
    assert "span-begin=1" in out
    assert "# Run report" in out
    # the tour must leave the global obs state clean
    assert not obs.enabled()
    assert len(obs.get_registry()) == 0
