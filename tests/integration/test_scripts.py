"""Smoke tests for the orchestration scripts."""

import importlib.util
import json
import os

SCRIPTS_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "scripts"
)


def load_script(name):
    path = os.path.abspath(os.path.join(SCRIPTS_DIR, name))
    spec = importlib.util.spec_from_file_location(
        f"script_{name.removesuffix('.py')}", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_full_sweep_quick(tmp_path, capsys):
    sweep = load_script("run_full_sweep.py")
    code = sweep.main(
        [
            "--quick", "--graphs", "OR", "--machines", "4",
            "--scale", "tiny", "--out", str(tmp_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "mean speedup over Random" in out
    for name in ("sweep_distgnn.json", "sweep_distdgl.json"):
        payload = json.loads((tmp_path / name).read_text())
        assert len(payload) > 0
        assert payload[0]["data"]["graph"] == "OR"


def test_sweep_records_reloadable(tmp_path):
    from repro.experiments import load_records

    sweep = load_script("run_full_sweep.py")
    sweep.main(
        [
            "--quick", "--graphs", "OR", "--machines", "4",
            "--scale", "tiny", "--out", str(tmp_path),
        ]
    )
    records = load_records(tmp_path / "sweep_distgnn.json")
    assert all(r.epoch_seconds > 0 for r in records)


def test_sweep_with_telemetry(tmp_path):
    from repro.experiments import load_records
    from repro.obs import read_jsonl

    sweep = load_script("run_full_sweep.py")
    obs_path = tmp_path / "telemetry.jsonl"
    code = sweep.main(
        [
            "--quick", "--graphs", "OR", "--machines", "4",
            "--scale", "tiny", "--out", str(tmp_path),
            "--obs-level", "metrics", "--obs-out", str(obs_path),
        ]
    )
    assert code == 0
    records = load_records(tmp_path / "sweep_distgnn.json")
    assert all(r.obs_metrics is not None for r in records)
    events = read_jsonl(str(obs_path))
    final = events[-1]
    assert final["kind"] == "metrics-snapshot"
    assert any(m["name"] == "experiments.runs" for m in final["metrics"])


def test_build_run_report(tmp_path, capsys):
    import json

    sweep = load_script("run_full_sweep.py")
    sweep.main(
        [
            "--quick", "--graphs", "OR", "--machines", "4",
            "--scale", "tiny", "--out", str(tmp_path),
            "--obs-level", "metrics",
        ]
    )
    report_script = load_script("build_run_report.py")
    code = report_script.main(
        [
            str(tmp_path / "sweep_distgnn.json"),
            str(tmp_path / "sweep_distdgl.json"),
            "--out", str(tmp_path / "reports"),
        ]
    )
    assert code == 0
    markdown = (tmp_path / "reports" / "run_report.md").read_text()
    assert "# Run report" in markdown
    assert "## Speedup over Random" in markdown
    assert "## Telemetry" in markdown
    payload = json.loads(
        (tmp_path / "reports" / "run_report.json").read_text()
    )
    assert payload["engines"]["distgnn"]["num_records"] > 0


def test_build_run_report_rejects_empty(tmp_path, capsys):
    empty = tmp_path / "empty.json"
    empty.write_text("[]")
    report_script = load_script("build_run_report.py")
    assert report_script.main([str(empty)]) == 1


def test_gen_metric_docs(tmp_path):
    gen = load_script("gen_metric_docs.py")
    out = tmp_path / "observability.md"
    assert gen.main(["--out", str(out)]) == 0
    assert gen.main(["--out", str(out), "--check"]) == 0
    out.write_text(out.read_text() + "\ndrifted\n")
    assert gen.main(["--out", str(out), "--check"]) == 1
    assert gen.main(["--out", str(tmp_path / "gone.md"), "--check"]) == 1


def test_committed_metric_docs_in_sync():
    """CI gate mirrored as a tier-1 test: the repo file must match."""
    gen = load_script("gen_metric_docs.py")
    assert gen.main(["--check"]) == 0


def test_check_docstrings_clean_tree(capsys):
    lint = load_script("check_docstrings.py")
    assert lint.main([]) == 0
    assert "documented" in capsys.readouterr().out


def test_check_docstrings_finds_gaps(tmp_path):
    lint = load_script("check_docstrings.py")
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "mod.py").write_text(
        '"""Module docs."""\n\n\n'
        "def documented():\n"
        '    """Has one."""\n\n\n'
        "def naked():\n"
        "    pass\n\n\n"
        "class AlsoNaked:\n"
        "    def method(self):\n"
        "        pass\n"
    )
    assert lint.main([str(package)]) == 1


def test_check_docstrings_ignores_private(tmp_path):
    lint = load_script("check_docstrings.py")
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "mod.py").write_text(
        '"""Module docs."""\n\n\n'
        "def _private():\n"
        "    pass\n"
    )
    assert lint.main([str(package)]) == 0


def test_sweep_with_alert_rules_clean_run_passes(tmp_path, capsys):
    sweep = load_script("run_full_sweep.py")
    rules = os.path.abspath(
        os.path.join(SCRIPTS_DIR, os.pardir, "examples",
                     "alert_rules.json")
    )
    code = sweep.main(
        [
            "--quick", "--graphs", "OR", "--machines", "2",
            "--scale", "tiny", "--out", str(tmp_path),
            "--obs-level", "metrics",
            "--rules", rules, "--abort-on", "critical",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "ABORTED" not in captured.err


def test_sweep_abort_on_critical_rule(tmp_path, capsys):
    """Injected message loss trips the no-lost-messages rule: the sweep
    stops early with exit code 2, names the rule, and still saves the
    records finished so far."""
    sweep = load_script("run_full_sweep.py")
    rules = os.path.abspath(
        os.path.join(SCRIPTS_DIR, os.pardir, "examples",
                     "alert_rules.json")
    )
    code = sweep.main(
        [
            "--quick", "--graphs", "OR", "--machines", "2",
            "--scale", "tiny", "--out", str(tmp_path),
            "--obs-level", "metrics", "--loss-rate", "0.5",
            "--epochs", "4",
            "--rules", rules, "--abort-on", "critical",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "ABORTED" in err
    assert "no-lost-messages" in err
    # The partial-save path still runs: the records file is written
    # even when the very first cell trips the rule (so it may be
    # empty, but it must exist and parse).
    saved = json.loads((tmp_path / "sweep_distgnn.json").read_text())
    assert isinstance(saved, list)
