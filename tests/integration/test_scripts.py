"""Smoke tests for the orchestration scripts."""

import importlib.util
import json
import os

SCRIPTS_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "scripts"
)


def load_script(name):
    path = os.path.abspath(os.path.join(SCRIPTS_DIR, name))
    spec = importlib.util.spec_from_file_location(
        f"script_{name.removesuffix('.py')}", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_full_sweep_quick(tmp_path, capsys):
    sweep = load_script("run_full_sweep.py")
    code = sweep.main(
        [
            "--quick", "--graphs", "OR", "--machines", "4",
            "--scale", "tiny", "--out", str(tmp_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "mean speedup over Random" in out
    for name in ("sweep_distgnn.json", "sweep_distdgl.json"):
        payload = json.loads((tmp_path / name).read_text())
        assert len(payload) > 0
        assert payload[0]["data"]["graph"] == "OR"


def test_sweep_records_reloadable(tmp_path):
    from repro.experiments import load_records

    sweep = load_script("run_full_sweep.py")
    sweep.main(
        [
            "--quick", "--graphs", "OR", "--machines", "4",
            "--scale", "tiny", "--out", str(tmp_path),
        ]
    )
    records = load_records(tmp_path / "sweep_distgnn.json")
    assert all(r.epoch_seconds > 0 for r in records)
