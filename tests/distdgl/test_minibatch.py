"""Tests for real distributed mini-batch training."""

import numpy as np
import pytest

from repro.distdgl import DistributedMiniBatchTrainer
from repro.graph import random_split
from repro.partitioning import MetisPartitioner, RandomVertexPartitioner


@pytest.fixture
def problem(tiny_or, rng):
    labels = rng.integers(0, 4, size=tiny_or.num_vertices)
    features = rng.normal(size=(tiny_or.num_vertices, 8)) * 0.3
    features[np.arange(tiny_or.num_vertices), labels] += 2.0
    split = random_split(tiny_or, seed=1)
    return features, labels, split


def test_training_learns(tiny_or, problem):
    features, labels, split = problem
    partition = MetisPartitioner().partition(tiny_or, 4, seed=0)
    trainer = DistributedMiniBatchTrainer(
        partition, split, features, labels,
        hidden_dim=16, num_layers=2, global_batch_size=64, seed=0,
    )
    losses = trainer.train(8)
    assert losses[-1] < 0.7 * losses[0]
    assert trainer.evaluate(split.test) > 0.5


@pytest.mark.parametrize("arch", ["sage", "gcn", "gat"])
def test_all_architectures_train(tiny_or, problem, arch):
    features, labels, split = problem
    partition = RandomVertexPartitioner().partition(tiny_or, 2, seed=0)
    trainer = DistributedMiniBatchTrainer(
        partition, split, features, labels, arch=arch,
        hidden_dim=16, num_layers=2, global_batch_size=64, seed=0,
    )
    losses = trainer.train(5)
    assert np.isfinite(losses).all()
    assert losses[-1] < losses[0]


def test_deterministic_given_seed(tiny_or, problem):
    features, labels, split = problem
    partition = RandomVertexPartitioner().partition(tiny_or, 4, seed=0)
    runs = []
    for _ in range(2):
        trainer = DistributedMiniBatchTrainer(
            partition, split, features, labels,
            hidden_dim=8, num_layers=2, seed=5,
        )
        runs.append(trainer.train(2))
    assert np.allclose(runs[0], runs[1])


def test_worker_count_changes_sampling_but_still_learns(tiny_or, problem):
    features, labels, split = problem
    partition = RandomVertexPartitioner().partition(tiny_or, 8, seed=0)
    trainer = DistributedMiniBatchTrainer(
        partition, split, features, labels,
        hidden_dim=16, num_layers=2, global_batch_size=64, seed=0,
    )
    losses = trainer.train(8)
    assert losses[-1] < losses[0]


def test_validates_shapes(tiny_or, problem):
    features, labels, split = problem
    partition = RandomVertexPartitioner().partition(tiny_or, 2, seed=0)
    with pytest.raises(ValueError):
        DistributedMiniBatchTrainer(
            partition, split, features[:5], labels
        )
