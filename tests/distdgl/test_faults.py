"""Fault injection and retry/degradation recovery in the DistDGL engine."""

import numpy as np
import pytest

from repro.cluster import FaultEvent, FaultPlan, RecoveryPolicy
from repro.distdgl import DistDglEngine
from repro.graph import load_dataset, random_split
from repro.partitioning import RandomVertexPartitioner


@pytest.fixture(scope="module")
def graph():
    return load_dataset("OR", "tiny")


@pytest.fixture(scope="module")
def split(graph):
    return random_split(graph, seed=7)


def make_engine(graph, split, k=4):
    partition = RandomVertexPartitioner().partition(graph, k, seed=0)
    return DistDglEngine(
        partition, split, feature_size=16, hidden_dim=16, num_layers=2,
        global_batch_size=64, seed=0,
    )


def crash_plan(epoch=0, machine=1, step=0):
    return FaultPlan(
        (FaultEvent("crash", epoch=epoch, machine=machine, step=step),)
    )


def test_no_faults_matches_plain_training(graph, split):
    plain = make_engine(graph, split)
    faulty = make_engine(graph, split)
    a = plain.run_training(2)
    b = faulty.run_training(2, fault_plan=FaultPlan(),
                            recovery=RecoveryPolicy())
    assert [r.epoch_seconds for r in a] == [r.epoch_seconds for r in b]


def test_crash_degrades_to_survivors(graph, split):
    engine = make_engine(graph, split)
    engine.run_training(1, fault_plan=crash_plan(), recovery=RecoveryPolicy())
    summary = engine.fault_summary
    assert summary.crashes == 1
    assert summary.retries == RecoveryPolicy().max_retries
    # Every step from the crash step on runs without the dead worker.
    assert summary.degraded_steps >= 1
    totals = engine.cluster.timeline.phase_totals()
    assert totals["fault-detect"] > 0
    assert totals["fault-backoff"] == pytest.approx(
        RecoveryPolicy().backoff_seconds()
    )


def test_dead_worker_restarts_next_epoch(graph, split):
    engine = make_engine(graph, split)
    engine.run_training(2, fault_plan=crash_plan(epoch=0),
                        recovery=RecoveryPolicy())
    assert engine.cluster.machines[1].crashes == 1
    assert engine.cluster.machines[1].restarts == 1
    totals = engine.cluster.timeline.phase_totals()
    assert totals["fault-restart"] > 0
    # After the restart the worker is active again.
    assert not engine._dead_workers


def test_last_survivor_is_never_killed(graph, split):
    engine = make_engine(graph, split, k=2)
    plan = FaultPlan(
        (
            FaultEvent("crash", epoch=0, machine=0),
            FaultEvent("crash", epoch=0, machine=1),
        )
    )
    engine.run_training(1, fault_plan=plan, recovery=RecoveryPolicy())
    assert engine.fault_summary.crashes == 1  # second crash is skipped


def test_slowdown_stretches_epoch(graph, split):
    plain = make_engine(graph, split)
    base = plain.run_training(1)[0].epoch_seconds
    slow = make_engine(graph, split)
    plan = FaultPlan(
        (FaultEvent("slowdown", epoch=0, machine=0, magnitude=8.0),)
    )
    stretched = slow.run_training(
        1, fault_plan=plan, recovery=RecoveryPolicy()
    )[0].epoch_seconds
    assert slow.fault_summary.slowdowns == 1
    assert stretched > base


def test_lost_message_charges_retransmit(graph, split):
    plain = make_engine(graph, split)
    base = plain.run_training(1)[0].epoch_seconds
    engine = make_engine(graph, split)
    plan = FaultPlan(
        (FaultEvent("lost-message", epoch=0, machine=2, step=0),)
    )
    reports = engine.run_training(1, fault_plan=plan,
                                  recovery=RecoveryPolicy())
    assert engine.fault_summary.lost_messages == 1
    assert engine.cluster.fabric.lost_messages[2] == 1
    assert reports[0].epoch_seconds > base


def test_recovery_seconds_accounted(graph, split):
    engine = make_engine(graph, split)
    engine.run_training(2, fault_plan=crash_plan(epoch=0),
                        recovery=RecoveryPolicy())
    timeline = engine.cluster.timeline
    assert timeline.recovery_seconds() > 0
    assert timeline.interrupted_records()
    assert timeline.recovery_seconds() < timeline.total_seconds


def test_faulty_run_is_deterministic(graph, split):
    plan = FaultPlan.generate(4, 3, crash_rate=0.2, slowdown_rate=0.2,
                              loss_rate=0.2, seed=11)
    runs = []
    for _ in range(2):
        engine = make_engine(graph, split)
        engine.run_training(3, fault_plan=plan, recovery=RecoveryPolicy())
        timeline = engine.cluster.timeline
        runs.append(
            (
                [(r.name, r.per_machine_seconds.tolist(), r.interrupted)
                 for r in timeline.records],
                [(m.name, m.kind, m.at_seconds, m.machine)
                 for m in timeline.marks],
                engine.fault_summary,
            )
        )
    assert runs[0] == runs[1]
