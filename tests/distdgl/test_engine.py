"""Tests for the DistDGL mini-batch engine."""

import numpy as np
import pytest

from repro.distdgl import DistDglEngine
from repro.graph import load_dataset, random_split
from repro.partitioning import MetisPartitioner, RandomVertexPartitioner


@pytest.fixture(scope="module")
def graph():
    return load_dataset("OR", "tiny")


@pytest.fixture(scope="module")
def split(graph):
    return random_split(graph, seed=7)


@pytest.fixture(scope="module")
def partitions(graph):
    return {
        "random": RandomVertexPartitioner().partition(graph, 4, seed=0),
        "metis": MetisPartitioner().partition(graph, 4, seed=0),
    }


def make_engine(partition, split, **kw):
    defaults = dict(
        feature_size=32, hidden_dim=32, num_layers=2,
        global_batch_size=32, seed=0,
    )
    defaults.update(kw)
    return DistDglEngine(partition, split, **defaults)


class TestStep:
    def test_phases_positive(self, partitions, split):
        step = make_engine(partitions["random"], split).run_step()
        assert step.sample_seconds > 0
        assert step.fetch_seconds > 0
        assert step.forward_seconds > 0
        assert step.backward_seconds > step.forward_seconds
        assert step.step_seconds == pytest.approx(
            step.sample_seconds + step.fetch_seconds + step.forward_seconds
            + step.backward_seconds + step.update_seconds
        )

    def test_remote_plus_local_inputs(self, partitions, split):
        step = make_engine(partitions["random"], split).run_step()
        assert step.remote_input_vertices > 0
        assert step.local_input_vertices > 0

    def test_input_balance_at_least_one(self, partitions, split):
        step = make_engine(partitions["random"], split).run_step()
        assert step.input_vertex_balance >= 1.0


class TestEpoch:
    def test_step_count_follows_batch_size(self, partitions, split):
        engine = make_engine(
            partitions["random"], split, global_batch_size=16
        )
        report = engine.run_epoch()
        expected = int(np.ceil(split.train.shape[0] / 16))
        assert len(report.steps) == expected

    def test_phase_seconds_sum_to_epoch(self, partitions, split):
        report = make_engine(partitions["random"], split).run_epoch()
        assert sum(report.phase_seconds().values()) == pytest.approx(
            report.epoch_seconds
        )

    def test_training_time_balance(self, partitions, split):
        report = make_engine(partitions["random"], split).run_epoch()
        assert report.training_time_balance() >= 1.0


class TestPartitioningEffect:
    def test_metis_fetches_fewer_remote_vertices(self, partitions, split):
        rnd = make_engine(partitions["random"], split, seed=1).run_epoch()
        metis = make_engine(partitions["metis"], split, seed=1).run_epoch()
        assert (
            metis.remote_input_vertices < rnd.remote_input_vertices
        )

    def test_metis_trains_faster(self, partitions, split):
        rnd = make_engine(
            partitions["random"], split, feature_size=256, seed=1
        ).run_epoch()
        metis = make_engine(
            partitions["metis"], split, feature_size=256, seed=1
        ).run_epoch()
        assert metis.epoch_seconds < rnd.epoch_seconds

    def test_metis_lower_network_traffic(self, partitions, split):
        rnd = make_engine(partitions["random"], split, seed=1).run_epoch()
        metis = make_engine(partitions["metis"], split, seed=1).run_epoch()
        assert metis.network_bytes < rnd.network_bytes


class TestParameterEffects:
    def test_gat_more_compute_than_sage(self, partitions, split):
        sage = make_engine(
            partitions["random"], split, arch="sage", seed=2
        ).run_epoch()
        gat = make_engine(
            partitions["random"], split, arch="gat", seed=2
        ).run_epoch()
        assert (
            gat.phase_seconds()["forward"]
            > sage.phase_seconds()["forward"]
        )

    def test_feature_size_raises_fetch_not_sample(self, partitions, split):
        small = make_engine(
            partitions["random"], split, feature_size=16, seed=2
        ).run_epoch().phase_seconds()
        large = make_engine(
            partitions["random"], split, feature_size=512, seed=2
        ).run_epoch().phase_seconds()
        assert large["fetch"] > 2 * small["fetch"]
        assert large["sample"] == pytest.approx(
            small["sample"], rel=0.2
        )

    def test_hidden_dim_raises_compute_not_fetch(self, partitions, split):
        small = make_engine(
            partitions["random"], split, hidden_dim=16, seed=2
        ).run_epoch().phase_seconds()
        large = make_engine(
            partitions["random"], split, hidden_dim=512, seed=2
        ).run_epoch().phase_seconds()
        assert large["forward"] > 2 * small["forward"]
        assert large["fetch"] == pytest.approx(small["fetch"], rel=0.2)


class TestValidation:
    def test_rejects_unknown_arch(self, partitions, split):
        with pytest.raises(ValueError):
            make_engine(partitions["random"], split, arch="mlp")

    def test_rejects_bad_batch(self, partitions, split):
        with pytest.raises(ValueError):
            make_engine(partitions["random"], split, global_batch_size=0)

    def test_rejects_fanout_mismatch(self, partitions, split):
        with pytest.raises(ValueError):
            make_engine(
                partitions["random"], split, num_layers=2, fanouts=(5,)
            )
