"""Tests for distributed layer-wise inference."""

import numpy as np
import pytest

from repro.distdgl import DistributedInference
from repro.gnn import build_model, full_graph_block
from repro.partitioning import MetisPartitioner, RandomVertexPartitioner


@pytest.fixture
def model():
    return build_model("sage", 8, 16, 4, 2, seed=3)


@pytest.fixture
def features(tiny_or, rng):
    return rng.normal(size=(tiny_or.num_vertices, 8))


def centralized(model, graph, features):
    block = full_graph_block(graph)
    return model.forward([block] * model.num_layers, features)


@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_distributed_equals_centralized(tiny_or, model, features, k):
    partition = RandomVertexPartitioner().partition(tiny_or, k, seed=0)
    inference = DistributedInference(partition, model)
    logits, _ = inference.run(features)
    expected = centralized(model, tiny_or, features)
    assert np.allclose(logits, expected, atol=1e-9)


def test_partitioner_choice_does_not_change_result(
    tiny_or, model, features
):
    rnd = RandomVertexPartitioner().partition(tiny_or, 4, seed=0)
    metis = MetisPartitioner().partition(tiny_or, 4, seed=0)
    out_a, _ = DistributedInference(rnd, model).run(features)
    out_b, _ = DistributedInference(metis, model).run(features)
    assert np.allclose(out_a, out_b, atol=1e-9)


def test_better_partition_fetches_less(tiny_or, model, features):
    rnd = RandomVertexPartitioner().partition(tiny_or, 4, seed=0)
    metis = MetisPartitioner().partition(tiny_or, 4, seed=0)
    _, report_rnd = DistributedInference(rnd, model).run(features)
    _, report_metis = DistributedInference(metis, model).run(features)
    assert report_metis.total_fetch_bytes < report_rnd.total_fetch_bytes


def test_report_structure(tiny_or, model, features):
    partition = RandomVertexPartitioner().partition(tiny_or, 4, seed=0)
    _, report = DistributedInference(partition, model).run(features)
    assert len(report.layer_fetch_bytes) == model.num_layers
    assert len(report.layer_compute_seconds) == model.num_layers
    assert report.total_seconds > 0


def test_feature_shape_validated(tiny_or, model, rng):
    partition = RandomVertexPartitioner().partition(tiny_or, 2, seed=0)
    inference = DistributedInference(partition, model)
    with pytest.raises(ValueError):
        inference.run(rng.normal(size=(5, 8)))
