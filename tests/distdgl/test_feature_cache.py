"""Tests for the static feature cache extension."""

import pytest

from repro.distdgl import DistDglEngine
from repro.graph import load_dataset, random_split
from repro.partitioning import RandomVertexPartitioner


@pytest.fixture(scope="module")
def graph():
    return load_dataset("OR", "tiny")


@pytest.fixture(scope="module")
def split(graph):
    return random_split(graph, seed=7)


@pytest.fixture(scope="module")
def partition(graph):
    return RandomVertexPartitioner().partition(graph, 4, seed=0)


def run(partition, split, cache_fraction):
    engine = DistDglEngine(
        partition, split,
        feature_size=64, hidden_dim=32, num_layers=2,
        global_batch_size=32, seed=1, cache_fraction=cache_fraction,
    )
    return engine, engine.run_epoch()


def test_no_cache_by_default(partition, split):
    _, report = run(partition, split, 0.0)
    assert report.cache_hits == 0
    assert report.cache_hit_rate == 0.0


def test_cache_reduces_remote_fetches(partition, split):
    _, without = run(partition, split, 0.0)
    _, with_cache = run(partition, split, 0.1)
    assert with_cache.cache_hits > 0
    assert (
        with_cache.remote_input_vertices < without.remote_input_vertices
    )
    # Conservation: hits + remaining remotes == the uncached remotes.
    assert (
        with_cache.remote_input_vertices + with_cache.cache_hits
        == without.remote_input_vertices
    )


def test_cache_reduces_traffic_and_fetch_time(partition, split):
    _, without = run(partition, split, 0.0)
    _, with_cache = run(partition, split, 0.2)
    assert with_cache.network_bytes < without.network_bytes
    assert (
        with_cache.phase_seconds()["fetch"]
        < without.phase_seconds()["fetch"]
    )


def test_degree_cache_beats_proportional(partition, split):
    """Caching 10% of vertices by degree captures more than 10% of the
    remote accesses (sampling is degree-biased; fan-out caps dampen the
    effect at tiny scale, so we assert better-than-proportional)."""
    _, report = run(partition, split, 0.1)
    assert report.cache_hit_rate > 0.1


def test_cache_costs_memory(partition, split):
    engine_without, _ = run(partition, split, 0.0)
    engine_with, _ = run(partition, split, 0.2)
    assert (
        engine_with.memory_per_machine().sum()
        > engine_without.memory_per_machine().sum()
    )


def test_invalid_fraction_rejected(partition, split):
    with pytest.raises(ValueError):
        run(partition, split, 1.0)
    with pytest.raises(ValueError):
        run(partition, split, -0.1)
