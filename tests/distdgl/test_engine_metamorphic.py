"""Metamorphic tests: DistDGL measured costs must move the right way."""

import pytest

from repro.distdgl import DistDglEngine
from repro.graph import load_dataset, random_split
from repro.partitioning import RandomVertexPartitioner


@pytest.fixture(scope="module")
def graph():
    return load_dataset("OR", "tiny")


@pytest.fixture(scope="module")
def split(graph):
    return random_split(graph, seed=7)


@pytest.fixture(scope="module")
def partition(graph):
    return RandomVertexPartitioner().partition(graph, 4, seed=0)


def epoch(partition, split, **kw):
    defaults = dict(
        feature_size=32, hidden_dim=32, num_layers=2,
        global_batch_size=32, seed=1,
    )
    defaults.update(kw)
    return DistDglEngine(partition, split, **defaults).run_epoch()


def test_bigger_batch_fewer_steps(partition, split):
    small = epoch(partition, split, global_batch_size=16)
    large = epoch(partition, split, global_batch_size=64)
    assert len(large.steps) < len(small.steps)


def test_larger_fanout_samples_more(partition, split):
    narrow = epoch(partition, split, fanouts=(2, 2))
    wide = epoch(partition, split, fanouts=(10, 10))
    assert (
        wide.remote_input_vertices + wide.local_input_vertices
        > narrow.remote_input_vertices + narrow.local_input_vertices
    )
    assert (
        wide.phase_seconds()["sample"] > narrow.phase_seconds()["sample"]
    )


def test_larger_features_more_bytes(partition, split):
    small = epoch(partition, split, feature_size=16)
    large = epoch(partition, split, feature_size=256)
    assert large.network_bytes > small.network_bytes


def test_more_layers_more_inputs(partition, split):
    shallow = epoch(partition, split, num_layers=2)
    deep = epoch(partition, split, num_layers=4)
    total_shallow = (
        shallow.remote_input_vertices + shallow.local_input_vertices
    )
    total_deep = deep.remote_input_vertices + deep.local_input_vertices
    assert total_deep > total_shallow


def test_seed_changes_sampling_but_not_structure(partition, split):
    a = epoch(partition, split, seed=1)
    b = epoch(partition, split, seed=2)
    assert len(a.steps) == len(b.steps)
    assert a.remote_input_vertices != b.remote_input_vertices


def test_same_seed_reproducible(partition, split):
    a = epoch(partition, split, seed=5)
    b = epoch(partition, split, seed=5)
    assert a.epoch_seconds == b.epoch_seconds
    assert a.remote_input_vertices == b.remote_input_vertices
