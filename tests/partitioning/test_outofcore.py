"""Out-of-core drive path: bit-identical to in-memory partitioning.

The equivalence contract of the chunk-store pipeline: spool the exact
stream the in-memory path consumes (``spool_graph``), drive the
partitioner through ``partition_stream``, and the assignment must be
*bit-identical* to ``partition(graph, ...)`` — for every streaming
algorithm, across seeds and store chunk sizes (chunk boundaries are an
implementation detail the ramp stitcher must hide). HDRF and 2PS-L
are compared with ``shuffle_stream=False`` since the out-of-core path
necessarily consumes the stream in natural store order.
"""

import numpy as np
import pytest

from repro.graph import rmat_graph, spool_graph
from repro.partitioning import (
    DbhPartitioner,
    FennelPartitioner,
    HdrfPartitioner,
    LdgPartitioner,
    MetisPartitioner,
    RandomEdgePartitioner,
    RestreamingLdgPartitioner,
    StreamEdgePartition,
    StreamVertexPartition,
    TwoPsLPartitioner,
    build_stream_csr,
    shuffle_stream,
    stream_degrees,
)
from repro.partitioning.outofcore import StoreGraphView

K = 8
CHUNK_SIZES = [257, 4096]
SEEDS = [0, 3]

#: name -> (factory, is_edge_partitioner)
STREAMING = {
    "hdrf": (lambda: HdrfPartitioner(shuffle_stream=False), True),
    "dbh": (DbhPartitioner, True),
    "random": (RandomEdgePartitioner, True),
    "2ps-l": (lambda: TwoPsLPartitioner(shuffle_stream=False), True),
    "ldg": (LdgPartitioner, False),
    "fennel": (FennelPartitioner, False),
    "reldg": (RestreamingLdgPartitioner, False),
}


@pytest.fixture(scope="module")
def undirected_rmat():
    return rmat_graph(9, 3000, seed=11, directed=False)


@pytest.fixture(scope="module")
def directed_rmat():
    return rmat_graph(9, 3000, seed=11, directed=True)


def _spool(graph, tmp_path, chunk_size, undirected_view=True):
    return spool_graph(
        graph,
        str(tmp_path / f"spool-{chunk_size}-{undirected_view}"),
        chunk_size=chunk_size,
        undirected_view=undirected_view,
    )


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(STREAMING))
def test_stream_matches_in_memory(
    undirected_rmat, tmp_path, name, seed, chunk_size
):
    factory, is_edge = STREAMING[name]
    reader = _spool(undirected_rmat, tmp_path, chunk_size)
    in_memory = factory().partition(undirected_rmat, K, seed=seed)
    streamed = factory().partition_stream(reader, K, seed=seed)
    assert np.array_equal(in_memory.assignment, streamed.assignment)
    if is_edge:
        assert isinstance(streamed, StreamEdgePartition)
    else:
        assert isinstance(streamed, StreamVertexPartition)


@pytest.mark.parametrize(
    "name", ["hdrf", "random"],
)
def test_directed_graph_vertex_cut_equivalence(
    directed_rmat, tmp_path, name
):
    # The undirected-view spool is the in-memory partitioner stream,
    # directed or not.
    factory, _ = STREAMING[name]
    reader = _spool(directed_rmat, tmp_path, 997)
    in_memory = factory().partition(directed_rmat, K, seed=1)
    streamed = factory().partition_stream(reader, K, seed=1)
    assert np.array_equal(in_memory.assignment, streamed.assignment)


@pytest.mark.parametrize("name", ["ldg", "fennel"])
def test_directed_graph_edge_cut_equivalence(
    directed_rmat, tmp_path, name
):
    # Edge-cut kernels consume the symmetric CSR of the *arc* rows.
    factory, _ = STREAMING[name]
    reader = _spool(directed_rmat, tmp_path, 997, undirected_view=False)
    in_memory = factory().partition(directed_rmat, K, seed=1)
    streamed = factory().partition_stream(reader, K, seed=1)
    assert np.array_equal(in_memory.assignment, streamed.assignment)


class TestStreamCsr:
    def test_degrees_match_graph(self, undirected_rmat, tmp_path):
        reader = _spool(undirected_rmat, tmp_path, 512)
        assert np.array_equal(
            stream_degrees(reader), undirected_rmat.degrees()
        )

    def test_csr_same_indptr_and_neighbour_multisets(
        self, undirected_rmat, tmp_path
    ):
        reader = _spool(undirected_rmat, tmp_path, 512)
        indptr, indices = build_stream_csr(reader)
        ref_indptr, ref_indices = undirected_rmat.symmetric_csr()
        assert np.array_equal(indptr, ref_indptr)
        for v in range(undirected_rmat.num_vertices):
            lo, hi = indptr[v], indptr[v + 1]
            assert np.array_equal(
                np.sort(indices[lo:hi]), np.sort(ref_indices[lo:hi])
            )

    def test_view_shim_matches_graph_metadata(
        self, undirected_rmat, tmp_path
    ):
        reader = _spool(undirected_rmat, tmp_path, 512)
        view = StoreGraphView(reader)
        assert view.num_vertices == undirected_rmat.num_vertices
        assert view.num_edges == undirected_rmat.num_edges
        assert np.array_equal(view.degrees(), undirected_rmat.degrees())


class TestShuffle:
    def test_buckets_hold_exactly_their_edges(
        self, undirected_rmat, tmp_path
    ):
        reader = _spool(undirected_rmat, tmp_path, 300)
        partitioner = HdrfPartitioner(shuffle_stream=False)
        result = shuffle_stream(
            reader, partitioner, K, str(tmp_path / "buckets"), seed=0
        )
        partition = partitioner.partition(undirected_rmat, K, seed=0)
        edges = undirected_rmat.undirected_edges()
        assert np.array_equal(
            result.edge_counts, partition.edge_counts()
        )
        for p in range(K):
            expected = edges[partition.assignment == p]
            assert np.array_equal(
                result.bucket(p).read_all(), expected
            )

    def test_bucket_metadata(self, undirected_rmat, tmp_path):
        reader = _spool(undirected_rmat, tmp_path, 300)
        result = shuffle_stream(
            reader, HdrfPartitioner(), K, str(tmp_path / "b"), seed=0
        )
        bucket = result.bucket(0)
        assert bucket.num_vertices == undirected_rmat.num_vertices
        assert int(result.edge_counts.sum()) == reader.num_edges
        with pytest.raises(IndexError):
            result.bucket_path(K)


class TestStreamResultContainers:
    def test_edge_assignment_validated(self, undirected_rmat, tmp_path):
        reader = _spool(undirected_rmat, tmp_path, 300)
        with pytest.raises(ValueError):
            StreamEdgePartition(reader, np.zeros(3, dtype=np.int32), K)
        bad = np.full(reader.num_edges, K, dtype=np.int32)
        with pytest.raises(ValueError):
            StreamEdgePartition(reader, bad, K)

    def test_vertex_assignment_validated(
        self, undirected_rmat, tmp_path
    ):
        reader = _spool(undirected_rmat, tmp_path, 300)
        with pytest.raises(ValueError):
            StreamVertexPartition(reader, np.zeros(3, dtype=np.int32), K)

    def test_counts(self, undirected_rmat, tmp_path):
        reader = _spool(undirected_rmat, tmp_path, 300)
        part = RandomEdgePartitioner().partition_stream(reader, K, seed=0)
        counts = part.edge_counts()
        assert counts.shape == (K,)
        assert int(counts.sum()) == reader.num_edges


def test_non_streaming_partitioner_rejected(
    undirected_rmat, tmp_path
):
    reader = _spool(undirected_rmat, tmp_path, 300)
    assert not MetisPartitioner().supports_stream
    with pytest.raises(NotImplementedError):
        MetisPartitioner().partition_stream(reader, K)


def test_hdrf_stream_assignments_blocks_cover_store(
    undirected_rmat, tmp_path
):
    reader = _spool(undirected_rmat, tmp_path, 300)
    total = 0
    for edges, assignment in HdrfPartitioner().stream_assignments(
        reader, K, seed=0
    ):
        assert edges.shape[0] == assignment.shape[0]
        total += edges.shape[0]
    assert total == reader.num_edges
