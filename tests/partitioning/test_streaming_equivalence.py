"""Vectorised streaming kernels must match their scalar references.

Every chunk-vectorised partitioner retains a scalar reference path
(``vectorised=False``) with identical chunked semantics; these tests
pin the bit-identical-assignment contract across graphs, seeds and
partition counts, including degenerate topologies (hub-dominated star,
self-contained cliques) and tiny chunk sizes that exercise the
chunk-boundary logic.
"""

import numpy as np
import pytest

from repro.partitioning import (
    HdrfPartitioner,
    HepPartitioner,
    LdgPartitioner,
    TwoPsLPartitioner,
)
from repro.partitioning.extensions.fennel import FennelPartitioner
from repro.partitioning.extensions.reldg import RestreamingLdgPartitioner

GRAPHS = ["tiny_or", "tiny_di", "tiny_hw"]
KS = [2, 4, 8]
SEEDS = [0, 1, 2]


def _pair(factory, **kwargs):
    return (
        factory(vectorised=True, **kwargs),
        factory(vectorised=False, **kwargs),
    )


def _assert_identical(factory, graph, k, seed, **kwargs):
    vec, ref = _pair(factory, **kwargs)
    a = vec.partition(graph, k, seed=seed).assignment
    b = ref.partition(graph, k, seed=seed).assignment
    assert np.array_equal(a, b)


@pytest.mark.parametrize("graph_name", GRAPHS)
@pytest.mark.parametrize("k", KS)
class TestAcrossGraphsAndK:
    def test_hdrf(self, graph_name, k, request):
        graph = request.getfixturevalue(graph_name)
        _assert_identical(HdrfPartitioner, graph, k, seed=0)

    def test_ldg(self, graph_name, k, request):
        graph = request.getfixturevalue(graph_name)
        _assert_identical(LdgPartitioner, graph, k, seed=0)

    def test_fennel(self, graph_name, k, request):
        graph = request.getfixturevalue(graph_name)
        _assert_identical(FennelPartitioner, graph, k, seed=0)

    def test_reldg(self, graph_name, k, request):
        graph = request.getfixturevalue(graph_name)
        _assert_identical(
            RestreamingLdgPartitioner, graph, k, seed=0, passes=3
        )

    def test_twops(self, graph_name, k, request):
        graph = request.getfixturevalue(graph_name)
        _assert_identical(TwoPsLPartitioner, graph, k, seed=0)

    def test_hep_streaming_tail(self, graph_name, k, request):
        # tau=1 pushes most edges through the HDRF streaming tail.
        graph = request.getfixturevalue(graph_name)
        _assert_identical(HepPartitioner, graph, k, seed=0, tau=1.0)


@pytest.mark.parametrize("seed", SEEDS)
def test_hdrf_across_seeds(tiny_or, seed):
    _assert_identical(HdrfPartitioner, tiny_or, 4, seed=seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_ldg_across_seeds(tiny_or, seed):
    _assert_identical(LdgPartitioner, tiny_or, 4, seed=seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_twops_across_seeds(tiny_or, seed):
    _assert_identical(TwoPsLPartitioner, tiny_or, 4, seed=seed)


@pytest.mark.parametrize(
    "factory",
    [HdrfPartitioner, LdgPartitioner, FennelPartitioner],
    ids=lambda f: f.__name__,
)
@pytest.mark.parametrize("chunk_size", [1, 7, 64])
def test_small_chunks_still_identical(tiny_or, factory, chunk_size):
    """Chunk boundaries (including chunk_size=1, the classic per-item
    semantics) must not break the vectorised/reference equivalence."""
    _assert_identical(factory, tiny_or, 4, seed=0, chunk_size=chunk_size)


@pytest.mark.parametrize(
    "factory",
    [HdrfPartitioner, LdgPartitioner, TwoPsLPartitioner],
    ids=lambda f: f.__name__,
)
def test_degenerate_topologies(star_graph, two_cliques, factory):
    """Hub-dominated and clique graphs hit the conflict-heavy scalar
    fallbacks; equivalence must survive them."""
    for graph in (star_graph, two_cliques):
        _assert_identical(factory, graph, 3, seed=0)


def test_hdrf_lambda_zero_equivalence(tiny_or):
    """The balance-free (pure greedy) configuration uses a separate
    code path in the vectorised kernel."""
    _assert_identical(HdrfPartitioner, tiny_or, 4, seed=0, lambda_balance=0.0)
