"""Tests for partitioning quality metrics against hand-computed values."""

import numpy as np
import pytest

from repro.partitioning import (
    EdgePartition,
    VertexPartition,
    edge_balance,
    edge_cut_ratio,
    edge_partition_quality,
    replication_factor,
    training_vertex_balance,
    vertex_balance,
    vertex_balance_vertex_cut,
    vertex_partition_quality,
)


@pytest.fixture
def split_cliques(two_cliques):
    edges = two_cliques.undirected_edges()
    in_a = (edges < 4).all(axis=1)
    return EdgePartition(
        two_cliques, edges, np.where(in_a, 0, 1).astype(np.int32), 2
    )


class TestVertexCutMetrics:
    def test_replication_factor_hand_value(self, split_cliques):
        # 9 replicas over 8 vertices.
        assert replication_factor(split_cliques) == pytest.approx(9 / 8)

    def test_rf_of_single_partition_is_one(self, two_cliques):
        edges = two_cliques.undirected_edges()
        part = EdgePartition(
            two_cliques, edges, np.zeros(len(edges), dtype=np.int32), 1
        )
        assert replication_factor(part) == 1.0

    def test_rf_ignores_isolated_vertices(self, two_cliques):
        # Same graph embedded in a larger vertex space.
        from repro.graph import Graph

        g = Graph(20, two_cliques.edges)
        edges = g.undirected_edges()
        part = EdgePartition(
            g, edges, np.zeros(len(edges), dtype=np.int32), 2
        )
        assert replication_factor(part) == 1.0

    def test_edge_balance(self, split_cliques):
        # 6 vs 7 edges -> max/mean = 7 / 6.5
        assert edge_balance(split_cliques) == pytest.approx(7 / 6.5)

    def test_vertex_balance(self, split_cliques):
        assert vertex_balance_vertex_cut(split_cliques) == pytest.approx(
            5 / 4.5
        )

    def test_quality_bundle(self, split_cliques):
        q = edge_partition_quality(split_cliques)
        assert q.replication_factor == pytest.approx(9 / 8)
        assert "RF=" in q.as_row()


class TestEdgeCutMetrics:
    @pytest.fixture
    def halves(self, two_cliques):
        return VertexPartition(
            two_cliques,
            np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.int32),
            2,
        )

    def test_cut_ratio_hand_value(self, halves):
        assert edge_cut_ratio(halves) == pytest.approx(1 / 13)

    def test_worst_case_cut(self, two_cliques):
        # Alternating assignment cuts everything inside the cliques.
        alternating = VertexPartition(
            two_cliques,
            np.arange(8, dtype=np.int32) % 2,
            2,
        )
        assert edge_cut_ratio(alternating) > 0.5

    def test_vertex_balance_perfect(self, halves):
        assert vertex_balance(halves) == 1.0

    def test_training_vertex_balance(self, halves):
        train = np.array([0, 1, 4])
        # Partition 0 holds 2, partition 1 holds 1 -> 2 / 1.5
        assert training_vertex_balance(halves, train) == pytest.approx(
            2 / 1.5
        )

    def test_quality_bundle(self, halves):
        q = vertex_partition_quality(halves, np.array([0, 4]))
        assert q.edge_cut == pytest.approx(1 / 13)
        assert q.vertex_balance == 1.0
        assert "cut=" in q.as_row()
