"""Tests for EdgePartition / VertexPartition containers."""

import numpy as np
import pytest

from repro.partitioning import EdgePartition, VertexPartition


@pytest.fixture
def bridge_edge_partition(two_cliques):
    """Clique A's edges on partition 0, clique B's + bridge on 1."""
    edges = two_cliques.undirected_edges()
    in_a = (edges < 4).all(axis=1)
    assignment = np.where(in_a, 0, 1).astype(np.int32)
    return EdgePartition(two_cliques, edges, assignment, 2)


class TestEdgePartition:
    def test_edge_counts(self, bridge_edge_partition):
        assert bridge_edge_partition.edge_counts().tolist() == [6, 7]

    def test_vertex_counts_include_replicas(self, bridge_edge_partition):
        # Partition 0 covers vertices 0-3; partition 1 covers 3-7.
        assert bridge_edge_partition.vertex_counts().tolist() == [4, 5]

    def test_copies_per_vertex(self, bridge_edge_partition):
        copies = bridge_edge_partition.copies_per_vertex()
        assert copies[3] == 2  # the cut vertex
        assert copies[0] == 1
        assert copies.sum() == 9

    def test_partition_vertices(self, bridge_edge_partition):
        assert bridge_edge_partition.partition_vertices(0).tolist() == [
            0, 1, 2, 3,
        ]

    def test_partition_edges(self, bridge_edge_partition):
        edges = bridge_edge_partition.partition_edges(0)
        assert edges.shape == (6, 2)
        assert (edges < 4).all()

    def test_masters_follow_majority(self, bridge_edge_partition):
        masters = bridge_edge_partition.masters()
        assert masters[3] == 0  # 3 edges in clique A vs 1 bridge edge
        assert masters[5] == 1

    def test_isolated_vertex_gets_owner(self, two_cliques):
        edges = two_cliques.undirected_edges()
        part = EdgePartition(
            two_cliques, edges, np.zeros(len(edges), dtype=np.int32), 3
        )
        masters = part.masters()
        assert (masters >= 0).all() and (masters < 3).all()

    def test_rejects_mismatched_assignment(self, two_cliques):
        edges = two_cliques.undirected_edges()
        with pytest.raises(ValueError):
            EdgePartition(
                two_cliques, edges, np.zeros(3, dtype=np.int32), 2
            )

    def test_rejects_out_of_range_partition(self, two_cliques):
        edges = two_cliques.undirected_edges()
        bad = np.full(len(edges), 5, dtype=np.int32)
        with pytest.raises(ValueError):
            EdgePartition(two_cliques, edges, bad, 2)


class TestVertexPartition:
    @pytest.fixture
    def halves(self, two_cliques):
        assignment = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.int32)
        return VertexPartition(two_cliques, assignment, 2)

    def test_vertex_counts(self, halves):
        assert halves.vertex_counts().tolist() == [4, 4]

    def test_cut_edges_only_bridge(self, halves):
        assert halves.num_cut_edges() == 1
        cut = halves.graph.undirected_edges()[halves.cut_mask()]
        assert cut.tolist() == [[3, 4]]

    def test_local_edge_counts(self, halves):
        assert halves.local_edge_counts().tolist() == [6, 6]

    def test_partition_vertices(self, halves):
        assert halves.partition_vertices(1).tolist() == [4, 5, 6, 7]

    def test_partition_subgraphs_cover_all(self, halves):
        groups = halves.partition_subgraphs()
        combined = np.sort(np.concatenate(groups))
        assert np.array_equal(combined, np.arange(8))

    def test_rejects_wrong_length(self, two_cliques):
        with pytest.raises(ValueError):
            VertexPartition(two_cliques, np.zeros(3, dtype=np.int32), 2)

    def test_rejects_out_of_range(self, two_cliques):
        with pytest.raises(ValueError):
            VertexPartition(
                two_cliques, np.full(8, 9, dtype=np.int32), 2
            )
