"""Tests for the partitioner registry (paper Table 2)."""

import pytest

from repro.partitioning import (
    EDGE_PARTITIONER_NAMES,
    VERTEX_PARTITIONER_NAMES,
    all_edge_partitioners,
    all_vertex_partitioners,
    make_edge_partitioner,
    make_vertex_partitioner,
)


def test_six_partitioners_per_family():
    assert len(EDGE_PARTITIONER_NAMES) == 6
    assert len(VERTEX_PARTITIONER_NAMES) == 6


def test_table2_names_present():
    assert set(EDGE_PARTITIONER_NAMES) == {
        "random", "dbh", "hdrf", "2ps-l", "hep10", "hep100",
    }
    assert set(VERTEX_PARTITIONER_NAMES) == {
        "random", "ldg", "spinner", "metis", "bytegnn", "kahip",
    }


def test_factories_give_fresh_instances():
    a = make_edge_partitioner("hdrf")
    b = make_edge_partitioner("hdrf")
    assert a is not b


def test_case_insensitive_and_suffix():
    assert make_edge_partitioner("HDRF").name == "HDRF"
    assert make_edge_partitioner("random-ec").name == "Random"
    assert make_vertex_partitioner("Random-VC").name == "Random"


def test_cut_types():
    for p in all_edge_partitioners():
        assert p.cut_type == "vertex-cut"
    for p in all_vertex_partitioners():
        assert p.cut_type == "edge-cut"


def test_categories_match_table2():
    categories = {
        p.name: p.category for p in all_edge_partitioners()
    }
    assert categories["Random"] == "stateless streaming"
    assert categories["DBH"] == "stateless streaming"
    assert categories["HDRF"] == "stateful streaming"
    assert categories["2PS-L"] == "stateful streaming"
    assert categories["HEP10"] == "hybrid"
    vertex_categories = {
        p.name: p.category for p in all_vertex_partitioners()
    }
    assert vertex_categories["LDG"] == "stateful streaming"
    assert vertex_categories["Metis"] == "in-memory"
    assert vertex_categories["KaHIP"] == "in-memory"


def test_unknown_names_rejected():
    with pytest.raises(KeyError):
        make_edge_partitioner("nope")
    with pytest.raises(KeyError):
        make_vertex_partitioner("nope")
