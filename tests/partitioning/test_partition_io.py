"""Tests for partition persistence."""

import numpy as np
import pytest

from repro.partitioning import (
    HdrfPartitioner,
    MetisPartitioner,
    load_edge_partition,
    load_vertex_partition,
    save_edge_partition,
    save_vertex_partition,
)


def test_vertex_partition_roundtrip(tiny_or, tmp_path):
    original = MetisPartitioner().partition(tiny_or, 4, seed=0)
    path = tmp_path / "vp.txt"
    save_vertex_partition(original, path)
    loaded = load_vertex_partition(tiny_or, path)
    assert np.array_equal(loaded.assignment, original.assignment)
    assert loaded.num_partitions == 4


def test_vertex_partition_wrong_graph_rejected(tiny_or, tiny_di, tmp_path):
    original = MetisPartitioner().partition(tiny_or, 4, seed=0)
    path = tmp_path / "vp.txt"
    save_vertex_partition(original, path)
    with pytest.raises(ValueError):
        load_vertex_partition(tiny_di, path)


def test_edge_partition_roundtrip(tiny_or, tmp_path):
    original = HdrfPartitioner().partition(tiny_or, 4, seed=0)
    path = tmp_path / "ep.txt"
    save_edge_partition(original, path)
    loaded = load_edge_partition(tiny_or, path)
    assert np.array_equal(loaded.assignment, original.assignment)


def test_edge_partition_shuffled_file_ok(tiny_or, tmp_path):
    """The loader matches edges by endpoints, not by line order."""
    original = HdrfPartitioner().partition(tiny_or, 4, seed=0)
    path = tmp_path / "ep.txt"
    save_edge_partition(original, path)
    lines = path.read_text().splitlines()
    shuffled = [lines[0]] + list(reversed(lines[1:]))
    path.write_text("\n".join(shuffled) + "\n")
    loaded = load_edge_partition(tiny_or, path)
    assert np.array_equal(loaded.assignment, original.assignment)


def test_edge_partition_missing_edge_rejected(tiny_or, tmp_path):
    original = HdrfPartitioner().partition(tiny_or, 4, seed=0)
    path = tmp_path / "ep.txt"
    save_edge_partition(original, path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")  # drop last edge
    with pytest.raises(ValueError, match="missing"):
        load_edge_partition(tiny_or, path)


def test_unknown_edge_rejected(tiny_or, tmp_path):
    path = tmp_path / "ep.txt"
    path.write_text("# edge-partition k=2 m=1\n0 0 1\n")
    with pytest.raises(ValueError, match="not in the graph"):
        load_edge_partition(tiny_or, path)


def test_wrong_header_rejected(tiny_or, tmp_path):
    path = tmp_path / "x.txt"
    path.write_text("# something-else k=2\n0\n")
    with pytest.raises(ValueError, match="header"):
        load_vertex_partition(tiny_or, path)
