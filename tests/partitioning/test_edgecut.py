"""Behavioural tests for the six edge-cut (vertex) partitioners."""

import numpy as np
import pytest

from repro.partitioning import (
    ByteGnnPartitioner,
    KahipPartitioner,
    LdgPartitioner,
    MetisPartitioner,
    RandomVertexPartitioner,
    SpinnerPartitioner,
    all_vertex_partitioners,
    edge_cut_ratio,
    training_vertex_balance,
    vertex_balance,
)

ALL = all_vertex_partitioners()


@pytest.mark.parametrize("partitioner", ALL, ids=lambda p: p.name)
class TestCommonContract:
    def test_every_vertex_assigned(self, partitioner, tiny_or):
        part = partitioner.partition(tiny_or, 4, seed=0)
        assert part.assignment.shape == (tiny_or.num_vertices,)
        assert (part.assignment >= 0).all()
        assert (part.assignment < 4).all()

    def test_deterministic_given_seed(self, partitioner, tiny_or):
        a = partitioner.partition(tiny_or, 4, seed=3).assignment
        b = partitioner.partition(tiny_or, 4, seed=3).assignment
        assert np.array_equal(a, b)

    def test_single_partition(self, partitioner, tiny_or):
        part = partitioner.partition(tiny_or, 1, seed=0)
        assert (part.assignment == 0).all()
        assert edge_cut_ratio(part) == 0.0

    def test_reasonable_vertex_balance(self, partitioner, tiny_or):
        part = partitioner.partition(tiny_or, 4, seed=0)
        assert vertex_balance(part) < 1.6

    def test_rejects_zero_partitions(self, partitioner, tiny_or):
        with pytest.raises(ValueError):
            partitioner.partition(tiny_or, 0)


class TestQualityOrdering:
    def test_all_beat_random(self, tiny_or):
        rnd = edge_cut_ratio(
            RandomVertexPartitioner().partition(tiny_or, 8, seed=0)
        )
        for partitioner in (
            LdgPartitioner(),
            SpinnerPartitioner(),
            MetisPartitioner(),
            KahipPartitioner(),
        ):
            cut = edge_cut_ratio(partitioner.partition(tiny_or, 8, seed=0))
            assert cut < rnd, partitioner.name

    def test_multilevel_beats_streaming(self, tiny_di):
        """On the road network, METIS-family cuts are far lower than
        streaming cuts (paper Figure 12's DI column)."""
        metis = edge_cut_ratio(
            MetisPartitioner().partition(tiny_di, 8, seed=0)
        )
        ldg = edge_cut_ratio(LdgPartitioner().partition(tiny_di, 8, seed=0))
        assert metis < ldg

    def test_road_network_cuts_lowest(self, tiny_di, tiny_or):
        """DI's near-planar structure admits lower cuts than social graphs
        (paper: <0.001 vs 0.12+; the gap widens with graph size, so the
        tiny fixtures only assert the ordering)."""
        road = edge_cut_ratio(
            MetisPartitioner().partition(tiny_di, 8, seed=0)
        )
        social = edge_cut_ratio(
            MetisPartitioner().partition(tiny_or, 8, seed=0)
        )
        assert road < social


class TestMetis:
    def test_two_cliques_exact(self, two_cliques):
        part = MetisPartitioner().partition(two_cliques, 2, seed=0)
        assert part.num_cut_edges() == 1  # only the bridge

    def test_respects_epsilon(self, tiny_or):
        part = MetisPartitioner(epsilon=0.05).partition(tiny_or, 4, seed=0)
        assert vertex_balance(part) <= 1.2


class TestKahip:
    def test_repetitions_do_not_hurt(self, tiny_or):
        one = KahipPartitioner(repetitions=1).partition(tiny_or, 4, seed=0)
        four = KahipPartitioner(repetitions=4).partition(tiny_or, 4, seed=0)
        assert edge_cut_ratio(four) <= edge_cut_ratio(one) + 1e-9

    def test_takes_longer_than_metis(self, tiny_or):
        metis = MetisPartitioner()
        kahip = KahipPartitioner()
        metis.partition(tiny_or, 4, seed=0)
        kahip.partition(tiny_or, 4, seed=0)
        assert (
            kahip.last_partitioning_seconds
            > metis.last_partitioning_seconds
        )


class TestLdg:
    def test_respects_capacity(self, tiny_or):
        part = LdgPartitioner(slack=1.1).partition(tiny_or, 4, seed=0)
        cap = 1.1 * tiny_or.num_vertices / 4
        assert part.vertex_counts().max() <= cap + 1


class TestSpinner:
    def test_capacity_cap_held(self, tiny_or):
        part = SpinnerPartitioner().partition(tiny_or, 8, seed=0)
        cap = 1.05 * tiny_or.num_vertices / 8
        assert part.vertex_counts().max() <= cap + 1

    def test_improves_over_random_init(self, tiny_or):
        lpa = SpinnerPartitioner(iterations=40).partition(
            tiny_or, 4, seed=0
        )
        rnd = RandomVertexPartitioner().partition(tiny_or, 4, seed=0)
        assert edge_cut_ratio(lpa) < edge_cut_ratio(rnd)


class TestByteGnn:
    def test_train_vertex_balance_is_design_goal(self, tiny_or, tiny_or_split):
        part = ByteGnnPartitioner(
            train_vertices=tiny_or_split.train
        ).partition(tiny_or, 4, seed=0)
        assert training_vertex_balance(part, tiny_or_split.train) <= 1.3

    def test_works_without_explicit_split(self, tiny_or):
        part = ByteGnnPartitioner().partition(tiny_or, 4, seed=0)
        assert (part.assignment >= 0).all()
