"""Tests for partition validation."""

import numpy as np
import pytest

from repro.partitioning import (
    EdgePartition,
    PartitionValidationError,
    VertexPartition,
    validate_edge_partition,
    validate_vertex_partition,
)


@pytest.fixture
def good_edge_partition(tiny_or):
    edges = tiny_or.undirected_edges()
    rng = np.random.default_rng(0)
    assignment = rng.integers(0, 4, size=len(edges)).astype(np.int32)
    return EdgePartition(tiny_or, edges, assignment, 4)


@pytest.fixture
def good_vertex_partition(tiny_or):
    rng = np.random.default_rng(0)
    assignment = rng.integers(
        0, 4, size=tiny_or.num_vertices
    ).astype(np.int32)
    return VertexPartition(tiny_or, assignment, 4)


def test_valid_edge_partition_passes(good_edge_partition):
    assert validate_edge_partition(good_edge_partition) == []


def test_valid_vertex_partition_passes(good_vertex_partition):
    assert validate_vertex_partition(good_vertex_partition) == []


def test_tampered_edge_set_detected(tiny_or, good_edge_partition):
    # Swap in a different edge array of the same shape.
    part = good_edge_partition
    tampered = part.edges.copy()
    tampered[0] = [0, 1] if (tampered[0] != [0, 1]).any() else [0, 2]
    bad = EdgePartition.__new__(EdgePartition)
    bad.__dict__.update(part.__dict__)
    bad.edges = tampered
    problems = validate_edge_partition(bad, strict=False)
    # Either the edge-set mismatch or a derived invariant must trip.
    assert problems or np.array_equal(
        np.unique(tampered, axis=0), np.unique(part.edges, axis=0)
    )


def test_tampered_assignment_detected(good_edge_partition):
    part = good_edge_partition
    part.assignment[0] = 99  # bypass constructor validation
    with pytest.raises(PartitionValidationError) as err:
        validate_edge_partition(part)
    assert any("outside" in p for p in err.value.problems)


def test_vertex_partition_tamper_detected(good_vertex_partition):
    part = good_vertex_partition
    part.assignment[0] = -3
    problems = validate_vertex_partition(part, strict=False)
    assert problems


def test_strict_flag(good_vertex_partition):
    part = good_vertex_partition
    part.assignment[0] = 77
    assert validate_vertex_partition(part, strict=False)
    with pytest.raises(PartitionValidationError):
        validate_vertex_partition(part, strict=True)


def test_real_partitioner_outputs_validate(tiny_or):
    from repro.partitioning import (
        all_edge_partitioners,
        all_vertex_partitioners,
    )

    for partitioner in all_edge_partitioners():
        part = partitioner.partition(tiny_or, 3, seed=0)
        assert validate_edge_partition(part) == [], partitioner.name
    for partitioner in all_vertex_partitioners():
        part = partitioner.partition(tiny_or, 3, seed=0)
        assert validate_vertex_partition(part) == [], partitioner.name
