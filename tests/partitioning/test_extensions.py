"""Tests for the extension partitioners (Fennel, reLDG, NE)."""

import numpy as np
import pytest

from repro.partitioning import (
    EXTENSION_PARTITIONER_NAMES,
    FennelPartitioner,
    HepPartitioner,
    LdgPartitioner,
    NePartitioner,
    RandomVertexPartitioner,
    RestreamingLdgPartitioner,
    edge_cut_ratio,
    make_extension_partitioner,
    replication_factor,
    vertex_balance,
)


class TestRegistry:
    def test_names(self):
        assert set(EXTENSION_PARTITIONER_NAMES) == {"fennel", "reldg", "ne"}

    def test_factory(self):
        assert make_extension_partitioner("Fennel").name == "Fennel"
        assert make_extension_partitioner("NE").cut_type == "vertex-cut"
        with pytest.raises(KeyError):
            make_extension_partitioner("nope")


class TestFennel:
    def test_contract(self, tiny_or):
        part = FennelPartitioner().partition(tiny_or, 4, seed=0)
        assert part.vertex_counts().sum() == tiny_or.num_vertices
        assert vertex_balance(part) < 1.2

    def test_beats_random(self, tiny_or):
        fennel = FennelPartitioner().partition(tiny_or, 8, seed=0)
        rnd = RandomVertexPartitioner().partition(tiny_or, 8, seed=0)
        assert edge_cut_ratio(fennel) < edge_cut_ratio(rnd)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            FennelPartitioner(gamma=1.0)

    def test_deterministic(self, tiny_or):
        a = FennelPartitioner().partition(tiny_or, 4, seed=1).assignment
        b = FennelPartitioner().partition(tiny_or, 4, seed=1).assignment
        assert np.array_equal(a, b)


class TestRestreamingLdg:
    def test_restreaming_improves_on_ldg(self, tiny_or):
        """Extra passes must not be worse than single-pass LDG."""
        reldg = RestreamingLdgPartitioner(passes=5).partition(
            tiny_or, 8, seed=0
        )
        ldg = LdgPartitioner().partition(tiny_or, 8, seed=0)
        assert edge_cut_ratio(reldg) <= edge_cut_ratio(ldg) + 0.02

    def test_one_pass_equivalent_contract(self, tiny_or):
        part = RestreamingLdgPartitioner(passes=1).partition(
            tiny_or, 4, seed=0
        )
        assert (part.assignment >= 0).all()

    def test_rejects_zero_passes(self):
        with pytest.raises(ValueError):
            RestreamingLdgPartitioner(passes=0)

    def test_capacity_held(self, tiny_or):
        part = RestreamingLdgPartitioner(passes=3, slack=1.1).partition(
            tiny_or, 4, seed=0
        )
        assert part.vertex_counts().max() <= 1.1 * tiny_or.num_vertices / 4 + 1


class TestNe:
    def test_contract(self, tiny_or):
        part = NePartitioner().partition(tiny_or, 4, seed=0)
        assert (part.assignment >= 0).all()
        assert part.edge_counts().sum() == part.num_edges

    def test_quality_comparable_to_hep100(self, tiny_or):
        """NE is HEP100's in-memory core; quality should be in the same
        league (HEP100 == NE plus hub thresholding)."""
        ne = NePartitioner().partition(tiny_or, 8, seed=0)
        hep = HepPartitioner(100).partition(tiny_or, 8, seed=0)
        assert replication_factor(ne) < 1.25 * replication_factor(hep)

    def test_refinement_helps(self, tiny_or):
        raw = NePartitioner(refine=False).partition(tiny_or, 8, seed=0)
        refined = NePartitioner(refine=True).partition(tiny_or, 8, seed=0)
        assert replication_factor(refined) <= replication_factor(raw)

    def test_two_cliques(self, two_cliques):
        part = NePartitioner(balance_cap=1.2).partition(
            two_cliques, 2, seed=0
        )
        assert replication_factor(part) <= 1.25
