"""Tests for the multilevel partitioning machinery."""

import numpy as np
import pytest

from repro.graph import load_dataset
from repro.partitioning.edgecut.multilevel import (
    WeightedGraph,
    coarsen,
    cut_weight,
    initial_partition,
    multilevel_partition,
    rebalance,
    refine,
)


@pytest.fixture
def weighted_two_cliques(two_cliques):
    return WeightedGraph.from_edges(
        two_cliques.num_vertices, two_cliques.undirected_edges()
    )


class TestWeightedGraph:
    def test_from_edges_symmetric(self, weighted_two_cliques):
        wg = weighted_two_cliques
        nbrs, wgts = wg.neighbors(3)
        assert sorted(nbrs.tolist()) == [0, 1, 2, 4]
        assert (wgts == 1).all()

    def test_total_vertex_weight(self, weighted_two_cliques):
        assert weighted_two_cliques.total_vertex_weight == 8


class TestCoarsen:
    def test_halves_vertex_count_roughly(self, rng):
        g = load_dataset("OR", "tiny")
        wg = WeightedGraph.from_edges(g.num_vertices, g.undirected_edges())
        coarse, mapping = coarsen(wg, rng)
        assert coarse.num_vertices < wg.num_vertices
        assert coarse.num_vertices >= wg.num_vertices // 2
        assert mapping.shape == (wg.num_vertices,)

    def test_vertex_weight_conserved(self, weighted_two_cliques, rng):
        coarse, _ = coarsen(weighted_two_cliques, rng)
        assert coarse.total_vertex_weight == 8

    def test_edge_weight_conserved_or_contracted(
        self, weighted_two_cliques, rng
    ):
        coarse, mapping = coarsen(weighted_two_cliques, rng)
        # Every surviving coarse edge weight accounts for >= 1 fine edge;
        # contracted (intra-pair) edges disappear.
        total_coarse = int(coarse.eweights.sum()) // 2
        assert total_coarse <= 13
        assert total_coarse >= 13 - weighted_two_cliques.num_vertices // 2


class TestCutWeight:
    def test_hand_value(self, weighted_two_cliques):
        assignment = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.int32)
        assert cut_weight(weighted_two_cliques, assignment) == 1

    def test_zero_for_single_block(self, weighted_two_cliques):
        assignment = np.zeros(8, dtype=np.int32)
        assert cut_weight(weighted_two_cliques, assignment) == 0


class TestInitialPartitionAndRefine:
    def test_initial_covers_all(self, weighted_two_cliques, rng):
        assignment = initial_partition(weighted_two_cliques, 2, rng)
        assert (assignment >= 0).all()
        assert len(np.unique(assignment)) == 2

    def test_rebalance_respects_cap(self, weighted_two_cliques, rng):
        assignment = np.zeros(8, dtype=np.int32)  # everything on 0
        rebalance(weighted_two_cliques, assignment, 2, max_load=5, rng=rng)
        loads = np.bincount(assignment, minlength=2)
        assert loads.max() <= 5

    def test_refine_reduces_cut(self, weighted_two_cliques, rng):
        # Deliberately bad split: one vertex of clique A on partition 1.
        assignment = np.array([1, 0, 0, 0, 1, 1, 1, 1], dtype=np.int32)
        before = cut_weight(weighted_two_cliques, assignment)
        refine(
            weighted_two_cliques, assignment, 2,
            max_load=5, passes=3, rng=rng,
        )
        after = cut_weight(weighted_two_cliques, assignment)
        assert after < before
        assert after == 1  # optimal


class TestMultilevelEndToEnd:
    def test_balanced_and_low_cut(self):
        g = load_dataset("DI", "tiny")
        assignment = multilevel_partition(
            g.num_vertices, g.undirected_edges(), 4,
            epsilon=0.05, refine_passes=3, seed=0,
        )
        loads = np.bincount(assignment, minlength=4)
        assert loads.max() <= 1.1 * g.num_vertices / 4
        wg = WeightedGraph.from_edges(g.num_vertices, g.undirected_edges())
        assert cut_weight(wg, assignment) < 0.25 * g.num_edges
