"""Tests for the vertex-cut refinement passes used by HEP."""

import numpy as np
import pytest

from repro.partitioning import EdgePartition, replication_factor
from repro.partitioning.vertexcut.refine import (
    coalesce_vertex_moves,
    refine_edge_assignment,
)


def _rf(graph, edges, assignment, k):
    return replication_factor(EdgePartition(graph, edges, assignment, k))


@pytest.fixture
def scattered_cliques(two_cliques):
    """Clique edges deliberately scattered over 2 partitions."""
    edges = two_cliques.undirected_edges()
    rng = np.random.default_rng(0)
    return edges, rng.integers(0, 2, size=len(edges)).astype(np.int32)


def test_refine_never_worsens_rf(two_cliques, scattered_cliques):
    edges, assignment = scattered_cliques
    before = _rf(two_cliques, edges, assignment.copy(), 2)
    refine_edge_assignment(
        edges, assignment, np.arange(len(edges)),
        two_cliques.num_vertices, 2, cap=9, sweeps=3,
    )
    after = _rf(two_cliques, edges, assignment, 2)
    assert after <= before


def test_refine_respects_cap(two_cliques, scattered_cliques):
    edges, assignment = scattered_cliques
    refine_edge_assignment(
        edges, assignment, np.arange(len(edges)),
        two_cliques.num_vertices, 2, cap=8, sweeps=3,
    )
    assert np.bincount(assignment, minlength=2).max() <= 8


def test_refine_returns_move_count(two_cliques, scattered_cliques):
    edges, assignment = scattered_cliques
    moves = refine_edge_assignment(
        edges, assignment, np.arange(len(edges)),
        two_cliques.num_vertices, 2, cap=9, sweeps=3,
    )
    assert moves >= 0


def test_refine_only_touches_given_edges(two_cliques, scattered_cliques):
    edges, assignment = scattered_cliques
    frozen = assignment[:5].copy()
    refine_edge_assignment(
        edges, assignment, np.arange(5, len(edges)),
        two_cliques.num_vertices, 2, cap=13, sweeps=3,
    )
    assert np.array_equal(assignment[:5], frozen)


def test_coalesce_reduces_rf_on_split_vertex(two_cliques):
    """A vertex with edges spread over two partitions gets consolidated."""
    edges = two_cliques.undirected_edges()
    # Put vertex 0's three edges on different partitions.
    assignment = np.zeros(len(edges), dtype=np.int32)
    touching_zero = np.flatnonzero((edges == 0).any(axis=1))
    assignment[touching_zero[0]] = 1
    before = _rf(two_cliques, edges, assignment.copy(), 2)
    moved = coalesce_vertex_moves(
        edges, assignment, np.arange(len(edges)),
        two_cliques.num_vertices, 2, cap=13, sweeps=2,
    )
    after = _rf(two_cliques, edges, assignment, 2)
    assert moved >= 1
    assert after < before


def test_coalesce_respects_cap(two_cliques, scattered_cliques):
    edges, assignment = scattered_cliques
    coalesce_vertex_moves(
        edges, assignment, np.arange(len(edges)),
        two_cliques.num_vertices, 2, cap=8, sweeps=2,
    )
    assert np.bincount(assignment, minlength=2).max() <= 8
