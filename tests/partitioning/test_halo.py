"""Tests for halo statistics."""

import numpy as np
import pytest

from repro.partitioning import (
    MetisPartitioner,
    RandomVertexPartitioner,
    VertexPartition,
    halo_statistics,
)


@pytest.fixture
def halves(two_cliques):
    return VertexPartition(
        two_cliques,
        np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.int32),
        2,
    )


def test_hand_computed_bridge(halves):
    stats = halo_statistics(halves)
    assert stats.inner.tolist() == [4, 4]
    # Only vertex 3 (machine 0) and vertex 4 (machine 1) touch the cut.
    assert stats.boundary.tolist() == [1, 1]
    assert stats.halo.tolist() == [1, 1]


def test_single_partition_no_halo(two_cliques):
    part = VertexPartition(
        two_cliques, np.zeros(8, dtype=np.int32), 1
    )
    stats = halo_statistics(part)
    assert stats.boundary.tolist() == [0]
    assert stats.halo.tolist() == [0]


def test_ratios(halves):
    stats = halo_statistics(halves)
    assert np.allclose(stats.halo_ratio(), [0.25, 0.25])
    assert np.allclose(stats.boundary_fraction(), [0.25, 0.25])


def test_better_partition_smaller_halo(tiny_or):
    rnd = RandomVertexPartitioner().partition(tiny_or, 4, seed=0)
    metis = MetisPartitioner().partition(tiny_or, 4, seed=0)
    assert (
        halo_statistics(metis).halo.sum()
        < halo_statistics(rnd).halo.sum()
    )


def test_halo_bounded_by_remote_vertices(tiny_or):
    part = RandomVertexPartitioner().partition(tiny_or, 4, seed=0)
    stats = halo_statistics(part)
    # A machine's halo can never exceed the vertices it does not own.
    for machine in range(4):
        assert stats.halo[machine] <= tiny_or.num_vertices - stats.inner[machine]
