"""Behavioural tests for the six vertex-cut (edge) partitioners."""

import numpy as np
import pytest

from repro.partitioning import (
    DbhPartitioner,
    HdrfPartitioner,
    HepPartitioner,
    RandomEdgePartitioner,
    TwoPsLPartitioner,
    all_edge_partitioners,
    edge_balance,
    replication_factor,
)

ALL = all_edge_partitioners()


@pytest.mark.parametrize("partitioner", ALL, ids=lambda p: p.name)
class TestCommonContract:
    def test_every_edge_assigned_exactly_once(self, partitioner, tiny_or):
        part = partitioner.partition(tiny_or, 4, seed=0)
        assert part.assignment.shape[0] == tiny_or.undirected_edges().shape[0]
        assert (part.assignment >= 0).all()
        assert (part.assignment < 4).all()

    def test_deterministic_given_seed(self, partitioner, tiny_or):
        a = partitioner.partition(tiny_or, 4, seed=3).assignment
        b = partitioner.partition(tiny_or, 4, seed=3).assignment
        assert np.array_equal(a, b)

    def test_single_partition_degenerate(self, partitioner, tiny_or):
        part = partitioner.partition(tiny_or, 1, seed=0)
        assert (part.assignment == 0).all()
        assert replication_factor(part) == 1.0

    def test_partitioning_time_recorded(self, partitioner, tiny_or):
        partitioner.partition(tiny_or, 2, seed=0)
        assert partitioner.last_partitioning_seconds is not None
        assert partitioner.last_partitioning_seconds >= 0

    def test_rejects_zero_partitions(self, partitioner, tiny_or):
        with pytest.raises(ValueError):
            partitioner.partition(tiny_or, 0)


class TestRandom:
    def test_near_perfect_edge_balance(self, tiny_or):
        part = RandomEdgePartitioner().partition(tiny_or, 4, seed=0)
        assert edge_balance(part) < 1.1


class TestDbh:
    def test_low_degree_vertices_not_replicated(self, star_graph):
        """All star edges hash on the leaves... but every leaf has degree
        1 and its single edge lands on one partition: leaves never
        replicate, only the hub does."""
        part = DbhPartitioner().partition(star_graph, 4, seed=0)
        copies = part.copies_per_vertex()
        assert (copies[1:] <= 1).all()
        assert copies[0] > 1  # the hub pays

    def test_beats_random_on_skewed_graph(self, tiny_or):
        dbh = DbhPartitioner().partition(tiny_or, 8, seed=0)
        rnd = RandomEdgePartitioner().partition(tiny_or, 8, seed=0)
        assert replication_factor(dbh) < replication_factor(rnd)


class TestHdrf:
    def test_beats_dbh(self, tiny_or):
        hdrf = HdrfPartitioner().partition(tiny_or, 8, seed=0)
        dbh = DbhPartitioner().partition(tiny_or, 8, seed=0)
        assert replication_factor(hdrf) < replication_factor(dbh)

    def test_good_edge_balance(self, tiny_or):
        part = HdrfPartitioner().partition(tiny_or, 8, seed=0)
        assert edge_balance(part) < 1.2

    def test_lambda_zero_ignores_balance(self, tiny_or):
        greedy = HdrfPartitioner(lambda_balance=0.0)
        part = greedy.partition(tiny_or, 4, seed=0)
        # Pure replication greed clusters edges more than balanced HDRF.
        balanced = HdrfPartitioner(lambda_balance=5.0).partition(
            tiny_or, 4, seed=0
        )
        assert edge_balance(part) >= edge_balance(balanced) - 1e-9


class TestTwoPsL:
    def test_respects_balance_cap(self, tiny_or):
        part = TwoPsLPartitioner(balance_cap=1.05).partition(
            tiny_or, 4, seed=0
        )
        assert edge_balance(part) <= 1.12

    def test_better_rf_than_random(self, tiny_or):
        two_ps = TwoPsLPartitioner().partition(tiny_or, 8, seed=0)
        rnd = RandomEdgePartitioner().partition(tiny_or, 8, seed=0)
        assert replication_factor(two_ps) < replication_factor(rnd)


class TestHep:
    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            HepPartitioner(tau=0)

    def test_names_reflect_tau(self):
        assert HepPartitioner(10).name == "HEP10"
        assert HepPartitioner(100).name == "HEP100"

    def test_best_replication_factor(self, tiny_or):
        """HEP100 is the quality leader (paper Figure 2)."""
        hep = HepPartitioner(100).partition(tiny_or, 8, seed=0)
        hdrf = HdrfPartitioner().partition(tiny_or, 8, seed=0)
        assert replication_factor(hep) < replication_factor(hdrf)

    def test_hep100_at_least_as_good_as_hep10(self, tiny_hw):
        hep10 = HepPartitioner(10).partition(tiny_hw, 8, seed=0)
        hep100 = HepPartitioner(100).partition(tiny_hw, 8, seed=0)
        assert (
            replication_factor(hep100)
            <= replication_factor(hep10) + 0.05
        )

    def test_two_cliques_found(self, two_cliques):
        """With k=2, NE should cut only at the bridge: RF close to 1."""
        part = HepPartitioner(100, balance_cap=1.2).partition(
            two_cliques, 2, seed=0
        )
        assert replication_factor(part) <= 1.25
