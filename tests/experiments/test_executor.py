"""Unit tests for the extracted cell executor."""

import os
import time
from concurrent.futures import CancelledError

import pytest

from repro.experiments import (
    CellExecutor,
    CellTask,
    execute_cells,
    fifo_schedule,
)


def _double(x):
    return x * 2


def _boom(x):
    raise RuntimeError(f"cell {x} exploded")


def _sleep_while_exists(flag_path):
    """Run until the flag file disappears (a controllable slow cell).

    The test holds the flag while asserting abort promptness, then
    removes it so the background worker (which an abort cannot kill,
    only stop waiting for) exits quickly and never stalls interpreter
    shutdown.
    """
    for _ in range(1200):
        if not os.path.exists(flag_path):
            return "released"
        time.sleep(0.05)
    return "timed out"


def _tasks(values):
    return [
        CellTask(index=i, fn=_double, args=(v,))
        for i, v in enumerate(values)
    ]


class TestCellTask:
    def test_run_is_fn_of_args(self):
        assert CellTask(index=0, fn=_double, args=(21,)).run() == 42

    def test_key_is_not_identity(self):
        a = CellTask(index=0, fn=_double, args=(1,), key="k1")
        b = CellTask(index=0, fn=_double, args=(1,), key="k2")
        assert a == b  # key is content metadata, not task identity


class TestExecuteCells:
    def test_inline_results_align_with_tasks(self):
        assert execute_cells(_tasks([1, 2, 3]), workers=1) == [2, 4, 6]

    def test_pool_matches_inline(self):
        tasks = _tasks([5, 6, 7, 8])
        assert (
            execute_cells(tasks, workers=2)
            == execute_cells(tasks, workers=1)
        )

    def test_callbacks_fire_in_task_order(self):
        seen = []
        execute_cells(
            _tasks([1, 2, 3, 4]), workers=2,
            cell_callback=lambda index, result: seen.append(
                (index, result)
            ),
        )
        assert seen == [(0, 2), (1, 4), (2, 6), (3, 8)]

    def test_reversed_schedule_keeps_result_and_callback_order(self):
        seen = []
        results = execute_cells(
            _tasks([1, 2, 3]), workers=1,
            cell_callback=lambda index, result: seen.append(index),
            schedule=lambda tasks: list(
                reversed(range(len(tasks)))
            ),
        )
        assert results == [2, 4, 6]
        assert seen == [0, 1, 2]

    def test_schedule_must_be_a_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            execute_cells(
                _tasks([1, 2]), workers=1,
                schedule=lambda tasks: [0, 0],
            )

    def test_cell_exception_propagates(self):
        tasks = [CellTask(index=0, fn=_boom, args=(0,))]
        with pytest.raises(RuntimeError, match="exploded"):
            execute_cells(tasks, workers=1)

    def test_callback_exception_stops_inline_run(self):
        ran = []
        tasks = [
            CellTask(index=i, fn=_double, args=(i,)) for i in range(3)
        ]

        def callback(index, result):
            ran.append(index)
            raise RuntimeError("abort")

        with pytest.raises(RuntimeError, match="abort"):
            execute_cells(tasks, workers=1, cell_callback=callback)
        assert ran == [0]

    def test_abort_does_not_wait_for_running_cells(self, tmp_path):
        """The regression this PR fixes: an abort must drop pending
        cells and return promptly instead of draining running ones."""
        flag = str(tmp_path / "hold")
        with open(flag, "w", encoding="utf-8"):
            pass
        tasks = [
            CellTask(index=0, fn=_double, args=(1,)),
            CellTask(index=1, fn=_sleep_while_exists, args=(flag,)),
            CellTask(index=2, fn=_sleep_while_exists, args=(flag,)),
            CellTask(index=3, fn=_sleep_while_exists, args=(flag,)),
        ]

        def callback(index, result):
            raise RuntimeError("abort after first cell")

        started = time.monotonic()
        try:
            with pytest.raises(RuntimeError, match="abort after"):
                execute_cells(
                    tasks, workers=2, cell_callback=callback
                )
            elapsed = time.monotonic() - started
            assert elapsed < 2.0, (
                f"abort blocked for {elapsed:.1f}s on running cells"
            )
        finally:
            os.remove(flag)


class TestCellExecutor:
    def test_inline_submit_resolves_immediately(self):
        executor = CellExecutor(workers=1)
        handle = executor.submit(CellTask(index=0, fn=_double, args=(4,)))
        assert handle.done()
        assert handle.result() == 8

    def test_submit_after_cancel_raises(self):
        executor = CellExecutor(workers=1)
        executor.cancel()
        with pytest.raises(RuntimeError, match="cancelled"):
            executor.submit(CellTask(index=0, fn=_double, args=(1,)))

    def test_cancel_returns_promptly_with_running_cell(self, tmp_path):
        flag = str(tmp_path / "hold")
        with open(flag, "w", encoding="utf-8"):
            pass
        executor = CellExecutor(workers=2)
        try:
            for index in (0, 1):
                executor.submit(
                    CellTask(
                        index=index, fn=_sleep_while_exists,
                        args=(flag,),
                    )
                )
            # The pool prefeeds up to workers+1 items into its call
            # queue (those escape cancel_futures), so queue deeper to
            # observe a genuinely dropped cell.
            pending = [
                executor.submit(CellTask(index=i, fn=_double, args=(i,)))
                for i in range(2, 8)
            ]
            started = time.monotonic()
            executor.cancel()
            assert time.monotonic() - started < 2.0
            with pytest.raises(CancelledError):
                pending[-1].result()  # dropped, never ran
        finally:
            os.remove(flag)

    def test_context_manager_waits_on_clean_exit(self):
        with CellExecutor(workers=2) as executor:
            handles = [
                executor.submit(CellTask(index=i, fn=_double, args=(i,)))
                for i in range(3)
            ]
        assert [h.result() for h in handles] == [0, 2, 4]

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            CellExecutor(workers=-1)


def test_fifo_schedule_is_task_order():
    assert fifo_schedule(_tasks([9, 9, 9])) == [0, 1, 2]
