"""Comm axes through the experiment layer: runner records, serial ==
parallel identity, export round-trip, baseline bit-identity."""

import pytest

from repro.experiments import (
    CommConfig,
    load_records,
    reduced_grid,
    run_distdgl,
    run_distdgl_grid,
    run_distdgl_grid_parallel,
    run_distgnn,
    run_distgnn_grid,
    run_distgnn_grid_parallel,
    save_records,
)
from repro.graph import random_split

FP16_R2 = CommConfig(compression="fp16", refresh_interval=2)
INT8_CACHED = CommConfig(compression="int8", cache_fraction=0.5)


def _grid():
    return list(reduced_grid())[:1]


@pytest.fixture(scope="module")
def params():
    return _grid()[0]


class TestRunnerRecords:
    def test_distgnn_record_carries_comm_fields(self, tiny_or, params):
        record = run_distgnn(
            tiny_or, "hdrf", 4, params, num_epochs=2,
            comm_config=FP16_R2,
        )
        assert record.comm_config == FP16_R2
        assert record.traffic_saved_bytes > 0
        assert record.codec_seconds > 0
        assert record.staleness_epochs == 1
        assert record.accuracy_proxy_error > 0

    def test_distdgl_record_carries_comm_fields(self, tiny_or, params):
        record = run_distdgl(
            tiny_or, "metis", 4, params, comm_config=INT8_CACHED,
        )
        assert record.comm_config == INT8_CACHED
        assert record.traffic_saved_bytes > 0
        assert record.cache_hit_rate > 0

    def test_baseline_records_bit_identical_to_pre_comm(
        self, tiny_or, params
    ):
        # No comm_config, an explicit None and an all-default config
        # must produce the same record (modulo the comm_config field
        # itself, None vs the default instance).
        import dataclasses

        bare = run_distgnn(tiny_or, "hdrf", 4, params)
        defaulted = run_distgnn(
            tiny_or, "hdrf", 4, params, comm_config=CommConfig()
        )
        a = dataclasses.asdict(bare)
        b = dataclasses.asdict(defaulted)
        a.pop("comm_config"), b.pop("comm_config")
        assert a == b
        assert bare.traffic_saved_bytes == 0.0
        assert bare.codec_seconds == 0.0
        assert bare.accuracy_proxy_error == 0.0

    def test_comm_traffic_reduction_shows_in_record(
        self, tiny_or, params
    ):
        base = run_distgnn(tiny_or, "hdrf", 4, params)
        fp16 = run_distgnn(
            tiny_or, "hdrf", 4, params,
            comm_config=CommConfig(compression="fp16"),
        )
        assert fp16.network_bytes == pytest.approx(
            base.network_bytes * 0.5
        )
        assert fp16.traffic_saved_bytes == pytest.approx(
            base.network_bytes * 0.5
        )


class TestSerialParallelIdentity:
    def test_distgnn_comm_grid_parallel_equals_serial(self, tiny_or):
        serial = run_distgnn_grid(
            tiny_or, ["random", "hdrf"], [2, 4], _grid(), seed=0,
            comm_config=FP16_R2, num_epochs=2,
        )
        parallel = run_distgnn_grid_parallel(
            tiny_or, ["random", "hdrf"], [2, 4], _grid(), seed=0,
            workers=2, comm_config=FP16_R2, num_epochs=2,
        )
        assert parallel == serial
        assert all(r.comm_config == FP16_R2 for r in parallel)

    def test_distdgl_comm_grid_parallel_equals_serial(self, tiny_or):
        split = random_split(tiny_or, seed=0)
        serial = run_distdgl_grid(
            tiny_or, ["random", "ldg"], [2, 4], _grid(),
            split=split, seed=0, comm_config=INT8_CACHED,
        )
        parallel = run_distdgl_grid_parallel(
            tiny_or, ["random", "ldg"], [2, 4], _grid(),
            split=split, seed=0, workers=2, comm_config=INT8_CACHED,
        )
        assert parallel == serial


class TestExportRoundTrip:
    def test_comm_config_survives_save_load(
        self, tiny_or, params, tmp_path
    ):
        records = [
            run_distgnn(
                tiny_or, "hdrf", 2, params, comm_config=FP16_R2
            ),
            run_distgnn(tiny_or, "hdrf", 2, params),
            run_distdgl(
                tiny_or, "metis", 2, params, comm_config=INT8_CACHED
            ),
        ]
        path = tmp_path / "records.json"
        save_records(records, path)
        loaded = load_records(path)
        assert loaded == records
        assert loaded[0].comm_config == FP16_R2
        assert loaded[1].comm_config is None
        assert loaded[2].comm_config == INT8_CACHED

    def test_pre_comm_records_still_load(self, tiny_or, params, tmp_path):
        # A record JSON written before the comm fields existed has no
        # comm keys at all; defaults must absorb that.
        import json

        record = run_distgnn(tiny_or, "hdrf", 2, params)
        path = tmp_path / "old.json"
        save_records([record], path)
        payload = json.loads(path.read_text())
        for key in (
            "comm_config", "traffic_saved_bytes", "codec_seconds",
            "accuracy_proxy_error", "staleness_epochs",
        ):
            payload[0]["data"].pop(key, None)
        path.write_text(json.dumps(payload))
        loaded = load_records(path)
        assert loaded[0].comm_config is None
        assert loaded[0].traffic_saved_bytes == 0.0
