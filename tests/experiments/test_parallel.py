"""The parallel grid runners must reproduce the serial runs exactly."""

import numpy as np
import pytest

from repro.experiments import (
    FaultConfig,
    reduced_grid,
    run_distdgl_grid,
    run_distdgl_grid_parallel,
    run_distgnn_grid,
    run_distgnn_grid_parallel,
)
from repro.graph import random_split

EDGE_NAMES = ["random", "hdrf"]
VERTEX_NAMES = ["random", "ldg"]
MACHINES = [2, 4]


def _grid():
    return list(reduced_grid())[:2]


class TestDistGnnParallel:
    def test_records_equal_serial(self, tiny_or):
        serial = run_distgnn_grid(
            tiny_or, EDGE_NAMES, MACHINES, _grid(), seed=0
        )
        parallel = run_distgnn_grid_parallel(
            tiny_or, EDGE_NAMES, MACHINES, _grid(), seed=0, workers=2
        )
        assert parallel == serial

    def test_workers_one_is_serial(self, tiny_or):
        serial = run_distgnn_grid(
            tiny_or, EDGE_NAMES, [2], _grid(), seed=0
        )
        inline = run_distgnn_grid_parallel(
            tiny_or, EDGE_NAMES, [2], _grid(), seed=0, workers=1
        )
        assert inline == serial


class TestDistDglParallel:
    def test_records_equal_serial(self, tiny_or):
        split = random_split(tiny_or, seed=0)
        serial = run_distdgl_grid(
            tiny_or, VERTEX_NAMES, MACHINES, _grid(),
            split=split, seed=0,
        )
        parallel = run_distdgl_grid_parallel(
            tiny_or, VERTEX_NAMES, MACHINES, _grid(),
            split=split, seed=0, workers=2,
        )
        assert parallel == serial

    def test_default_split_matches(self, tiny_or):
        """Both runners must derive the same default split from the seed."""
        serial = run_distdgl_grid(
            tiny_or, VERTEX_NAMES, [2], _grid(), seed=3
        )
        parallel = run_distdgl_grid_parallel(
            tiny_or, VERTEX_NAMES, [2], _grid(), seed=3, workers=2
        )
        assert parallel == serial


class TestFaultSweepParallel:
    """Fault sweeps must be record-identical between runners: the fault
    plan is a pure function of (config, k, epochs), so fanning cells out
    over processes cannot change which faults strike where."""

    FAULTS = FaultConfig(crash_rate=0.15, slowdown_rate=0.1, loss_rate=0.1,
                         checkpoint_every=2, seed=13)

    def test_distgnn_records_equal_serial(self, tiny_or):
        serial = run_distgnn_grid(
            tiny_or, EDGE_NAMES, MACHINES, _grid(), seed=0,
            fault_config=self.FAULTS, num_epochs=4,
        )
        parallel = run_distgnn_grid_parallel(
            tiny_or, EDGE_NAMES, MACHINES, _grid(), seed=0, workers=2,
            fault_config=self.FAULTS, num_epochs=4,
        )
        assert parallel == serial
        assert any(r.crashes or r.slowdowns or r.lost_messages
                   for r in serial)

    def test_distdgl_records_equal_serial(self, tiny_or):
        split = random_split(tiny_or, seed=0)
        serial = run_distdgl_grid(
            tiny_or, VERTEX_NAMES, MACHINES, _grid(), split=split, seed=0,
            fault_config=self.FAULTS, num_epochs=3,
        )
        parallel = run_distdgl_grid_parallel(
            tiny_or, VERTEX_NAMES, MACHINES, _grid(), split=split, seed=0,
            workers=2, fault_config=self.FAULTS, num_epochs=3,
        )
        assert parallel == serial
        assert any(r.crashes or r.degraded_steps for r in serial)


class TestObsParallel:
    """With telemetry enabled the runners must stay record-identical:
    the obs level propagates into the workers and ``obs_metrics`` holds
    only simulated quantities, never wall clock."""

    def test_distgnn_obs_records_equal_serial(self, tiny_or):
        from repro import obs

        obs.enable()
        try:
            serial = run_distgnn_grid(
                tiny_or, EDGE_NAMES, [2], _grid(), seed=0
            )
            obs.reset()
            obs.enable()
            parallel = run_distgnn_grid_parallel(
                tiny_or, EDGE_NAMES, [2], _grid(), seed=0, workers=2
            )
        finally:
            obs.reset()
            obs.disable()
        assert parallel == serial
        assert all(r.obs_metrics is not None for r in serial)
        assert all(r.obs_metrics["phase_seconds"] for r in serial)

    def test_distdgl_obs_records_equal_serial(self, tiny_or):
        from repro import obs

        split = random_split(tiny_or, seed=0)
        obs.enable()
        try:
            serial = run_distdgl_grid(
                tiny_or, VERTEX_NAMES, [2], _grid(), split=split, seed=0
            )
            obs.reset()
            obs.enable()
            parallel = run_distdgl_grid_parallel(
                tiny_or, VERTEX_NAMES, [2], _grid(), split=split,
                seed=0, workers=2,
            )
        finally:
            obs.reset()
            obs.disable()
        assert parallel == serial
        assert all(r.obs_metrics is not None for r in serial)

    def test_disabled_obs_leaves_records_unmarked(self, tiny_or):
        records = run_distgnn_grid_parallel(
            tiny_or, EDGE_NAMES, [2], _grid(), seed=0, workers=2
        )
        assert all(r.obs_metrics is None for r in records)


class TestCellCallback:
    """The coordinator callback fires once per cell, in submission
    order, and its exceptions abort the remaining grid."""

    def test_callback_in_submission_order(self, tiny_or):
        seen = []
        records = run_distgnn_grid_parallel(
            tiny_or, EDGE_NAMES, MACHINES, _grid(), seed=0, workers=2,
            cell_callback=lambda cell, recs: seen.append(
                (cell, len(recs))
            ),
        )
        cells = len(MACHINES) * len(EDGE_NAMES)
        assert seen == [(i, len(_grid())) for i in range(cells)]
        assert len(records) == cells * len(_grid())

    def test_cell_offset_threads_through(self, tiny_or):
        seen = []
        run_distgnn_grid_parallel(
            tiny_or, EDGE_NAMES, [2], _grid(), seed=0, workers=1,
            cell_offset=7,
            cell_callback=lambda cell, recs: seen.append(cell),
        )
        assert seen == [7, 8]

    def test_callback_exception_aborts_and_propagates(self, tiny_or):
        from repro.obs.live import SweepAborted

        seen = []

        def abort_on_second(cell, recs):
            seen.append(cell)
            if cell == 1:
                raise SweepAborted([])

        with pytest.raises(SweepAborted):
            run_distgnn_grid_parallel(
                tiny_or, EDGE_NAMES, MACHINES, _grid(), seed=0,
                workers=2, cell_callback=abort_on_second,
            )
        assert seen == [0, 1]  # later cells never reach the callback

    def test_bus_plus_callback_on_serial_path(self, tiny_or, tmp_path):
        """workers=1 with live features drives the same per-cell
        helpers in-process: records stay identical to the serial grid
        and the bus carries every record."""
        from repro.obs.live import BusTailer

        seen = []
        records = run_distgnn_grid_parallel(
            tiny_or, EDGE_NAMES, [2], _grid(), seed=0, workers=1,
            bus_dir=str(tmp_path),
            cell_callback=lambda cell, recs: seen.append(cell),
        )
        serial = run_distgnn_grid(
            tiny_or, EDGE_NAMES, [2], _grid(), seed=0
        )
        assert records == serial
        assert seen == [0, 1]
        events = BusTailer(str(tmp_path)).poll()
        done = [e for e in events if e["kind"] == "record-done"]
        assert len(done) == len(serial)


def test_record_order_is_serial_order(tiny_or):
    """Records come back in machines x partitioners x params order even
    when cells finish out of order."""
    records = run_distgnn_grid_parallel(
        tiny_or, EDGE_NAMES, MACHINES, _grid(), seed=0, workers=4
    )
    expected = [
        (k, name)
        for k in MACHINES
        for name in EDGE_NAMES
        for _ in _grid()
    ]
    got = [(r.num_machines, r.partitioner) for r in records]
    assert got == expected


class TestBusWriterLifecycle:
    """The in-process sweep path must close (flush) its bus writer."""

    def test_inline_sweep_flushes_and_evicts_writer(
        self, tiny_or, tmp_path
    ):
        from repro.experiments.parallel import _BUS_WRITERS
        from repro.obs.live import BusTailer

        bus = str(tmp_path / "bus")
        run_distgnn_grid_parallel(
            tiny_or, ["random"], [2], _grid(), workers=1, bus_dir=bus,
        )
        assert bus not in _BUS_WRITERS  # closed and evicted per sweep
        events = BusTailer(bus).poll()
        kinds = [e["kind"] for e in events if e["kind"] != "heartbeat"]
        # Fully flushed: the complete cell lifecycle is on disk.
        assert kinds == (
            ["cell-start"] + ["record-done"] * len(_grid())
            + ["cell-done"]
        )

    def test_back_to_back_sweeps_use_fresh_streams(
        self, tiny_or, tmp_path
    ):
        from repro.obs.live import BusTailer

        bus_a = str(tmp_path / "bus_a")
        bus_b = str(tmp_path / "bus_b")
        run_distgnn_grid_parallel(
            tiny_or, ["random"], [2], _grid(), workers=1,
            bus_dir=bus_a,
        )
        run_distgnn_grid_parallel(
            tiny_or, ["random", "hdrf"], [2], _grid(), workers=1,
            bus_dir=bus_b,
        )
        events_a = [
            e for e in BusTailer(bus_a).poll()
            if e["kind"] != "heartbeat"
        ]
        events_b = [
            e for e in BusTailer(bus_b).poll()
            if e["kind"] != "heartbeat"
        ]
        # No cross-contamination: each dir holds exactly its own
        # sweep, and the second writer's cseq state restarted fresh.
        assert len(events_a) == 2 + len(_grid())
        assert len(events_b) == 2 * (2 + len(_grid()))
        assert {e["cell"] for e in events_a} == {0}
        assert {e["cell"] for e in events_b} == {0, 1}
        first_a = [e for e in events_a if e["cell"] == 0][0]
        first_b = [e for e in events_b if e["cell"] == 0][0]
        assert first_a["cseq"] == 0
        assert first_b["cseq"] == 0
