"""Tests for the sweep configuration."""

from repro.experiments import (
    BATCH_SIZE_SCALE,
    FEATURE_SIZES,
    HIDDEN_DIMENSIONS,
    LAYER_COUNTS,
    MACHINE_COUNTS,
    PAPER_BATCH_SIZES,
    TrainingParams,
    parameter_grid,
    reduced_grid,
    scaled_batch_size,
)


def test_table3_values():
    assert HIDDEN_DIMENSIONS == (16, 64, 512)
    assert FEATURE_SIZES == (16, 64, 512)
    assert LAYER_COUNTS == (2, 3, 4)
    assert MACHINE_COUNTS == (4, 8, 16, 32)


def test_full_grid_is_27_configs():
    grid = list(parameter_grid())
    assert len(grid) == 27
    assert len(set(grid)) == 27


def test_reduced_grid_covers_every_value():
    grid = list(reduced_grid())
    assert {p.feature_size for p in grid} == set(FEATURE_SIZES)
    assert {p.hidden_dim for p in grid} == set(HIDDEN_DIMENSIONS)
    assert {p.num_layers for p in grid} == set(LAYER_COUNTS)
    assert len(grid) < 27  # it is actually reduced


def test_params_with_changes():
    base = TrainingParams()
    changed = base.with_(feature_size=512)
    assert changed.feature_size == 512
    assert changed.hidden_dim == base.hidden_dim
    assert base.feature_size == 64  # frozen original


def test_label_readable():
    assert "f64" in TrainingParams().label()


def test_batch_size_scaling():
    assert scaled_batch_size(1024) == 1024 // BATCH_SIZE_SCALE
    assert scaled_batch_size(1) == 1  # never zero
    assert len(PAPER_BATCH_SIZES) == 7
