"""Tests for the amortization analysis (paper Tables 4/5)."""

import pytest

from repro.costmodel import CostModel
from repro.experiments import (
    TrainingParams,
    amortization_table,
    epochs_to_amortize,
    run_distgnn_grid,
)


class TestEpochsToAmortize:
    def test_hand_computed(self):
        cm = CostModel(partitioning_time_scale=1.0)
        # 10s investment, 2s saved per epoch -> 5 epochs.
        assert epochs_to_amortize(10.0, 5.0, 3.0, cm) == pytest.approx(5.0)

    def test_scale_factor_applied(self):
        cm = CostModel(partitioning_time_scale=2.0)
        assert epochs_to_amortize(10.0, 5.0, 3.0, cm) == pytest.approx(10.0)

    def test_slowdown_returns_none(self):
        assert epochs_to_amortize(10.0, 3.0, 5.0) is None
        assert epochs_to_amortize(10.0, 3.0, 3.0) is None


class TestAmortizationTable:
    def test_table_from_records(self, tiny_or):
        params = TrainingParams(feature_size=32, hidden_dim=32, num_layers=2)
        records = run_distgnn_grid(
            tiny_or, ["random", "dbh", "hep100"], [4], [params]
        )
        table = amortization_table(records)
        assert "OR" in table
        assert set(table["OR"]) == {"dbh", "hep100"}
        for result in table["OR"].values():
            assert result.epochs is None or result.epochs > 0

    def test_random_excluded(self, tiny_or):
        params = TrainingParams(feature_size=32, hidden_dim=32, num_layers=2)
        records = run_distgnn_grid(tiny_or, ["random", "dbh"], [4], [params])
        table = amortization_table(records)
        assert "random" not in table["OR"]

    def test_formatted_output(self):
        from repro.experiments import AmortizationResult

        assert AmortizationResult("OR", "x", None).formatted() == "no"
        assert AmortizationResult("OR", "x", 3.5).formatted() == "3.50"
