"""Tests for record export/import."""

import pytest

from repro.experiments import (
    FaultConfig,
    TrainingParams,
    load_records,
    records_to_json,
    run_distdgl,
    run_distgnn,
    save_records,
)


@pytest.fixture
def records(tiny_or, tiny_or_split):
    params = TrainingParams(feature_size=32, hidden_dim=32, num_layers=2)
    return [
        run_distgnn(tiny_or, "dbh", 4, params),
        run_distdgl(tiny_or, "metis", 4, params, split=tiny_or_split),
    ]


def test_roundtrip(tmp_path, records):
    path = tmp_path / "records.json"
    save_records(records, path)
    loaded = load_records(path)
    assert len(loaded) == 2
    assert loaded[0].partitioner == "dbh"
    assert loaded[0].epoch_seconds == records[0].epoch_seconds
    assert loaded[0].params == records[0].params
    assert loaded[1].phase_seconds == records[1].phase_seconds


def test_json_is_valid(records):
    import json

    payload = json.loads(records_to_json(records))
    assert payload[0]["kind"] == "distgnn"
    assert payload[1]["kind"] == "distdgl"


def test_fault_record_roundtrip(tmp_path, tiny_or, tiny_or_split):
    params = TrainingParams(feature_size=32, hidden_dim=32, num_layers=2)
    fc = FaultConfig(crash_rate=0.2, slowdown_rate=0.1, checkpoint_every=2,
                     seed=5)
    records = [
        run_distgnn(tiny_or, "dbh", 4, params, fault_config=fc,
                    num_epochs=4),
        run_distdgl(tiny_or, "metis", 4, params, split=tiny_or_split,
                    fault_config=fc, num_epochs=2),
    ]
    path = tmp_path / "fault_records.json"
    save_records(records, path)
    loaded = load_records(path)
    assert loaded == records
    assert loaded[0].fault_config == fc
    assert loaded[0].num_epochs == 4
    assert loaded[1].fault_config == fc


def test_faultless_record_has_no_fault_config(records):
    import json

    payload = json.loads(records_to_json(records))
    assert payload[0]["data"].get("fault_config") is None
    loaded_fields = payload[0]["data"]
    assert loaded_fields["recovery_seconds"] == 0.0


def test_obs_record_roundtrip(tmp_path, tiny_or, tiny_or_split):
    """Golden-file round-trip with fault *and* obs fields populated."""
    from repro import obs

    params = TrainingParams(feature_size=32, hidden_dim=32, num_layers=2)
    fc = FaultConfig(crash_rate=0.2, checkpoint_every=2, seed=5)
    obs.enable()
    try:
        records = [
            run_distgnn(tiny_or, "dbh", 4, params, fault_config=fc,
                        num_epochs=3),
            run_distdgl(tiny_or, "metis", 4, params, split=tiny_or_split,
                        fault_config=fc, num_epochs=2),
        ]
    finally:
        obs.reset()
        obs.disable()
    path = tmp_path / "obs_records.json"
    save_records(records, path)
    loaded = load_records(path)
    assert loaded == records
    for record in loaded:
        assert record.fault_config == fc
        assert record.obs_metrics is not None
        assert record.obs_metrics["phase_seconds"]
        assert "bytes_sent_total" in record.obs_metrics


def test_obs_metrics_absent_when_disabled(records):
    import json

    payload = json.loads(records_to_json(records))
    assert payload[0]["data"]["obs_metrics"] is None
    assert payload[1]["data"]["obs_metrics"] is None


def test_unknown_kind_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('[{"kind": "mystery", "data": {}}]')
    with pytest.raises(ValueError):
        load_records(path)


def test_unsupported_type_rejected():
    with pytest.raises(TypeError):
        records_to_json([object()])
