"""Tests for record export/import."""

import pytest

from repro.experiments import (
    TrainingParams,
    load_records,
    records_to_json,
    run_distdgl,
    run_distgnn,
    save_records,
)


@pytest.fixture
def records(tiny_or, tiny_or_split):
    params = TrainingParams(feature_size=32, hidden_dim=32, num_layers=2)
    return [
        run_distgnn(tiny_or, "dbh", 4, params),
        run_distdgl(tiny_or, "metis", 4, params, split=tiny_or_split),
    ]


def test_roundtrip(tmp_path, records):
    path = tmp_path / "records.json"
    save_records(records, path)
    loaded = load_records(path)
    assert len(loaded) == 2
    assert loaded[0].partitioner == "dbh"
    assert loaded[0].epoch_seconds == records[0].epoch_seconds
    assert loaded[0].params == records[0].params
    assert loaded[1].phase_seconds == records[1].phase_seconds


def test_json_is_valid(records):
    import json

    payload = json.loads(records_to_json(records))
    assert payload[0]["kind"] == "distgnn"
    assert payload[1]["kind"] == "distdgl"


def test_unknown_kind_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('[{"kind": "mystery", "data": {}}]')
    with pytest.raises(ValueError):
        load_records(path)


def test_unsupported_type_rejected():
    with pytest.raises(TypeError):
        records_to_json([object()])
