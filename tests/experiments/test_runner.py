"""Tests for the experiment runner."""

import pytest

from repro.experiments import (
    TrainingParams,
    run_distdgl,
    run_distdgl_grid,
    run_distgnn,
    run_distgnn_grid,
    speedup_vs_random,
)


@pytest.fixture
def params():
    return TrainingParams(feature_size=32, hidden_dim=32, num_layers=2)


class TestDistGnnRunner:
    def test_record_fields(self, tiny_or, params):
        record = run_distgnn(tiny_or, "hdrf", 4, params)
        assert record.graph == "OR"
        assert record.partitioner == "hdrf"
        assert record.epoch_seconds > 0
        assert record.replication_factor > 1
        assert record.partitioning_seconds > 0
        assert record.total_memory_bytes > 0
        assert len(record.memory_per_machine) == 4

    def test_grid_size(self, tiny_or, params):
        records = run_distgnn_grid(
            tiny_or, ["random", "dbh"], [2, 4], [params]
        )
        assert len(records) == 4

    def test_speedups_vs_random(self, tiny_or, params):
        records = run_distgnn_grid(
            tiny_or, ["random", "hep100"], [4], [params]
        )
        speedups = speedup_vs_random(records)
        hep_key = ("OR", "hep100", 4, params)
        assert speedups[hep_key] > 1.0
        assert speedups[("OR", "random", 4, params)] == pytest.approx(1.0)


class TestDistDglRunner:
    def test_record_fields(self, tiny_or, tiny_or_split, params):
        record = run_distdgl(
            tiny_or, "metis", 4, params, split=tiny_or_split
        )
        assert record.epoch_seconds > 0
        assert set(record.phase_seconds) == {
            "sample", "fetch", "forward", "backward", "update",
        }
        assert record.remote_input_vertices > 0
        assert 0 < record.edge_cut < 1

    def test_grid(self, tiny_or, tiny_or_split, params):
        records = run_distdgl_grid(
            tiny_or, ["random", "metis"], [4], [params],
            split=tiny_or_split,
        )
        assert len(records) == 2
        speedups = speedup_vs_random(records)
        assert len(speedups) == 2

    def test_default_split_generated(self, tiny_or, params):
        record = run_distdgl(tiny_or, "random", 2, params)
        assert record.epoch_seconds > 0
