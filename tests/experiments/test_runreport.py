"""Tests for the consolidated run-report builder."""

import json

import pytest

from repro.experiments import (
    FaultConfig,
    TrainingParams,
    build_run_report,
    run_distdgl,
    run_distgnn,
)


@pytest.fixture
def params():
    return TrainingParams(feature_size=32, hidden_dim=32, num_layers=2)


@pytest.fixture
def mixed_records(tiny_or, tiny_or_split, params):
    return [
        run_distgnn(tiny_or, "random", 4, params),
        run_distgnn(tiny_or, "hdrf", 4, params),
        run_distdgl(tiny_or, "random", 4, params, split=tiny_or_split),
        run_distdgl(tiny_or, "ldg", 4, params, split=tiny_or_split),
    ]


def test_empty_records_rejected():
    with pytest.raises(ValueError):
        build_run_report([])


def test_report_dict_shape(mixed_records):
    markdown, report = build_run_report(mixed_records)
    assert report["num_records"] == 4
    assert report["graphs"] == ["OR"]
    assert report["machine_counts"] == [4]
    assert set(report["engines"]) == {"distgnn", "distdgl"}
    assert report["engines"]["distgnn"]["num_records"] == 2
    assert report["engines"]["distgnn"]["mean_epoch_seconds"] > 0
    # one non-random partitioner per engine -> two speedup rows
    assert len(report["speedups"]) == 2
    assert report["faults"] is None
    assert report["obs"] is None


def test_markdown_sections(mixed_records):
    markdown, _ = build_run_report(mixed_records)
    assert markdown.startswith("# Run report")
    assert "## Engines" in markdown
    assert "## Speedup over Random" in markdown
    assert "hdrf" in markdown
    # no fault/obs data -> those sections are absent / hinted
    assert "## Faults and recovery" not in markdown
    assert "--obs-level metrics" in markdown


def test_report_is_json_serializable(mixed_records):
    _, report = build_run_report(mixed_records)
    parsed = json.loads(json.dumps(report))
    assert parsed["num_records"] == 4


def test_fault_section(tiny_or, params):
    fc = FaultConfig(crash_rate=0.3, checkpoint_every=2, seed=3)
    records = [
        run_distgnn(tiny_or, "random", 4, params, fault_config=fc,
                    num_epochs=4),
        run_distgnn(tiny_or, "hdrf", 4, params, fault_config=fc,
                    num_epochs=4),
    ]
    markdown, report = build_run_report(records)
    faults = report["faults"]
    assert faults["num_fault_records"] == 2
    assert faults["crashes"] + faults["slowdowns"] >= 0
    assert 0.0 <= faults["mean_recovery_fraction"] <= 1.0
    assert "## Faults and recovery" in markdown


def test_obs_section(tiny_or, params):
    from repro import obs

    obs.enable()
    try:
        records = [
            run_distgnn(tiny_or, "random", 4, params),
            run_distgnn(tiny_or, "hdrf", 4, params),
        ]
    finally:
        obs.reset()
        obs.disable()
    markdown, report = build_run_report(records)
    telemetry = report["obs"]
    assert telemetry["num_observed_records"] == 2
    assert telemetry["bytes_sent_total"] > 0
    assert telemetry["phase_seconds"]
    assert "## Telemetry" in markdown
    # obs summaries aggregate across records: phase totals sum both runs
    total = sum(telemetry["phase_seconds"].values())
    per_record = sum(
        sum(r.obs_metrics["phase_seconds"].values()) for r in records
    )
    assert total == pytest.approx(per_record)


def test_resource_depth_in_obs_section(tiny_or, params):
    """Records swept with metrics on carry the PR-5 resource keys, and
    the report surfaces them: per-category memory peaks (worst machine),
    per-phase traffic totals, and the summed cross-machine matrix."""
    from repro import obs

    obs.enable()
    try:
        records = [
            run_distgnn(tiny_or, "random", 4, params),
            run_distgnn(tiny_or, "hdrf", 4, params),
        ]
    finally:
        obs.reset()
        obs.disable()
    markdown, report = build_run_report(records)
    telemetry = report["obs"]
    peaks = telemetry["memory_category_peaks"]
    assert peaks and all(v > 0 for v in peaks.values())
    assert telemetry["traffic_phase_bytes"]
    matrix_total = sum(
        sum(sum(row) for row in r.obs_metrics["traffic_matrix"])
        for r in records
    )
    assert telemetry["traffic_matrix_bytes_total"] == pytest.approx(
        matrix_total
    )
    assert "- memory peaks by category (worst machine): " in markdown
    assert "- pairwise traffic " in markdown
