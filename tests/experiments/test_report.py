"""Tests for report formatting."""

from repro.experiments import (
    format_series,
    format_table,
    print_series,
    print_table,
)


def test_table_alignment():
    text = format_table(
        ["graph", "value"], [["OR", 1.2345], ["HW", 10.0]], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "graph" in lines[1]
    assert "1.23" in text
    assert "10.00" in text


def test_table_empty_rows():
    text = format_table(["a", "b"], [])
    assert "a" in text


def test_series_format():
    line = format_series("KaHIP", [4, 8], [1.5, 2.0], unit="x")
    assert "KaHIP" in line
    assert "4=1.5x" in line
    assert "8=2x" in line


def test_table_mixed_cell_types():
    text = format_table(
        ["name", "count", "mean"], [["hdrf", 12, 0.5], ["dbh", 3, 1.25]]
    )
    assert "hdrf" in text
    assert "12" in text
    assert "1.25" in text


def test_print_table_writes_stdout(capsys):
    print_table(["a"], [["x"]], title="Title")
    out = capsys.readouterr().out
    assert "Title" in out
    assert "x" in out


def test_print_series_writes_stdout(capsys):
    print_series("Speedups", {"LDG": [3.0]}, xs=[2])
    out = capsys.readouterr().out
    assert "Speedups" in out
    assert "LDG" in out
    assert "2=3" in out
