"""Tests for correlation helpers."""

import numpy as np
import pytest

from repro.experiments import pearson, r_squared


def test_perfect_linear_correlation():
    x = [1.0, 2.0, 3.0, 4.0]
    y = [2.0, 4.0, 6.0, 8.0]
    assert r_squared(x, y) == pytest.approx(1.0)
    assert pearson(x, y) == pytest.approx(1.0)


def test_negative_correlation_r2_still_one():
    x = [1.0, 2.0, 3.0]
    y = [3.0, 2.0, 1.0]
    assert pearson(x, y) == pytest.approx(-1.0)
    assert r_squared(x, y) == pytest.approx(1.0)


def test_noise_lowers_r2():
    rng = np.random.default_rng(0)
    x = np.linspace(0, 1, 100)
    y = x + rng.normal(0, 1.0, size=100)
    assert r_squared(x, y) < 0.9


def test_independent_series_near_zero():
    rng = np.random.default_rng(0)
    assert r_squared(rng.normal(size=500), rng.normal(size=500)) < 0.05


def test_validation():
    with pytest.raises(ValueError):
        pearson([1.0], [2.0])
    with pytest.raises(ValueError):
        pearson([1.0, 2.0], [1.0, 2.0, 3.0])
    with pytest.raises(ValueError):
        pearson([1.0, 1.0], [1.0, 2.0])
