"""Tests for the partition cache."""

from repro.experiments import (
    cached_edge_partition,
    cached_vertex_partition,
    clear_cache,
)


def test_edge_cache_hit_returns_same_object(tiny_or):
    clear_cache()
    a, seconds_a = cached_edge_partition(tiny_or, "dbh", 4, seed=0)
    b, seconds_b = cached_edge_partition(tiny_or, "dbh", 4, seed=0)
    assert a is b
    assert seconds_a == seconds_b


def test_different_k_different_entry(tiny_or):
    clear_cache()
    a, _ = cached_edge_partition(tiny_or, "dbh", 4, seed=0)
    b, _ = cached_edge_partition(tiny_or, "dbh", 8, seed=0)
    assert a is not b
    assert b.num_partitions == 8


def test_vertex_cache(tiny_or):
    clear_cache()
    a, seconds = cached_vertex_partition(tiny_or, "ldg", 4, seed=0)
    b, _ = cached_vertex_partition(tiny_or, "ldg", 4, seed=0)
    assert a is b
    assert seconds > 0


def test_clear_cache(tiny_or):
    a, _ = cached_edge_partition(tiny_or, "dbh", 4, seed=0)
    clear_cache()
    b, _ = cached_edge_partition(tiny_or, "dbh", 4, seed=0)
    assert a is not b


def test_name_case_insensitive(tiny_or):
    clear_cache()
    a, _ = cached_edge_partition(tiny_or, "DBH", 4, seed=0)
    b, _ = cached_edge_partition(tiny_or, "dbh", 4, seed=0)
    assert a is b
