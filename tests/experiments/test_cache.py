"""Tests for the partition cache."""

import pytest

from repro.experiments import (
    CacheEntryError,
    cache_size,
    cached_edge_partition,
    cached_vertex_partition,
    clear_cache,
    set_cache_capacity,
)
from repro.experiments.cache import DEFAULT_CACHE_CAPACITY
from repro.graph import Graph


def test_edge_cache_hit_returns_same_object(tiny_or):
    clear_cache()
    a, seconds_a = cached_edge_partition(tiny_or, "dbh", 4, seed=0)
    b, seconds_b = cached_edge_partition(tiny_or, "dbh", 4, seed=0)
    assert a is b
    assert seconds_a == seconds_b


def test_different_k_different_entry(tiny_or):
    clear_cache()
    a, _ = cached_edge_partition(tiny_or, "dbh", 4, seed=0)
    b, _ = cached_edge_partition(tiny_or, "dbh", 8, seed=0)
    assert a is not b
    assert b.num_partitions == 8


def test_vertex_cache(tiny_or):
    clear_cache()
    a, seconds = cached_vertex_partition(tiny_or, "ldg", 4, seed=0)
    b, _ = cached_vertex_partition(tiny_or, "ldg", 4, seed=0)
    assert a is b
    assert seconds > 0


def test_clear_cache(tiny_or):
    a, _ = cached_edge_partition(tiny_or, "dbh", 4, seed=0)
    clear_cache()
    b, _ = cached_edge_partition(tiny_or, "dbh", 4, seed=0)
    assert a is not b


def test_name_case_insensitive(tiny_or):
    clear_cache()
    a, _ = cached_edge_partition(tiny_or, "DBH", 4, seed=0)
    b, _ = cached_edge_partition(tiny_or, "dbh", 4, seed=0)
    assert a is b


def test_keyed_by_content_not_identity():
    """Two distinct Graph objects with identical content share an entry;
    a graph with different edges gets its own — id() recycling after
    garbage collection can no longer alias cache slots."""
    clear_cache()
    edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
    g1 = Graph.from_edge_list(edges, num_vertices=4)
    g2 = Graph.from_edge_list(edges, num_vertices=4)
    a, _ = cached_edge_partition(g1, "dbh", 2, seed=0)
    b, _ = cached_edge_partition(g2, "dbh", 2, seed=0)
    assert g1 is not g2
    assert a is b

    g3 = Graph.from_edge_list(edges[:-1], num_vertices=4)
    c, _ = cached_edge_partition(g3, "dbh", 2, seed=0)
    assert c is not a


@pytest.fixture
def restore_capacity():
    yield
    set_cache_capacity(DEFAULT_CACHE_CAPACITY)
    clear_cache()


def test_lru_evicts_oldest(tiny_or, restore_capacity):
    clear_cache()
    set_cache_capacity(2)
    a, _ = cached_edge_partition(tiny_or, "dbh", 2, seed=0)
    cached_edge_partition(tiny_or, "dbh", 4, seed=0)
    cached_edge_partition(tiny_or, "dbh", 8, seed=0)  # evicts k=2
    assert cache_size() == 2
    a2, _ = cached_edge_partition(tiny_or, "dbh", 2, seed=0)  # recompute
    assert a2 is not a


def test_lru_hit_refreshes_recency(tiny_or, restore_capacity):
    clear_cache()
    set_cache_capacity(2)
    a, _ = cached_edge_partition(tiny_or, "dbh", 2, seed=0)
    cached_edge_partition(tiny_or, "dbh", 4, seed=0)
    cached_edge_partition(tiny_or, "dbh", 2, seed=0)  # refresh k=2
    cached_edge_partition(tiny_or, "dbh", 8, seed=0)  # evicts k=4, not k=2
    a2, _ = cached_edge_partition(tiny_or, "dbh", 2, seed=0)
    assert a2 is a


def test_set_capacity_evicts_immediately(tiny_or, restore_capacity):
    clear_cache()
    cached_edge_partition(tiny_or, "dbh", 2, seed=0)
    cached_edge_partition(tiny_or, "dbh", 4, seed=0)
    cached_edge_partition(tiny_or, "dbh", 8, seed=0)
    assert cache_size() == 3
    set_cache_capacity(1)
    assert cache_size() == 1


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        set_cache_capacity(0)


def test_wrong_family_entry_raises_real_exception(tiny_or):
    """Corrupt entries raise CacheEntryError — a real exception that
    survives ``python -O``, unlike the bare asserts it replaced."""
    from repro.experiments import cache as cache_module

    clear_cache()
    partition, _ = cached_vertex_partition(tiny_or, "ldg", 2, seed=0)
    bad_key = cache_module._key("edge", "dbh", tiny_or, 2, 0)
    cache_module._CACHE[bad_key] = (partition, 0.0)
    try:
        with pytest.raises(CacheEntryError):
            cached_edge_partition(tiny_or, "dbh", 2, seed=0)
    finally:
        clear_cache()


def test_fingerprint_stable_and_content_sensitive():
    edges = [(0, 1), (1, 2)]
    g1 = Graph.from_edge_list(edges, num_vertices=3)
    g2 = Graph.from_edge_list(edges, num_vertices=3)
    assert g1.fingerprint() == g1.fingerprint()
    assert g1.fingerprint() == g2.fingerprint()
    bigger = Graph.from_edge_list(edges, num_vertices=4)
    directed = Graph.from_edge_list(edges, num_vertices=3, directed=True)
    assert bigger.fingerprint() != g1.fingerprint()
    assert directed.fingerprint() != g1.fingerprint()
