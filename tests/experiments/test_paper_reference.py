"""Sanity checks on the transcribed paper numbers."""

from repro.experiments.paper_reference import (
    DISTDGL_BATCH_SIZE_SPEEDUPS,
    DISTDGL_HIDDEN_DIM_SPEEDUPS,
    DISTDGL_MAX_SPEEDUPS,
    DISTGNN_MAX_SPEEDUP,
    DISTGNN_OR_MEAN_SPEEDUPS,
    DISTGNN_RF_PCT_OF_RANDOM,
    DISTGNN_SCALEOUT_SPEEDUPS,
    TABLE_4_AMORTIZATION,
    TABLE_5_AMORTIZATION,
)


def test_headline_speedups_present():
    # Paper abstract: speedups up to 10.4 (DistGNN) and ~3.5 (DistDGL).
    assert max(DISTGNN_MAX_SPEEDUP.values()) == 10.41
    assert max(DISTDGL_MAX_SPEEDUPS.values()) == 3.47


def test_distgnn_or_speedups_monotone_in_machines():
    """Section 4.3: effectiveness increases with the machine count."""
    for name in ("dbh", "hdrf", "hep10"):
        assert (
            DISTGNN_OR_MEAN_SPEEDUPS[(name, 8)]
            <= DISTGNN_OR_MEAN_SPEEDUPS[(name, 32)]
        )


def test_scaleout_ordering():
    for name, (at4, at32) in DISTGNN_SCALEOUT_SPEEDUPS.items():
        assert at32 > at4, name
    for name, (at4, at32) in DISTGNN_RF_PCT_OF_RANDOM.items():
        assert at32 < at4, name


def test_table4_dbh_fastest():
    for graph, row in TABLE_4_AMORTIZATION.items():
        values = [v for v in row.values() if v is not None]
        assert row["dbh"] == min(values), graph


def test_table5_kahip_slowest_where_defined():
    for graph, row in TABLE_5_AMORTIZATION.items():
        defined = {k: v for k, v in row.items() if v is not None}
        assert max(defined, key=defined.get) in ("kahip", "spinner"), graph


def test_hidden_dim_decreases_effectiveness():
    for name, (at16, at512) in DISTDGL_HIDDEN_DIM_SPEEDUPS.items():
        assert at512 < at16, name


def test_batch_size_increases_effectiveness():
    for name, (small, large) in DISTDGL_BATCH_SIZE_SPEEDUPS.items():
        assert large > small, name
