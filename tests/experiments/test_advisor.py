"""Tests for the partitioner selection advisor."""

import pytest

from repro.experiments import (
    TrainingParams,
    recommend_edge_partitioner,
)


@pytest.fixture(scope="module")
def graph():
    from repro.graph import load_dataset

    return load_dataset("OR", "tiny")


def test_recommendation_structure(graph):
    rec = recommend_edge_partitioner(
        graph, 4, planned_epochs=50, seed=0,
        candidates=("random", "dbh", "hep100"),
    )
    assert rec.best in ("random", "dbh", "hep100")
    assert len(rec.estimates) == 3
    for estimate in rec.estimates:
        assert estimate.epoch_seconds > 0
        assert estimate.total_seconds >= estimate.partitioning_seconds
    assert len(rec.as_rows()) == 3


def test_random_has_free_partitioning(graph):
    rec = recommend_edge_partitioner(
        graph, 4, planned_epochs=10, candidates=("random", "hdrf")
    )
    by_name = {e.name: e for e in rec.estimates}
    assert by_name["random"].partitioning_seconds == 0.0
    assert by_name["hdrf"].partitioning_seconds > 0.0


def test_many_epochs_prefer_quality(graph):
    """With enough planned epochs, a quality partitioner must win over
    Random (its per-epoch saving dominates the investment)."""
    rec = recommend_edge_partitioner(
        graph, 8, planned_epochs=100_000,
        candidates=("random", "hep100"), sample_fraction=0.5,
    )
    assert rec.best == "hep100"


def test_epoch_ranking_follows_quality(graph):
    rec = recommend_edge_partitioner(
        graph, 8, planned_epochs=10,
        candidates=("random", "hep100"), sample_fraction=0.5,
    )
    by_name = {e.name: e for e in rec.estimates}
    assert (
        by_name["hep100"].epoch_seconds < by_name["random"].epoch_seconds
    )
    assert (
        by_name["hep100"].replication_factor
        < by_name["random"].replication_factor
    )


def test_custom_params_respected(graph):
    slim = recommend_edge_partitioner(
        graph, 4, planned_epochs=10,
        params=TrainingParams(feature_size=16, hidden_dim=16, num_layers=2),
        candidates=("random",),
    )
    heavy = recommend_edge_partitioner(
        graph, 4, planned_epochs=10,
        params=TrainingParams(feature_size=512, hidden_dim=512, num_layers=4),
        candidates=("random",),
    )
    assert (
        heavy.estimates[0].epoch_seconds > slim.estimates[0].epoch_seconds
    )


def test_validation(graph):
    with pytest.raises(ValueError):
        recommend_edge_partitioner(graph, 4, planned_epochs=0)
    with pytest.raises(ValueError):
        recommend_edge_partitioner(graph, 4, 10, sample_fraction=0.0)
