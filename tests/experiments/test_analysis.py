"""Tests for the analysis summaries."""

import pytest

from repro.experiments import (
    DistributionSummary,
    TrainingParams,
    run_distgnn_grid,
    speedup_summary,
    summarize,
)


class TestDistributionSummary:
    def test_from_values(self):
        summary = DistributionSummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)
        assert summary.count == 4
        assert summary.spread == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DistributionSummary.from_values([])


@pytest.fixture
def records(tiny_or):
    grid = [
        TrainingParams(feature_size=f, hidden_dim=32, num_layers=2)
        for f in (16, 64)
    ]
    return run_distgnn_grid(tiny_or, ["random", "hep100"], [4], grid)


def test_summarize_groups(records):
    summaries = summarize(records, lambda r: r.replication_factor)
    assert ("OR", "hep100", 4) in summaries
    # RF does not depend on the GNN parameters: zero spread per cell.
    assert summaries[("OR", "hep100", 4)].spread == pytest.approx(0.0)


def test_speedup_summary(records):
    summaries = speedup_summary(records)
    hep = summaries[("OR", "hep100", 4)]
    assert hep.mean > 1.0
    assert summaries[("OR", "random", 4)].mean == pytest.approx(1.0)


def test_speedup_summary_missing_baseline(records):
    without_baseline = [
        r for r in records if r.partitioner != "random"
    ]
    with pytest.raises(ValueError):
        speedup_summary(without_baseline)
