"""Run the paper's full Table 3 sweep and persist the records as JSON.

The benchmark suite (``pytest benchmarks/``) uses reduced grids so it
finishes in minutes; this script runs the *complete* cross product —
27 hyper-parameter configurations x partitioners x machine counts per
graph and system — and writes ``sweep_distgnn.json`` /
``sweep_distdgl.json`` for offline analysis.

Usage::

    python scripts/run_full_sweep.py [--quick] [--graphs OR,EU]
        [--machines 4,32] [--out DIR] [--workers N]
        [--fault-rate P] [--epochs E] [--checkpoint-every C]
        [--compression none,fp16] [--refresh-interval 1,4]
        [--cache-fraction 0,0.5]
        [--obs-level metrics] [--obs-out sweep_obs.jsonl]
        [--bus-out BUS_DIR] [--rules rules.json] [--abort-on critical]
        [--profile-out PROFILE_DIR]

``--quick`` restricts to the corner-covering reduced grid (the same one
the benchmarks use). ``--workers N`` fans the (machines, partitioner)
grid cells out over N processes (0 = one per CPU); results are identical
to the serial run. A non-zero ``--fault-rate`` / ``--slowdown-rate`` /
``--loss-rate`` turns the sweep into a seeded fault sweep: every cell is
simulated for ``--epochs`` epochs under the same deterministic fault
plan, the records gain recovery accounting, and a per-partitioner
recovery-overhead summary is printed at the end.

``--compression`` / ``--refresh-interval`` / ``--cache-fraction`` take
comma lists and turn the sweep into a *communication-reduction* sweep
(see ``docs/communication.md``): every grid cell is run once per comm
configuration in the cross product, records carry the
``comm_config`` that produced them plus traffic-saved / codec-time /
staleness accounting, and a per-codec traffic summary is printed at
the end. The defaults (``none``, ``1``, ``0``) leave the sweep
byte-identical to a pre-comm run.

``--obs-level metrics`` (or ``trace``) collects telemetry during the
sweep (see ``docs/observability.md``): every record gains a
deterministic ``obs_metrics`` summary — identical between serial and
parallel runs — and ``--obs-out`` receives a JSONL dump (trace events,
when tracing, plus a final metrics-snapshot record from the coordinator
process). Feed the saved sweeps to ``scripts/build_run_report.py`` for
a consolidated markdown/JSON run report.

``--profile-out DIR`` captures one deterministic cProfile artifact per
grid cell (``profile-cell-NNNNNN.json`` — see ``docs/profiling.md``);
render one with ``repro obs flamegraph``, compare two runs with
``repro obs profile-diff``. Capturing disables the serial fast path so
profiled and unprofiled sweeps still produce identical records.

``--bus-out DIR`` streams live progress events onto a telemetry bus
(per-worker JSONL files; watch it from another terminal with
``python -m repro obs watch DIR`` — see ``docs/live.md``). ``--rules
FILE`` evaluates a declarative alert-rule file against every finished
cell's records; firings are printed (and pushed onto the bus) as
findings, and ``--abort-on {warning,critical}`` stops the sweep early
with exit code 2 the moment a rule fires at or above that severity.

The cell fan-out rides :mod:`repro.experiments.executor` — the same
engine behind ``repro serve`` (``docs/serve.md``), which runs these
sweeps as queued multi-tenant jobs instead of one batch invocation.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro import obs
from repro.experiments import (
    MACHINE_COUNTS,
    FaultConfig,
    comm_grid,
    parameter_grid,
    reduced_grid,
    robustness_summary,
    run_distdgl_grid_parallel,
    run_distgnn_grid_parallel,
    save_records,
    speedup_summary,
)
from repro.graph import DATASET_KEYS, load_dataset, random_split
from repro.partitioning import (
    EDGE_PARTITIONER_NAMES,
    VERTEX_PARTITIONER_NAMES,
)


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced grid instead of the full 27 configs")
    parser.add_argument("--graphs", default=",".join(DATASET_KEYS))
    parser.add_argument(
        "--machines", default=",".join(str(k) for k in MACHINE_COUNTS)
    )
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "medium"))
    parser.add_argument("--out", default=".")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="processes for the grid fan-out (0 = one per CPU, 1 = serial)",
    )
    parser.add_argument(
        "--epochs", type=int, default=1,
        help="epochs per cell (fault sweeps need more than one)",
    )
    parser.add_argument("--fault-rate", type=float, default=0.0,
                        help="per-(epoch, machine) crash probability")
    parser.add_argument("--slowdown-rate", type=float, default=0.0,
                        help="per-(epoch, machine) straggler probability")
    parser.add_argument("--loss-rate", type=float, default=0.0,
                        help="per-(epoch, machine) lost-message probability")
    parser.add_argument("--checkpoint-every", type=int, default=5,
                        help="full-batch checkpoint interval in epochs")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the deterministic fault plan")
    parser.add_argument("--compression", default="none",
                        help="comma list of codecs to sweep "
                             "(none, fp16, int8, topk)")
    parser.add_argument("--refresh-interval", default="1",
                        help="comma list of cd-r halo refresh intervals "
                             "(1 = sync every epoch)")
    parser.add_argument("--cache-fraction", default="0",
                        help="comma list of DistDGL feature-cache "
                             "fractions in [0, 1)")
    parser.add_argument("--obs-level", default="off", choices=obs.LEVELS,
                        help="telemetry level: off (default), metrics, "
                             "trace")
    parser.add_argument("--obs-out", default=None,
                        help="JSONL telemetry output (trace events plus a "
                             "final metrics-snapshot record)")
    parser.add_argument("--analysis-out", default=None,
                        help="write an analysis report JSON for the sweep "
                             "(see docs/analysis.md); built from the "
                             "records only, so serial and parallel sweeps "
                             "produce identical reports")
    parser.add_argument("--analysis-dashboard", default=None,
                        help="also write the self-contained HTML dashboard")
    parser.add_argument("--bus-out", default=None,
                        help="telemetry-bus directory: stream live "
                             "progress events for `repro obs watch`")
    parser.add_argument("--profile-out", default=None,
                        help="directory for per-cell cProfile artifacts "
                             "(profile-cell-NNNNNN.json; render with "
                             "`repro obs flamegraph`, compare with "
                             "`repro obs profile-diff`)")
    parser.add_argument("--rules", default=None,
                        help="alert-rules JSON evaluated per finished "
                             "cell (see docs/live.md)")
    parser.add_argument("--abort-on", default=None,
                        choices=("warning", "critical"),
                        help="stop the sweep (exit 2) when a rule fires "
                             "at or above this severity")
    return parser.parse_args(argv)


def fault_config_from(args):
    config = FaultConfig(
        crash_rate=args.fault_rate,
        slowdown_rate=args.slowdown_rate,
        loss_rate=args.loss_rate,
        checkpoint_every=args.checkpoint_every,
        seed=args.fault_seed,
    )
    return config if config else None


def comm_configs_from(args):
    """Expand the comm flags into the cross product of CommConfigs.

    An all-default grid collapses to ``[None]`` so the baseline sweep
    takes the exact pre-comm code path (bit-identical records).
    """
    configs = list(comm_grid(
        compressions=tuple(
            s.strip() for s in args.compression.split(",") if s.strip()
        ),
        refresh_intervals=tuple(
            int(s) for s in args.refresh_interval.split(",") if s.strip()
        ),
        cache_fractions=tuple(
            float(s) for s in args.cache_fraction.split(",") if s.strip()
        ),
    ))
    if len(configs) == 1 and not configs[0]:
        return [None]
    return configs


def main(argv=None) -> int:
    args = parse_args(argv)
    graphs = [g.strip().upper() for g in args.graphs.split(",")]
    machines = [int(k) for k in args.machines.split(",")]
    grid = list(reduced_grid() if args.quick else parameter_grid())
    fault_config = fault_config_from(args)
    comm_configs = comm_configs_from(args)
    comm_sweep = any(c is not None for c in comm_configs)
    print(
        f"sweep: graphs={graphs} machines={machines} "
        f"configs={len(grid)} scale={args.scale}"
    )
    if comm_sweep:
        print(
            "comm: "
            + ", ".join(c.label() for c in comm_configs)
        )
    if fault_config is not None:
        print(
            f"faults: crash={fault_config.crash_rate} "
            f"slowdown={fault_config.slowdown_rate} "
            f"loss={fault_config.loss_rate} "
            f"checkpoint-every={fault_config.checkpoint_every} "
            f"epochs={args.epochs} seed={fault_config.seed}"
        )

    if args.obs_level != "off":
        sink = None
        if args.obs_out and args.obs_level == "trace":
            sink = obs.JsonlSink(args.obs_out)
        obs.configure(args.obs_level, sink)

    rules = None
    if args.rules:
        from repro.obs.live import RuleSet

        rules = RuleSet.load(args.rules)
        print(f"rules: {len(rules.rules)} loaded from {args.rules}")
    if args.abort_on and rules is None:
        print("--abort-on needs --rules", file=sys.stderr)
        return 1

    bus = None
    if args.bus_out:
        from repro.obs.live import BusWriter

        bus = BusWriter(args.bus_out, "coordinator")
        cells_per_graph = len(comm_configs) * len(machines) * (
            len(EDGE_PARTITIONER_NAMES) + len(VERTEX_PARTITIONER_NAMES)
        )
        bus.sweep_start(
            len(graphs) * cells_per_graph,
            graphs=graphs, machine_counts=machines,
            configs=len(grid),
        )
        print(f"bus: streaming to {args.bus_out} "
              f"(watch: python -m repro obs watch {args.bus_out})")

    fired_alerts = []
    cell_callback = None
    if rules is not None:
        from repro.obs.live import SweepAborted, severity_at_least

        def cell_callback(cell, cell_records):
            firings = rules.evaluate_records(cell_records)
            for index, finding in enumerate(firings):
                if bus is not None:
                    bus.finding(cell, index, finding)
                print(
                    f"  alert [{finding.severity}] {finding.message}"
                )
            fired_alerts.extend(firings)
            if args.abort_on:
                fatal = [
                    f for f in firings
                    if severity_at_least(f.severity, args.abort_on)
                ]
                if fatal:
                    raise SweepAborted(fatal)
    elif args.bus_out:
        def cell_callback(cell, cell_records):
            pass

    workers = args.workers if args.workers > 0 else None
    distgnn_records = []
    distdgl_records = []
    aborted = None
    cell_offset = 0
    try:
        for key in graphs:
            graph = load_dataset(key, args.scale, seed=args.seed)
            split = random_split(graph, seed=args.seed)
            for comm in comm_configs:
                tag = f" [{comm.label()}]" if comm is not None else ""
                start = time.time()
                distgnn_records.extend(
                    run_distgnn_grid_parallel(
                        graph, EDGE_PARTITIONER_NAMES, machines, grid,
                        seed=args.seed, workers=workers,
                        fault_config=fault_config,
                        num_epochs=args.epochs,
                        bus_dir=args.bus_out,
                        cell_callback=cell_callback,
                        cell_offset=cell_offset, comm_config=comm,
                        profile_dir=args.profile_out,
                    )
                )
                cell_offset += len(machines) * len(EDGE_PARTITIONER_NAMES)
                print(
                    f"{key}: DistGNN grid{tag} done in "
                    f"{time.time() - start:.0f}s"
                )
                start = time.time()
                distdgl_records.extend(
                    run_distdgl_grid_parallel(
                        graph, VERTEX_PARTITIONER_NAMES, machines, grid,
                        split=split, seed=args.seed, workers=workers,
                        fault_config=fault_config,
                        num_epochs=args.epochs,
                        bus_dir=args.bus_out,
                        cell_callback=cell_callback,
                        cell_offset=cell_offset, comm_config=comm,
                        profile_dir=args.profile_out,
                    )
                )
                cell_offset += (
                    len(machines) * len(VERTEX_PARTITIONER_NAMES)
                )
                print(
                    f"{key}: DistDGL grid{tag} done in "
                    f"{time.time() - start:.0f}s"
                )
    except Exception as error:
        from repro.obs.live import SweepAborted

        if not isinstance(error, SweepAborted):
            raise
        aborted = error
    finally:
        if bus is not None:
            bus.close()

    os.makedirs(args.out, exist_ok=True)
    gnn_path = os.path.join(args.out, "sweep_distgnn.json")
    dgl_path = os.path.join(args.out, "sweep_distdgl.json")
    save_records(distgnn_records, gnn_path)
    save_records(distdgl_records, dgl_path)
    print(f"wrote {gnn_path} ({len(distgnn_records)} records)")
    print(f"wrote {dgl_path} ({len(distdgl_records)} records)")

    if aborted is not None:
        if args.obs_level != "off":
            obs.reset()
            obs.disable()
        print(f"\nABORTED: {aborted}", file=sys.stderr)
        for finding in aborted.findings:
            print(
                f"  [{finding.severity}] {finding.subject}: "
                f"{finding.message}",
                file=sys.stderr,
            )
        return 2

    if args.obs_level != "off":
        if args.obs_out:
            sink = obs.get_sink()
            if sink is None:
                sink = obs.JsonlSink(args.obs_out)
                obs.set_sink(sink)
            sink.emit(
                {
                    "kind": "metrics-snapshot",
                    "name": "final",
                    "metrics": obs.snapshot(),
                }
            )
            print(f"wrote {args.obs_out} (telemetry)")
        obs.reset()
        obs.disable()

    if args.analysis_out or args.analysis_dashboard:
        from repro.obs import analysis

        run = analysis.RunData(
            label="sweep",
            records=list(distgnn_records) + list(distdgl_records),
        )
        report = analysis.build_analysis_report(run)
        report_dict = report.to_dict()
        if args.analysis_out:
            report.save(args.analysis_out)
            print(f"wrote {args.analysis_out} (analysis report)")
        if args.analysis_dashboard:
            with open(
                args.analysis_dashboard, "w", encoding="utf-8"
            ) as handle:
                handle.write(analysis.render_dashboard(report_dict))
            print(f"wrote {args.analysis_dashboard} (dashboard)")

    if rules is not None:
        if fired_alerts:
            print(f"\nalerts fired: {len(fired_alerts)}")
            for finding in fired_alerts:
                print(
                    f"  [{finding.severity}] {finding.subject}: "
                    f"{finding.message}"
                )
        else:
            print(f"\nalerts fired: none ({len(rules.rules)} rules)")

    # Quick headline: mean speedups at the largest machine count.
    top_k = max(machines)
    for label, records in (
        ("DistGNN", distgnn_records),
        ("DistDGL", distdgl_records),
    ):
        summaries = speedup_summary(records)
        print(f"\n{label} mean speedup over Random @ {top_k} machines:")
        for (graph, partitioner, k), summary in sorted(summaries.items()):
            if k == top_k and partitioner != "random":
                print(
                    f"  {graph} {partitioner:>8s}: {summary.mean:5.2f}x "
                    f"[{summary.minimum:.2f}, {summary.maximum:.2f}]"
                )

    if comm_sweep:
        for label, records in (
            ("DistGNN", distgnn_records),
            ("DistDGL", distdgl_records),
        ):
            totals = {}
            for record in records:
                comm = record.comm_config
                key = comm.label() if comm is not None else "baseline"
                wire, saved, err = totals.get(key, (0.0, 0.0, 0.0))
                totals[key] = (
                    wire + record.network_bytes,
                    saved + record.traffic_saved_bytes,
                    max(err, record.accuracy_proxy_error),
                )
            print(f"\n{label} traffic by comm config:")
            for key, (wire, saved, err) in sorted(totals.items()):
                raw = wire + saved
                pct = 100.0 * saved / raw if raw else 0.0
                print(
                    f"  {key:>16s}: {wire / 1e6:10.1f} MB on the wire "
                    f"({pct:5.1f}% saved, accuracy proxy error "
                    f"{err:.4f})"
                )

    if fault_config is not None:
        for label, records in (
            ("DistGNN", distgnn_records),
            ("DistDGL", distdgl_records),
        ):
            summaries = robustness_summary(records)
            print(
                f"\n{label} recovery overhead (fraction of makespan) "
                f"@ {top_k} machines:"
            )
            for (graph, partitioner, k), summary in sorted(summaries.items()):
                if k == top_k:
                    print(
                        f"  {graph} {partitioner:>8s}: "
                        f"{summary.mean * 100:5.2f}% "
                        f"[{summary.minimum * 100:.2f}, "
                        f"{summary.maximum * 100:.2f}]"
                    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
