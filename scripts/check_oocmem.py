"""Bounded-memory gate for the out-of-core partitioning pipeline.

Runs the full chunk-store pipeline — chunk-native RMAT generation →
spool → streaming HDRF → per-partition shuffle — on a 10^6-edge graph
and fails (exit 1) when the peak memory exceeds explicit caps:

* ``--max-traced-mb`` (default 96) bounds the Python-heap high-water
  mark measured by ``tracemalloc``. The measured peak is ~47 MiB,
  dominated by the k=32 bucket-writer buffers (32 × 1 MiB) plus HDRF's
  O(num_vertices · k) state — a full in-memory pass over the same
  stream would need the 10^6 × 2 int64 edge array *per copy held*, and
  the pipeline's peak must stay independent of the edge count.
* ``--max-rss-mb`` (default 512) sanity-bounds the process RSS
  high-water mark. RSS includes the interpreter, numpy, and (on Linux)
  any page-cache-resident memmap pages, so the cap is loose; it exists
  to catch a pipeline that silently materialises the stream.

CI runs this as the bounded-memory smoke job::

    PYTHONPATH=src python scripts/check_oocmem.py

Scale or caps can be overridden for local experiments
(``--edges 10000000 --max-traced-mb 128``).
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time

from repro.graph import EdgeChunkReader, rmat_edge_chunks, spool_edges
from repro.obs import PeakMemoryTracker
from repro.partitioning import HdrfPartitioner, shuffle_stream

#: Fixed vertex count (2^18) — matches the bench scale sweep.
RMAT_SCALE = 18
#: Spool chunk size in rows; the quantity the peak memory is bounded by.
CHUNK_ROWS = 1 << 16
#: Machine count (the paper's largest).
NUM_PARTITIONS = 32


def run_pipeline(num_edges: int, directory: str) -> dict:
    """Generate → spool → partition → shuffle; returns a summary."""
    spool_dir = os.path.join(directory, "spool")
    bucket_dir = os.path.join(directory, "buckets")
    start = time.perf_counter()
    with PeakMemoryTracker() as tracker:
        spool_edges(
            rmat_edge_chunks(RMAT_SCALE, num_edges, seed=42),
            spool_dir,
            chunk_size=CHUNK_ROWS,
            num_vertices=1 << RMAT_SCALE,
            directed=True,
        )
        reader = EdgeChunkReader(spool_dir)
        result = shuffle_stream(
            reader,
            HdrfPartitioner(),
            NUM_PARTITIONS,
            bucket_dir,
            seed=0,
        )
    elapsed = time.perf_counter() - start
    if int(result.edge_counts.sum()) != num_edges:
        raise AssertionError(
            f"shuffle lost edges: buckets hold "
            f"{int(result.edge_counts.sum())} of {num_edges}"
        )
    return {
        "edges": num_edges,
        "seconds": elapsed,
        "traced_peak_bytes": tracker.traced_peak_bytes,
        "rss_peak_bytes": tracker.rss_peak_bytes,
        "rss_resettable": tracker.rss_resettable,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--edges", type=int, default=10**6)
    parser.add_argument("--max-traced-mb", type=float, default=96.0)
    parser.add_argument("--max-rss-mb", type=float, default=512.0)
    parser.add_argument(
        "--workdir", default=None,
        help="scratch directory (default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-oocmem-")
    try:
        summary = run_pipeline(args.edges, workdir)
    finally:
        if args.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)

    traced_mb = summary["traced_peak_bytes"] / 2**20
    rss_mb = (summary["rss_peak_bytes"] or 0) / 2**20
    print(
        f"out-of-core pipeline: {summary['edges']:,} edges in "
        f"{summary['seconds']:.1f}s "
        f"({summary['edges'] / summary['seconds']:,.0f} edges/s)"
    )
    print(
        f"peak memory: {traced_mb:.1f} MiB traced "
        f"(cap {args.max_traced_mb:.0f}), {rss_mb:.1f} MiB RSS "
        f"(cap {args.max_rss_mb:.0f}, "
        f"resettable={summary['rss_resettable']})"
    )
    failures = []
    if traced_mb > args.max_traced_mb:
        failures.append(
            f"traced peak {traced_mb:.1f} MiB exceeds the "
            f"{args.max_traced_mb:.0f} MiB cap"
        )
    if summary["rss_peak_bytes"] is not None and rss_mb > args.max_rss_mb:
        failures.append(
            f"RSS peak {rss_mb:.1f} MiB exceeds the "
            f"{args.max_rss_mb:.0f} MiB cap"
        )
    if failures:
        print("bounded-memory gate FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("bounded-memory gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
