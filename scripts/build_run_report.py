"""Build a consolidated markdown + JSON report from saved sweep records.

Thin command-line wrapper around
:func:`repro.experiments.build_run_report`: load one or more sweep JSON
files (as written by ``scripts/run_full_sweep.py`` or
``repro.experiments.save_records``), fold them into a single report, and
write ``run_report.md`` plus ``run_report.json`` next to each other.

Usage::

    PYTHONPATH=src python scripts/build_run_report.py \
        sweep_distgnn.json sweep_distdgl.json --out reports/

The fault and telemetry sections appear automatically when the input
records carry ``fault_config`` / ``obs_metrics`` fields (sweeps run with
``--fault-rate`` / ``--obs-level metrics``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.experiments import build_run_report, load_records


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+",
                        help="sweep JSON files (save_records format)")
    parser.add_argument("--out", default=".",
                        help="output directory for run_report.{md,json}")
    parser.add_argument("--name", default="run_report",
                        help="basename of the two output files")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    records = []
    for path in args.inputs:
        loaded = load_records(path)
        print(f"loaded {path} ({len(loaded)} records)")
        records.extend(loaded)
    if not records:
        print("no records in the given inputs", file=sys.stderr)
        return 1

    markdown, report = build_run_report(records)
    os.makedirs(args.out, exist_ok=True)
    md_path = os.path.join(args.out, f"{args.name}.md")
    json_path = os.path.join(args.out, f"{args.name}.json")
    with open(md_path, "w", encoding="utf-8") as handle:
        handle.write(markdown)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {md_path}")
    print(f"wrote {json_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
