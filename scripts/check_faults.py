"""Fault-sweep correctness gate.

Three invariants the fault-injection subsystem must never lose:

1. **Determinism** — the same seeded :class:`FaultConfig` produces
   bit-identical records across repeated runs.
2. **Serial == parallel** — fanning a fault sweep's grid cells out over
   worker processes changes nothing: the fault plan is a pure function
   of (config, cluster size, epochs), never of scheduling.
3. **Checkpoint arithmetic** — a crash at epoch ``e`` under checkpoint
   interval ``c`` re-executes exactly ``e mod c`` epochs (each at its
   original cost) plus a restore, and nothing else.

Opt-in from pytest via the ``faults`` marker::

    PYTHONPATH=src python -m pytest -m faults tests/test_faults_gate.py

Usage::

    python scripts/check_faults.py [--epochs 5] [--seed 13]
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.cluster import FaultEvent, FaultPlan, RecoveryPolicy
from repro.distgnn import DistGnnEngine
from repro.experiments import (
    FaultConfig,
    clear_cache,
    reduced_grid,
    run_distdgl_grid,
    run_distdgl_grid_parallel,
    run_distgnn_grid,
    run_distgnn_grid_parallel,
)
from repro.graph import load_dataset, random_split
from repro.partitioning import RandomEdgePartitioner


def check_determinism(graph, split, config, epochs) -> list:
    """Invariant 1: repeated seeded sweeps are record-identical."""
    failures = []
    grid = list(reduced_grid())[:1]
    kwargs = dict(fault_config=config, num_epochs=epochs)
    first = run_distgnn_grid(graph, ["random", "hdrf"], [4], grid, **kwargs)
    second = run_distgnn_grid(graph, ["random", "hdrf"], [4], grid, **kwargs)
    if first != second:
        failures.append("DistGNN fault sweep is not run-to-run deterministic")
    first = run_distdgl_grid(
        graph, ["random", "metis"], [4], grid, split=split, **kwargs
    )
    second = run_distdgl_grid(
        graph, ["random", "metis"], [4], grid, split=split, **kwargs
    )
    if first != second:
        failures.append("DistDGL fault sweep is not run-to-run deterministic")
    return failures


def check_serial_vs_parallel(graph, split, config, epochs) -> list:
    """Invariant 2: process fan-out does not change fault records."""
    failures = []
    grid = list(reduced_grid())[:2]
    kwargs = dict(fault_config=config, num_epochs=epochs)
    serial = run_distgnn_grid(
        graph, ["random", "hdrf"], [2, 4], grid, **kwargs
    )
    parallel = run_distgnn_grid_parallel(
        graph, ["random", "hdrf"], [2, 4], grid, workers=2, **kwargs
    )
    if serial != parallel:
        failures.append("DistGNN fault records differ serial vs parallel")
    if not any(r.crashes or r.slowdowns or r.lost_messages for r in serial):
        failures.append("DistGNN fault sweep injected no faults at all")
    serial = run_distdgl_grid(
        graph, ["random", "metis"], [2, 4], grid, split=split, **kwargs
    )
    parallel = run_distdgl_grid_parallel(
        graph, ["random", "metis"], [2, 4], grid, split=split, workers=2,
        **kwargs,
    )
    if serial != parallel:
        failures.append("DistDGL fault records differ serial vs parallel")
    return failures


def check_checkpoint_arithmetic(graph) -> list:
    """Invariant 3: crash at epoch e, interval c => replay e mod c."""
    failures = []
    crash_epoch, interval, total_epochs = 5, 3, 7
    partition = RandomEdgePartitioner().partition(graph, 4, seed=0)

    baseline = DistGnnEngine(partition, feature_size=16, hidden_dim=16,
                             num_layers=2)
    epoch_seconds = baseline.simulate_epoch().epoch_seconds

    engine = DistGnnEngine(partition, feature_size=16, hidden_dim=16,
                           num_layers=2)
    plan = FaultPlan(
        (FaultEvent("crash", epoch=crash_epoch, machine=1),)
    )
    engine.simulate_training(
        total_epochs, fault_plan=plan,
        recovery=RecoveryPolicy(checkpoint_every=interval),
    )
    expected_replays = crash_epoch % interval
    if engine.fault_summary.reexecuted_epochs != expected_replays:
        failures.append(
            f"crash at epoch {crash_epoch} with c={interval} re-executed "
            f"{engine.fault_summary.reexecuted_epochs} epochs, expected "
            f"{expected_replays}"
        )
    totals = engine.cluster.timeline.phase_totals()
    replay_seconds = sum(
        v for name, v in totals.items() if name.startswith("replay:")
    )
    if not np.isclose(replay_seconds, expected_replays * epoch_seconds):
        failures.append(
            f"replay charged {replay_seconds:.6f}s, expected "
            f"{expected_replays} x {epoch_seconds:.6f}s"
        )
    if totals.get("fault-restore", 0.0) <= 0.0:
        failures.append("crash recovery charged no restore time")
    timeline = engine.cluster.timeline
    accounted = (
        total_epochs * epoch_seconds
        + timeline.recovery_seconds()
        + timeline.checkpoint_seconds()
    )
    if not np.isclose(timeline.total_seconds, accounted):
        failures.append(
            f"timeline total {timeline.total_seconds:.6f}s != base + "
            f"recovery + checkpoints = {accounted:.6f}s"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args(argv)

    clear_cache()
    graph = load_dataset("OR", "tiny", seed=0)
    split = random_split(graph, seed=0)
    config = FaultConfig(crash_rate=0.15, slowdown_rate=0.1, loss_rate=0.1,
                         checkpoint_every=2, seed=args.seed)

    failures = []
    failures += check_determinism(graph, split, config, args.epochs)
    failures += check_serial_vs_parallel(graph, split, config, args.epochs)
    failures += check_checkpoint_arithmetic(graph)

    if failures:
        print("fault gate failures:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        "fault gate passed: deterministic, serial == parallel, "
        "checkpoint arithmetic exact"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
