"""Microbenchmark suite for the partitioning and sampling kernels.

Times every registered partitioner (plus the streaming extensions) on
the standard small-scale synthetic graphs at ``k=32``, the HDRF
vectorised kernel against its retained scalar reference on the largest
graph (verifying bit-identical assignments), the neighbourhood
sampling kernel, the overhead of the observability hooks on a fixed
simulation cell (plain / off / metrics / trace), the bookkeeping cost
of the comm codecs on the same cell (none / fp16 / int8 / topk —
``docs/communication.md``), and — new with the
out-of-core pipeline — a *scale sweep*: RMAT streams of 10^4 … 10^7
edges spooled through the chunk store and driven through every
streaming partitioner, recording edges/sec and the peak memory of the
drive (``tracemalloc`` high-water plus RSS) per decade, so
``scripts/check_perf.py`` can assert that out-of-core peak memory
grows sublinearly in the edge count.

``BENCH_partitioning.json`` at the repo root is a *history series*
(schema 2): a retained ``baseline`` report plus a ``history`` list to
which every run appends a timestamped entry, so the perf trajectory is
tracked over time rather than overwritten. ``scripts/check_perf.py``
gates against the latest history entry (falling back to the baseline).
A legacy schema-1 flat report is migrated in place: it becomes the
baseline and the fresh run starts the history.

Usage::

    python scripts/bench_perf.py [--out FILE] [--repeats N] [--quick]
        [--set-baseline] [--keep N] [--scale-sweep-max EDGES]
        [--profile]

``--quick`` runs a single repeat per kernel and restricts the scale
sweep to the fast algorithms (used by the perf gate); the committed
baseline should be produced with the default repeats and
``--scale-sweep-max 10000000`` so the 10^7 decade is on record.
``--set-baseline`` promotes this run to the retained baseline; ``--keep``
bounds the history length (oldest entries are dropped).

``--profile`` additionally captures one trimmed cProfile artifact per
kernel (top functions by cumtime, stacks dropped) into the history
entry's ``profiles`` section; when a later ``check_perf.py`` run trips
a kernel gate, it diffs a fresh capture against that section to name
the regressed functions. The hooks themselves are benchmarked
unconditionally (``profiling_overhead``): the disabled ``profile_scope``
checks on the hot paths are gated with the same budget as the obs
hooks. ``repro obs trend`` reads the same history file for slow-creep
detection (see ``docs/profiling.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.gnn.sampling import default_fanouts, sample_blocks
from repro.graph import (
    DATASET_KEYS,
    EdgeChunkReader,
    load_dataset,
    rmat_edge_chunks,
    spool_edges,
)
from repro.obs import PeakMemoryTracker
from repro.partitioning import (
    EDGE_PARTITIONER_NAMES,
    VERTEX_PARTITIONER_NAMES,
    DbhPartitioner,
    EdgePartitioner,
    HdrfPartitioner,
    LdgPartitioner,
    RandomEdgePartitioner,
    TwoPsLPartitioner,
    make_edge_partitioner,
    make_vertex_partitioner,
    shuffle_stream,
)
from repro.partitioning.extensions.fennel import FennelPartitioner
from repro.partitioning.extensions.reldg import RestreamingLdgPartitioner

#: Machine count for all partitioner timings (the paper's largest).
BENCH_K = 32
#: The largest standard synthetic graph (by edges) — HDRF's 5x
#: speedup acceptance bar is measured here.
LARGEST_GRAPH = "HW"

#: RMAT scale for the out-of-core sweep. Fixed across decades so the
#: O(num_vertices) partitioner state is a *constant*: any growth in
#: peak memory with the edge count is the pipeline's own doing.
SCALE_SWEEP_SCALE = 18
#: Edge-count decades of the sweep (multigraph RMAT streams).
SCALE_SWEEP_DECADES = (10**4, 10**5, 10**6, 10**7)
#: Spool chunk size (rows) — deliberately smaller than the store
#: default so the bounded-memory claim is exercised, not hidden.
SCALE_SWEEP_CHUNK = 1 << 16
#: Stream seed shared by every decade (same generator, longer prefix).
SCALE_SWEEP_SEED = 42
#: Largest decade each algorithm runs: the Python-loop-heavy kernels
#: (union-find clustering, multi-pass restreaming) stop a decade early
#: to keep the full sweep under a few minutes.
SCALE_SWEEP_CAPS = {
    "hdrf": 10**7,
    "dbh": 10**7,
    "random": 10**7,
    "ldg": 10**6,
    "fennel": 10**6,
    "2ps-l": 10**6,
    "reldg": 10**6,
}
#: Subset the perf gate sweeps (tracemalloc slows the slower kernels
#: by minutes; the full set is recorded by the committed baseline run).
SCALE_SWEEP_QUICK_ALGOS = ("hdrf", "dbh", "random", "ldg")

_SWEEP_FACTORIES = {
    "hdrf": HdrfPartitioner,
    "dbh": DbhPartitioner,
    "random": RandomEdgePartitioner,
    "ldg": LdgPartitioner,
    "fennel": FennelPartitioner,
    "2ps-l": TwoPsLPartitioner,
    "reldg": RestreamingLdgPartitioner,
}


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_partitioners(graphs: dict, repeats: int) -> dict:
    """Time every partitioner on every graph at ``k=BENCH_K``."""
    results: dict = {}
    extension_factories = {
        "fennel": FennelPartitioner,
        "reldg": RestreamingLdgPartitioner,
    }
    for key, graph in graphs.items():
        # Warm the cached adjacency views so timings isolate the kernels.
        graph.undirected_edges()
        graph.symmetric_csr()
        graph.degrees()
        for name in EDGE_PARTITIONER_NAMES:
            seconds = _time(
                lambda: make_edge_partitioner(name).partition(
                    graph, BENCH_K, seed=0
                ),
                repeats,
            )
            results[f"{key}/{name}"] = {"seconds": seconds}
        for name in VERTEX_PARTITIONER_NAMES:
            seconds = _time(
                lambda: make_vertex_partitioner(name).partition(
                    graph, BENCH_K, seed=0
                ),
                repeats,
            )
            results[f"{key}/{name}"] = {"seconds": seconds}
        for name, factory in extension_factories.items():
            seconds = _time(
                lambda: factory().partition(graph, BENCH_K, seed=0),
                repeats,
            )
            results[f"{key}/{name}"] = {"seconds": seconds}
    return results


def bench_hdrf_reference(graph, repeats: int) -> dict:
    """Vectorised vs scalar-reference HDRF on the largest graph."""
    graph.undirected_edges()
    reference = HdrfPartitioner(vectorised=False).partition(
        graph, BENCH_K, seed=0
    )
    vectorised = HdrfPartitioner().partition(graph, BENCH_K, seed=0)
    identical = bool(
        np.array_equal(reference.assignment, vectorised.assignment)
    )
    ref_seconds = _time(
        lambda: HdrfPartitioner(vectorised=False).partition(
            graph, BENCH_K, seed=0
        ),
        repeats,
    )
    vec_seconds = _time(
        lambda: HdrfPartitioner().partition(graph, BENCH_K, seed=0),
        repeats,
    )
    return {
        "graph": graph.name,
        "k": BENCH_K,
        "reference_seconds": ref_seconds,
        "vectorised_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds,
        "identical": identical,
    }


def bench_sampling(graph, repeats: int) -> dict:
    """Time one 3-layer fan-out sampling pass over a large seed batch."""
    graph.symmetric_csr()
    rng = np.random.default_rng(0)
    seeds = rng.choice(graph.num_vertices, size=1024, replace=False)
    fanouts = default_fanouts(3)

    def run():
        sample_blocks(graph, seeds, fanouts, np.random.default_rng(1))

    return {
        "graph": graph.name,
        "batch": int(seeds.size),
        "fanouts": list(fanouts),
        "seconds": _time(run, repeats),
    }


def bench_obs_overhead(repeats: int) -> dict:
    """Cost of the observability hooks on one fixed simulation cell.

    Times ``run_distgnn`` on the tiny OR graph at four instrumentation
    settings: ``plain`` (the hook entry points replaced with no-ops —
    the floor a hook-free build would reach), ``off`` (the shipped
    default: hooks present but disabled), ``metrics`` and ``trace``
    (events discarded by a null sink, so the timing isolates emission
    cost from disk). ``scripts/check_perf.py`` gates ``off`` against
    ``plain``: the disabled hooks must stay within a few percent, so
    instrumentation can be left in the hot path unconditionally.
    """
    from repro.experiments import TrainingParams, run_distgnn
    from repro.obs import api as obs_api
    from repro.obs.sink import EventSink

    class _NullSink(EventSink):
        def emit(self, event):
            pass

    graph = load_dataset("OR", "tiny", seed=0)
    params = TrainingParams()
    # One tiny cell takes ~2ms — below timer resolution — so each
    # timed sample runs it this many times back to back.
    inner = 50

    def cell():
        for _ in range(inner):
            run_distgnn(graph, "hdrf", 4, params, seed=0)

    run_distgnn(graph, "hdrf", 4, params, seed=0)  # warm partition cache

    hook_names = ("count", "gauge", "observe", "event")
    flag_names = ("enabled", "tracing")
    saved = {
        name: getattr(obs_api, name)
        for name in hook_names + flag_names
    }

    def _noop(*args, **kwargs):
        return None

    def enter_plain():
        for name in hook_names:
            setattr(obs_api, name, _noop)
        for name in flag_names:
            setattr(obs_api, name, lambda: False)

    def make_enter(level):
        def enter():
            obs_api.reset()
            obs_api.configure(
                level, sink=_NullSink() if level == "trace" else None
            )
        return enter

    def leave():
        for name, fn in saved.items():
            setattr(obs_api, name, fn)
        obs_api.disable()
        obs_api.reset()

    variants = [("plain", enter_plain)] + [
        (level, make_enter(level))
        for level in ("off", "metrics", "trace")
    ]
    # Interleave the variants round-robin: machine drift over the
    # benchmark's lifetime (frequency scaling, allocator growth) is of
    # the same order as the effect being measured, and sequential
    # blocks would fold that drift into the comparison.
    timings = {name: float("inf") for name, _ in variants}
    for _ in range(max(repeats, 3)):
        for name, enter in variants:
            enter()
            try:
                timings[name] = min(timings[name], _time(cell, 1))
            finally:
                leave()

    plain = timings["plain"]
    return {
        "graph": "OR",
        "scale": "tiny",
        "k": 4,
        "inner_repeats": inner,
        "plain_seconds": plain,
        "off_seconds": timings["off"],
        "metrics_seconds": timings["metrics"],
        "trace_seconds": timings["trace"],
        "off_overhead_fraction": (
            (timings["off"] - plain) / plain if plain > 0 else 0.0
        ),
        "metrics_overhead_fraction": (
            (timings["metrics"] - plain) / plain if plain > 0 else 0.0
        ),
    }


def bench_profiling_overhead(repeats: int) -> dict:
    """Cost of the profiling hooks on one fixed simulation cell.

    Mirrors :func:`bench_obs_overhead` for the ``profile_scope`` hooks
    compiled into the partitioner kernels, the engine epoch loops and
    the executor cells: ``plain`` replaces the hook entry point with a
    stub returning the shared null scope (the floor a hook-free build
    would reach), ``off`` is the shipped default (hook present, ambient
    capture disabled — one flag check per scope), and ``on`` runs with
    ambient capture enabled (informational: cProfile tracing is
    expected to be expensive; nobody gates it).
    ``scripts/check_perf.py`` gates ``off`` against ``plain`` with the
    same budget as the obs hooks — disabled profiling must stay within
    a few percent so the scopes can live on the hot path permanently.
    """
    from repro.experiments import TrainingParams, run_distgnn
    from repro.obs.profiling import capture as profiling

    graph = load_dataset("OR", "tiny", seed=0)
    params = TrainingParams()
    # Same sub-timer-resolution cell as bench_obs_overhead.
    inner = 50

    def cell():
        for _ in range(inner):
            run_distgnn(graph, "hdrf", 4, params, seed=0)

    run_distgnn(graph, "hdrf", 4, params, seed=0)  # warm partition cache

    saved_scope = profiling.profile_scope

    def _null_scope(name):
        return profiling._NULL_SCOPE

    def enter_plain():
        profiling.profile_scope = _null_scope

    def enter_off():
        profiling.disable()

    def enter_on():
        profiling.enable()

    def leave():
        profiling.profile_scope = saved_scope
        profiling.disable()  # also clears the ambient collector

    variants = (
        ("plain", enter_plain), ("off", enter_off), ("on", enter_on)
    )
    # Round-robin interleave, as in bench_obs_overhead: machine drift
    # is of the same order as the flag check being measured.
    timings = {name: float("inf") for name, _ in variants}
    for _ in range(max(repeats, 3)):
        for name, enter in variants:
            enter()
            try:
                timings[name] = min(timings[name], _time(cell, 1))
            finally:
                leave()

    plain = timings["plain"]
    return {
        "graph": "OR",
        "scale": "tiny",
        "k": 4,
        "inner_repeats": inner,
        "plain_seconds": plain,
        "off_seconds": timings["off"],
        "on_seconds": timings["on"],
        "off_overhead_fraction": (
            (timings["off"] - plain) / plain if plain > 0 else 0.0
        ),
        "on_overhead_fraction": (
            (timings["on"] - plain) / plain if plain > 0 else 0.0
        ),
    }


#: Functions kept per embedded kernel profile (top by cumtime).
PROFILE_TOP_FUNCTIONS = 40

_EXTENSION_FACTORIES = {
    "fennel": FennelPartitioner,
    "reldg": RestreamingLdgPartitioner,
}


def _trim_profile_dict(profile, top: int = PROFILE_TOP_FUNCTIONS) -> dict:
    """Serialize a profile trimmed for embedding in a history entry.

    Keeps the ``top`` hottest functions by cumtime and drops the
    collapsed stacks — enough for ``profile_diff`` and hotspot tables
    without bloating ``BENCH_partitioning.json``.
    """
    data = profile.to_dict()
    data["functions"] = [
        stat.to_dict()
        for stat in profile.top_functions(top, key="cumtime")
    ]
    data["stacks"] = {}
    data["meta"] = dict(data.get("meta") or {}, trimmed_top=top)
    return data


def _kernel_partitioner(name: str):
    if name in EDGE_PARTITIONER_NAMES:
        return make_edge_partitioner(name)
    if name in VERTEX_PARTITIONER_NAMES:
        return make_vertex_partitioner(name)
    return _EXTENSION_FACTORIES[name]()


def profile_kernel(kernel: str, graphs: dict = None):
    """A fresh, untrimmed :class:`Profile` of one ``GRAPH/name`` kernel.

    ``scripts/check_perf.py`` calls this when a kernel trips the gate,
    then diffs the result against the baseline's embedded profile to
    name the regressed functions.
    """
    from repro.obs.profiling import capture as profiling

    key, name = kernel.split("/", 1)
    graph = (graphs or {}).get(key)
    if graph is None:
        graph = load_dataset(key, "small", seed=0)
    graph.undirected_edges()
    graph.symmetric_csr()
    graph.degrees()
    with profiling.capture(f"kernel.{kernel}") as cap:
        _kernel_partitioner(name).partition(graph, BENCH_K, seed=0)
    return cap.profile


def bench_kernel_profiles(
    graphs: dict, top: int = PROFILE_TOP_FUNCTIONS
) -> dict:
    """One trimmed cProfile artifact per kernel (``--profile``).

    Keys match the ``kernels`` timing section (``GRAPH/name``) so the
    perf gate can look up the profile of whichever kernel regressed.
    Captured separately from the timing runs — cProfile tracing slows
    the kernels severalfold, so profiled timings would be useless.
    """
    from repro.obs.profiling import capture as profiling

    results: dict = {}
    for key, graph in graphs.items():
        graph.undirected_edges()
        graph.symmetric_csr()
        graph.degrees()
        names = (
            list(EDGE_PARTITIONER_NAMES)
            + list(VERTEX_PARTITIONER_NAMES)
            + list(_EXTENSION_FACTORIES)
        )
        for name in names:
            with profiling.capture(f"kernel.{key}/{name}") as cap:
                _kernel_partitioner(name).partition(
                    graph, BENCH_K, seed=0
                )
            results[f"{key}/{name}"] = _trim_profile_dict(
                cap.profile, top
            )
    return results


def bench_comm_codecs(repeats: int) -> dict:
    """Overhead of comm-codec bookkeeping on one fixed simulation cell.

    Times ``run_distgnn`` on the tiny OR cell with the null codec and
    once per real codec (fp16 / int8 / topk). The codecs are *modelled*
    — ratio arithmetic over byte counts, never an actual quantisation
    pass — so enabling one may only add bookkeeping;
    ``scripts/check_perf.py`` gates each codec's overhead fraction over
    the null-codec run.
    """
    from repro.comm import CommConfig
    from repro.experiments import TrainingParams, run_distgnn

    graph = load_dataset("OR", "tiny", seed=0)
    params = TrainingParams()
    # Same sub-timer-resolution cell as bench_obs_overhead.
    inner = 50

    def make_cell(comm):
        def cell():
            for _ in range(inner):
                run_distgnn(
                    graph, "hdrf", 4, params, seed=0, comm_config=comm
                )

        return cell

    run_distgnn(graph, "hdrf", 4, params, seed=0)  # warm partition cache

    variants = [("none", make_cell(None))] + [
        (name, make_cell(CommConfig(compression=name)))
        for name in ("fp16", "int8", "topk")
    ]
    # Round-robin interleave, as in bench_obs_overhead: machine drift
    # is of the same order as the bookkeeping being measured.
    timings = {name: float("inf") for name, _ in variants}
    for _ in range(max(repeats, 3)):
        for name, cell in variants:
            timings[name] = min(timings[name], _time(cell, 1))

    base = timings["none"]
    return {
        "graph": "OR",
        "scale": "tiny",
        "k": 4,
        "inner_repeats": inner,
        "seconds": timings,
        "overhead_fractions": {
            name: (seconds - base) / base if base > 0 else 0.0
            for name, seconds in timings.items()
            if name != "none"
        },
    }


def _spool_sweep_stream(num_edges: int, directory: str) -> float:
    """Spool a ``num_edges``-arc RMAT stream; returns elapsed seconds."""
    start = time.perf_counter()
    spool_edges(
        rmat_edge_chunks(
            SCALE_SWEEP_SCALE, num_edges, seed=SCALE_SWEEP_SEED
        ),
        directory,
        chunk_size=SCALE_SWEEP_CHUNK,
        num_vertices=1 << SCALE_SWEEP_SCALE,
        directed=True,
    )
    return time.perf_counter() - start


def _drive_stream(partitioner, reader: EdgeChunkReader) -> None:
    """Consume the streaming path the way the shuffle does.

    Edge partitioners are driven through ``stream_assignments`` with
    every block discarded — the bounded-memory use-case, where the
    assignment goes straight to per-partition buckets instead of being
    materialised. Vertex partitioners return an O(num_vertices)
    assignment, constant across the sweep's decades.
    """
    if isinstance(partitioner, EdgePartitioner):
        for _edges, _assignment in partitioner.stream_assignments(
            reader, BENCH_K, seed=0
        ):
            pass
    else:
        partitioner.partition_stream(reader, BENCH_K, seed=0)


def _run_pipeline(num_edges: int, directory: str) -> None:
    """End-to-end out-of-core pass: generate → spool → HDRF → shuffle."""
    spool_dir = os.path.join(directory, "spool")
    _spool_sweep_stream(num_edges, spool_dir)
    shuffle_stream(
        EdgeChunkReader(spool_dir),
        HdrfPartitioner(),
        BENCH_K,
        os.path.join(directory, "buckets"),
        seed=0,
    )


def bench_scale_sweep(max_edges: int, algos=None) -> dict:
    """Out-of-core throughput and peak memory per edge-count decade.

    Each decade spools a fresh RMAT multigraph stream (fixed vertex
    count ``2**SCALE_SWEEP_SCALE``), then each algorithm gets two
    passes:
    an untracked timing pass (edges/sec) and a ``PeakMemoryTracker``
    pass — tracemalloc slows allocation, so the two must not share a
    run. A ``pipeline`` entry measures the full generate → spool →
    partition → shuffle chain for HDRF at every decade.
    """
    names = list(algos) if algos is not None else list(_SWEEP_FACTORIES)
    series = []
    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as tmp:
        for decade in SCALE_SWEEP_DECADES:
            if decade > max_edges:
                break
            spool_dir = os.path.join(tmp, f"spool-{decade}")
            spool_seconds = _spool_sweep_stream(decade, spool_dir)
            reader = EdgeChunkReader(spool_dir)
            entry = {
                "edges": decade,
                "spool_seconds": spool_seconds,
                "algorithms": {},
            }
            for name in names:
                if decade > SCALE_SWEEP_CAPS[name]:
                    continue
                factory = _SWEEP_FACTORIES[name]
                seconds = _time(
                    lambda: _drive_stream(factory(), reader), 1
                )
                with PeakMemoryTracker() as tracker:
                    _drive_stream(factory(), reader)
                entry["algorithms"][name] = {
                    "seconds": seconds,
                    "edges_per_sec": decade / seconds,
                    "memory": tracker.as_dict(),
                }
            pipe_dir = os.path.join(tmp, f"pipe-{decade}")
            seconds = _time(lambda: _run_pipeline(decade, pipe_dir), 1)
            shutil.rmtree(pipe_dir)
            with PeakMemoryTracker() as tracker:
                _run_pipeline(decade, pipe_dir)
            shutil.rmtree(pipe_dir)
            entry["pipeline"] = {
                "seconds": seconds,
                "edges_per_sec": decade / seconds,
                "memory": tracker.as_dict(),
            }
            series.append(entry)
            # Bound disk usage: the 10^7 spool alone is ~160 MB.
            shutil.rmtree(spool_dir)
    return {
        "rmat_scale": SCALE_SWEEP_SCALE,
        "k": BENCH_K,
        "store_chunk_size": SCALE_SWEEP_CHUNK,
        "seed": SCALE_SWEEP_SEED,
        "algorithms": names,
        "series": series,
    }


def run_bench(
    repeats: int,
    scale_sweep_max: int = 10**6,
    scale_sweep_algos=None,
    profile: bool = False,
) -> dict:
    graphs = {
        key: load_dataset(key, "small", seed=0) for key in DATASET_KEYS
    }
    report = {
        "schema": 1,
        "k": BENCH_K,
        "scale": "small",
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "kernels": bench_partitioners(graphs, repeats),
        "hdrf_vs_reference": bench_hdrf_reference(
            graphs[LARGEST_GRAPH], repeats
        ),
        "sampling": bench_sampling(graphs[LARGEST_GRAPH], repeats),
        "obs_overhead": bench_obs_overhead(repeats),
        "profiling_overhead": bench_profiling_overhead(repeats),
        "comm_codecs": bench_comm_codecs(repeats),
        "scale_sweep": bench_scale_sweep(
            scale_sweep_max, scale_sweep_algos
        ),
    }
    if profile:
        report["profiles"] = bench_kernel_profiles(graphs)
    return report


def load_series(path: str) -> dict:
    """Load the benchmark history series at ``path`` (schema 2).

    A missing file yields an empty series; a legacy schema-1 flat
    report is wrapped as the retained baseline with an empty history.
    """
    if not os.path.exists(path):
        return {"schema": 2, "baseline": None, "history": []}
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") == 2 and "history" in doc:
        return doc
    return {"schema": 2, "baseline": doc, "history": []}


def latest_report(series: dict) -> dict:
    """The most recent run in a series (legacy flat reports pass
    through unchanged) — what the perf gate compares against."""
    if series.get("schema") == 2 and "history" in series:
        if series["history"]:
            return series["history"][-1]
        return series["baseline"] or {}
    return series


def append_run(
    series: dict,
    report: dict,
    timestamp: str,
    set_baseline: bool = False,
    keep: int = 50,
) -> dict:
    """Append ``report`` to the history (and maybe the baseline)."""
    entry = dict(report)
    entry["timestamp"] = timestamp
    series["history"] = (series.get("history") or [])[-(keep - 1):]
    series["history"].append(entry)
    if set_baseline or series.get("baseline") is None:
        series["baseline"] = report
    return series


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_partitioning.json",
        ),
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true", help="single repeat per kernel"
    )
    parser.add_argument(
        "--set-baseline", action="store_true",
        help="promote this run to the retained baseline",
    )
    parser.add_argument(
        "--keep", type=int, default=50,
        help="history entries to retain (oldest dropped first)",
    )
    parser.add_argument(
        "--scale-sweep-max", type=int, default=10**6,
        help="largest out-of-core sweep decade (edges); the committed "
        "baseline run should use 10000000",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="embed a trimmed per-kernel cProfile hotspot table in "
        "the history entry (check_perf.py diffs it on a gate failure)",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.quick else args.repeats
    sweep_algos = SCALE_SWEEP_QUICK_ALGOS if args.quick else None

    report = run_bench(
        repeats,
        scale_sweep_max=args.scale_sweep_max,
        scale_sweep_algos=sweep_algos,
        profile=args.profile,
    )
    timestamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    series = append_run(
        load_series(args.out),
        report,
        timestamp,
        set_baseline=args.set_baseline,
        keep=args.keep,
    )
    with open(args.out, "w") as fh:
        json.dump(series, fh, indent=2, sort_keys=True)
        fh.write("\n")

    hdrf = report["hdrf_vs_reference"]
    print(
        f"wrote {args.out} ({len(series['history'])} history "
        f"entries, latest {timestamp})"
    )
    print(
        f"HDRF on {hdrf['graph']} (k={hdrf['k']}): "
        f"{hdrf['reference_seconds']:.3f}s -> "
        f"{hdrf['vectorised_seconds']:.3f}s "
        f"({hdrf['speedup']:.1f}x, identical={hdrf['identical']})"
    )
    overhead = report["obs_overhead"]
    print(
        f"obs hooks on {overhead['graph']}/{overhead['scale']} "
        f"(k={overhead['k']}): plain {overhead['plain_seconds']:.4f}s, "
        f"off +{overhead['off_overhead_fraction'] * 100:.1f}%, "
        f"metrics +{overhead['metrics_overhead_fraction'] * 100:.1f}%"
    )
    prof = report["profiling_overhead"]
    print(
        f"profiling hooks on {prof['graph']}/{prof['scale']} "
        f"(k={prof['k']}): plain {prof['plain_seconds']:.4f}s, "
        f"off +{prof['off_overhead_fraction'] * 100:.1f}%, "
        f"on +{prof['on_overhead_fraction'] * 100:.0f}%"
    )
    if "profiles" in report:
        print(
            f"kernel profiles: {len(report['profiles'])} embedded "
            f"(top {PROFILE_TOP_FUNCTIONS} functions each)"
        )
    slowest = sorted(
        report["kernels"].items(),
        key=lambda item: -item[1]["seconds"],
    )[:5]
    print("slowest kernels:")
    for name, entry in slowest:
        print(f"  {name}: {entry['seconds']:.3f}s")
    sweep = report["scale_sweep"]
    print(
        f"out-of-core sweep (RMAT scale {sweep['rmat_scale']}, "
        f"k={sweep['k']}, chunk {sweep['store_chunk_size']} rows):"
    )
    for entry in sweep["series"]:
        pipe = entry["pipeline"]
        traced = pipe["memory"]["traced_peak_bytes"] / 2**20
        print(
            f"  {entry['edges']:>9,} edges: pipeline "
            f"{pipe['edges_per_sec']:>11,.0f} edges/s, "
            f"peak {traced:.1f} MiB traced"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
