"""Microbenchmark suite for the partitioning and sampling kernels.

Times every registered partitioner (plus the streaming extensions) on
the standard small-scale synthetic graphs at ``k=32``, the HDRF
vectorised kernel against its retained scalar reference on the largest
graph (verifying bit-identical assignments), the neighbourhood
sampling kernel, and the overhead of the observability hooks on a
fixed simulation cell (plain / off / metrics / trace).

``BENCH_partitioning.json`` at the repo root is a *history series*
(schema 2): a retained ``baseline`` report plus a ``history`` list to
which every run appends a timestamped entry, so the perf trajectory is
tracked over time rather than overwritten. ``scripts/check_perf.py``
gates against the latest history entry (falling back to the baseline).
A legacy schema-1 flat report is migrated in place: it becomes the
baseline and the fresh run starts the history.

Usage::

    python scripts/bench_perf.py [--out FILE] [--repeats N] [--quick]
        [--set-baseline] [--keep N]

``--quick`` runs a single repeat per kernel (used by the perf gate);
the committed baseline should be produced with the default repeats.
``--set-baseline`` promotes this run to the retained baseline; ``--keep``
bounds the history length (oldest entries are dropped).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from repro.gnn.sampling import default_fanouts, sample_blocks
from repro.graph import DATASET_KEYS, load_dataset
from repro.partitioning import (
    EDGE_PARTITIONER_NAMES,
    VERTEX_PARTITIONER_NAMES,
    HdrfPartitioner,
    make_edge_partitioner,
    make_vertex_partitioner,
)
from repro.partitioning.extensions.fennel import FennelPartitioner
from repro.partitioning.extensions.reldg import RestreamingLdgPartitioner

#: Machine count for all partitioner timings (the paper's largest).
BENCH_K = 32
#: The largest standard synthetic graph (by edges) — HDRF's 5x
#: speedup acceptance bar is measured here.
LARGEST_GRAPH = "HW"


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_partitioners(graphs: dict, repeats: int) -> dict:
    """Time every partitioner on every graph at ``k=BENCH_K``."""
    results: dict = {}
    extension_factories = {
        "fennel": FennelPartitioner,
        "reldg": RestreamingLdgPartitioner,
    }
    for key, graph in graphs.items():
        # Warm the cached adjacency views so timings isolate the kernels.
        graph.undirected_edges()
        graph.symmetric_csr()
        graph.degrees()
        for name in EDGE_PARTITIONER_NAMES:
            seconds = _time(
                lambda: make_edge_partitioner(name).partition(
                    graph, BENCH_K, seed=0
                ),
                repeats,
            )
            results[f"{key}/{name}"] = {"seconds": seconds}
        for name in VERTEX_PARTITIONER_NAMES:
            seconds = _time(
                lambda: make_vertex_partitioner(name).partition(
                    graph, BENCH_K, seed=0
                ),
                repeats,
            )
            results[f"{key}/{name}"] = {"seconds": seconds}
        for name, factory in extension_factories.items():
            seconds = _time(
                lambda: factory().partition(graph, BENCH_K, seed=0),
                repeats,
            )
            results[f"{key}/{name}"] = {"seconds": seconds}
    return results


def bench_hdrf_reference(graph, repeats: int) -> dict:
    """Vectorised vs scalar-reference HDRF on the largest graph."""
    graph.undirected_edges()
    reference = HdrfPartitioner(vectorised=False).partition(
        graph, BENCH_K, seed=0
    )
    vectorised = HdrfPartitioner().partition(graph, BENCH_K, seed=0)
    identical = bool(
        np.array_equal(reference.assignment, vectorised.assignment)
    )
    ref_seconds = _time(
        lambda: HdrfPartitioner(vectorised=False).partition(
            graph, BENCH_K, seed=0
        ),
        repeats,
    )
    vec_seconds = _time(
        lambda: HdrfPartitioner().partition(graph, BENCH_K, seed=0),
        repeats,
    )
    return {
        "graph": graph.name,
        "k": BENCH_K,
        "reference_seconds": ref_seconds,
        "vectorised_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds,
        "identical": identical,
    }


def bench_sampling(graph, repeats: int) -> dict:
    """Time one 3-layer fan-out sampling pass over a large seed batch."""
    graph.symmetric_csr()
    rng = np.random.default_rng(0)
    seeds = rng.choice(graph.num_vertices, size=1024, replace=False)
    fanouts = default_fanouts(3)

    def run():
        sample_blocks(graph, seeds, fanouts, np.random.default_rng(1))

    return {
        "graph": graph.name,
        "batch": int(seeds.size),
        "fanouts": list(fanouts),
        "seconds": _time(run, repeats),
    }


def bench_obs_overhead(repeats: int) -> dict:
    """Cost of the observability hooks on one fixed simulation cell.

    Times ``run_distgnn`` on the tiny OR graph at four instrumentation
    settings: ``plain`` (the hook entry points replaced with no-ops —
    the floor a hook-free build would reach), ``off`` (the shipped
    default: hooks present but disabled), ``metrics`` and ``trace``
    (events discarded by a null sink, so the timing isolates emission
    cost from disk). ``scripts/check_perf.py`` gates ``off`` against
    ``plain``: the disabled hooks must stay within a few percent, so
    instrumentation can be left in the hot path unconditionally.
    """
    from repro.experiments import TrainingParams, run_distgnn
    from repro.obs import api as obs_api
    from repro.obs.sink import EventSink

    class _NullSink(EventSink):
        def emit(self, event):
            pass

    graph = load_dataset("OR", "tiny", seed=0)
    params = TrainingParams()
    # One tiny cell takes ~2ms — below timer resolution — so each
    # timed sample runs it this many times back to back.
    inner = 50

    def cell():
        for _ in range(inner):
            run_distgnn(graph, "hdrf", 4, params, seed=0)

    run_distgnn(graph, "hdrf", 4, params, seed=0)  # warm partition cache

    hook_names = ("count", "gauge", "observe", "event")
    flag_names = ("enabled", "tracing")
    saved = {
        name: getattr(obs_api, name)
        for name in hook_names + flag_names
    }

    def _noop(*args, **kwargs):
        return None

    def enter_plain():
        for name in hook_names:
            setattr(obs_api, name, _noop)
        for name in flag_names:
            setattr(obs_api, name, lambda: False)

    def make_enter(level):
        def enter():
            obs_api.reset()
            obs_api.configure(
                level, sink=_NullSink() if level == "trace" else None
            )
        return enter

    def leave():
        for name, fn in saved.items():
            setattr(obs_api, name, fn)
        obs_api.disable()
        obs_api.reset()

    variants = [("plain", enter_plain)] + [
        (level, make_enter(level))
        for level in ("off", "metrics", "trace")
    ]
    # Interleave the variants round-robin: machine drift over the
    # benchmark's lifetime (frequency scaling, allocator growth) is of
    # the same order as the effect being measured, and sequential
    # blocks would fold that drift into the comparison.
    timings = {name: float("inf") for name, _ in variants}
    for _ in range(max(repeats, 3)):
        for name, enter in variants:
            enter()
            try:
                timings[name] = min(timings[name], _time(cell, 1))
            finally:
                leave()

    plain = timings["plain"]
    return {
        "graph": "OR",
        "scale": "tiny",
        "k": 4,
        "inner_repeats": inner,
        "plain_seconds": plain,
        "off_seconds": timings["off"],
        "metrics_seconds": timings["metrics"],
        "trace_seconds": timings["trace"],
        "off_overhead_fraction": (
            (timings["off"] - plain) / plain if plain > 0 else 0.0
        ),
        "metrics_overhead_fraction": (
            (timings["metrics"] - plain) / plain if plain > 0 else 0.0
        ),
    }


def run_bench(repeats: int) -> dict:
    graphs = {
        key: load_dataset(key, "small", seed=0) for key in DATASET_KEYS
    }
    report = {
        "schema": 1,
        "k": BENCH_K,
        "scale": "small",
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernels": bench_partitioners(graphs, repeats),
        "hdrf_vs_reference": bench_hdrf_reference(
            graphs[LARGEST_GRAPH], repeats
        ),
        "sampling": bench_sampling(graphs[LARGEST_GRAPH], repeats),
        "obs_overhead": bench_obs_overhead(repeats),
    }
    return report


def load_series(path: str) -> dict:
    """Load the benchmark history series at ``path`` (schema 2).

    A missing file yields an empty series; a legacy schema-1 flat
    report is wrapped as the retained baseline with an empty history.
    """
    if not os.path.exists(path):
        return {"schema": 2, "baseline": None, "history": []}
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") == 2 and "history" in doc:
        return doc
    return {"schema": 2, "baseline": doc, "history": []}


def latest_report(series: dict) -> dict:
    """The most recent run in a series (legacy flat reports pass
    through unchanged) — what the perf gate compares against."""
    if series.get("schema") == 2 and "history" in series:
        if series["history"]:
            return series["history"][-1]
        return series["baseline"] or {}
    return series


def append_run(
    series: dict,
    report: dict,
    timestamp: str,
    set_baseline: bool = False,
    keep: int = 50,
) -> dict:
    """Append ``report`` to the history (and maybe the baseline)."""
    entry = dict(report)
    entry["timestamp"] = timestamp
    series["history"] = (series.get("history") or [])[-(keep - 1):]
    series["history"].append(entry)
    if set_baseline or series.get("baseline") is None:
        series["baseline"] = report
    return series


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_partitioning.json",
        ),
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true", help="single repeat per kernel"
    )
    parser.add_argument(
        "--set-baseline", action="store_true",
        help="promote this run to the retained baseline",
    )
    parser.add_argument(
        "--keep", type=int, default=50,
        help="history entries to retain (oldest dropped first)",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.quick else args.repeats

    report = run_bench(repeats)
    timestamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    series = append_run(
        load_series(args.out),
        report,
        timestamp,
        set_baseline=args.set_baseline,
        keep=args.keep,
    )
    with open(args.out, "w") as fh:
        json.dump(series, fh, indent=2, sort_keys=True)
        fh.write("\n")

    hdrf = report["hdrf_vs_reference"]
    print(
        f"wrote {args.out} ({len(series['history'])} history "
        f"entries, latest {timestamp})"
    )
    print(
        f"HDRF on {hdrf['graph']} (k={hdrf['k']}): "
        f"{hdrf['reference_seconds']:.3f}s -> "
        f"{hdrf['vectorised_seconds']:.3f}s "
        f"({hdrf['speedup']:.1f}x, identical={hdrf['identical']})"
    )
    overhead = report["obs_overhead"]
    print(
        f"obs hooks on {overhead['graph']}/{overhead['scale']} "
        f"(k={overhead['k']}): plain {overhead['plain_seconds']:.4f}s, "
        f"off +{overhead['off_overhead_fraction'] * 100:.1f}%, "
        f"metrics +{overhead['metrics_overhead_fraction'] * 100:.1f}%"
    )
    slowest = sorted(
        report["kernels"].items(),
        key=lambda item: -item[1]["seconds"],
    )[:5]
    print("slowest kernels:")
    for name, entry in slowest:
        print(f"  {name}: {entry['seconds']:.3f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
