"""Microbenchmark suite for the partitioning and sampling kernels.

Times every registered partitioner (plus the streaming extensions) on
the standard small-scale synthetic graphs at ``k=32``, the HDRF
vectorised kernel against its retained scalar reference on the largest
graph (verifying bit-identical assignments), and the neighbourhood
sampling kernel. Results are written to ``BENCH_partitioning.json`` at
the repo root; the committed copy is the perf baseline that
``scripts/check_perf.py`` gates future changes against.

Usage::

    python scripts/bench_perf.py [--out FILE] [--repeats N] [--quick]

``--quick`` runs a single repeat per kernel (used by the perf gate);
the committed baseline should be produced with the default repeats.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from repro.gnn.sampling import default_fanouts, sample_blocks
from repro.graph import DATASET_KEYS, load_dataset
from repro.partitioning import (
    EDGE_PARTITIONER_NAMES,
    VERTEX_PARTITIONER_NAMES,
    HdrfPartitioner,
    make_edge_partitioner,
    make_vertex_partitioner,
)
from repro.partitioning.extensions.fennel import FennelPartitioner
from repro.partitioning.extensions.reldg import RestreamingLdgPartitioner

#: Machine count for all partitioner timings (the paper's largest).
BENCH_K = 32
#: The largest standard synthetic graph (by edges) — HDRF's 5x
#: speedup acceptance bar is measured here.
LARGEST_GRAPH = "HW"


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_partitioners(graphs: dict, repeats: int) -> dict:
    """Time every partitioner on every graph at ``k=BENCH_K``."""
    results: dict = {}
    extension_factories = {
        "fennel": FennelPartitioner,
        "reldg": RestreamingLdgPartitioner,
    }
    for key, graph in graphs.items():
        # Warm the cached adjacency views so timings isolate the kernels.
        graph.undirected_edges()
        graph.symmetric_csr()
        graph.degrees()
        for name in EDGE_PARTITIONER_NAMES:
            seconds = _time(
                lambda: make_edge_partitioner(name).partition(
                    graph, BENCH_K, seed=0
                ),
                repeats,
            )
            results[f"{key}/{name}"] = {"seconds": seconds}
        for name in VERTEX_PARTITIONER_NAMES:
            seconds = _time(
                lambda: make_vertex_partitioner(name).partition(
                    graph, BENCH_K, seed=0
                ),
                repeats,
            )
            results[f"{key}/{name}"] = {"seconds": seconds}
        for name, factory in extension_factories.items():
            seconds = _time(
                lambda: factory().partition(graph, BENCH_K, seed=0),
                repeats,
            )
            results[f"{key}/{name}"] = {"seconds": seconds}
    return results


def bench_hdrf_reference(graph, repeats: int) -> dict:
    """Vectorised vs scalar-reference HDRF on the largest graph."""
    graph.undirected_edges()
    reference = HdrfPartitioner(vectorised=False).partition(
        graph, BENCH_K, seed=0
    )
    vectorised = HdrfPartitioner().partition(graph, BENCH_K, seed=0)
    identical = bool(
        np.array_equal(reference.assignment, vectorised.assignment)
    )
    ref_seconds = _time(
        lambda: HdrfPartitioner(vectorised=False).partition(
            graph, BENCH_K, seed=0
        ),
        repeats,
    )
    vec_seconds = _time(
        lambda: HdrfPartitioner().partition(graph, BENCH_K, seed=0),
        repeats,
    )
    return {
        "graph": graph.name,
        "k": BENCH_K,
        "reference_seconds": ref_seconds,
        "vectorised_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds,
        "identical": identical,
    }


def bench_sampling(graph, repeats: int) -> dict:
    """Time one 3-layer fan-out sampling pass over a large seed batch."""
    graph.symmetric_csr()
    rng = np.random.default_rng(0)
    seeds = rng.choice(graph.num_vertices, size=1024, replace=False)
    fanouts = default_fanouts(3)

    def run():
        sample_blocks(graph, seeds, fanouts, np.random.default_rng(1))

    return {
        "graph": graph.name,
        "batch": int(seeds.size),
        "fanouts": list(fanouts),
        "seconds": _time(run, repeats),
    }


def run_bench(repeats: int) -> dict:
    graphs = {
        key: load_dataset(key, "small", seed=0) for key in DATASET_KEYS
    }
    report = {
        "schema": 1,
        "k": BENCH_K,
        "scale": "small",
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernels": bench_partitioners(graphs, repeats),
        "hdrf_vs_reference": bench_hdrf_reference(
            graphs[LARGEST_GRAPH], repeats
        ),
        "sampling": bench_sampling(graphs[LARGEST_GRAPH], repeats),
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_partitioning.json",
        ),
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true", help="single repeat per kernel"
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.quick else args.repeats

    report = run_bench(repeats)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    hdrf = report["hdrf_vs_reference"]
    print(f"wrote {args.out}")
    print(
        f"HDRF on {hdrf['graph']} (k={hdrf['k']}): "
        f"{hdrf['reference_seconds']:.3f}s -> "
        f"{hdrf['vectorised_seconds']:.3f}s "
        f"({hdrf['speedup']:.1f}x, identical={hdrf['identical']})"
    )
    slowest = sorted(
        report["kernels"].items(),
        key=lambda item: -item[1]["seconds"],
    )[:5]
    print("slowest kernels:")
    for name, entry in slowest:
        print(f"  {name}: {entry['seconds']:.3f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
