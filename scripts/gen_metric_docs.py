"""Render ``docs/observability.md`` from the metric catalog.

The metrics reference is generated from
:data:`repro.obs.catalog.CATALOG` — the same declarations the registry
enforces at runtime — so the documentation cannot drift from the code.
CI runs the ``--check`` mode to prove it.

Usage::

    PYTHONPATH=src python scripts/gen_metric_docs.py           # rewrite
    PYTHONPATH=src python scripts/gen_metric_docs.py --check   # CI gate

``--check`` exits non-zero (and prints a diff hint) when the committed
file no longer matches the rendered catalog.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.obs import render_metric_docs

DEFAULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "docs",
    "observability.md",
)


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=DEFAULT_PATH,
                        help="target markdown file")
    parser.add_argument("--check", action="store_true",
                        help="verify the file matches instead of writing")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    rendered = render_metric_docs()
    if args.check:
        try:
            with open(args.out, "r", encoding="utf-8") as handle:
                committed = handle.read()
        except FileNotFoundError:
            print(f"{args.out} is missing; regenerate it with "
                  f"`PYTHONPATH=src python scripts/gen_metric_docs.py`",
                  file=sys.stderr)
            return 1
        if committed != rendered:
            print(f"{args.out} is stale: the metric catalog changed. "
                  f"Regenerate it with "
                  f"`PYTHONPATH=src python scripts/gen_metric_docs.py` "
                  f"and commit the result.", file=sys.stderr)
            return 1
        print(f"{args.out} matches the catalog")
        return 0
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(rendered)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
