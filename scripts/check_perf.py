"""Perf regression gate.

Runs a fresh (quick) ``bench_perf`` pass and compares every kernel
timing against the *latest entry* of the committed
``BENCH_partitioning.json`` history series (falling back to the
retained ``baseline`` report when the history is empty; legacy flat
schema-1 files still work). Fails (exit code 1) when any kernel is
more than ``--threshold`` times slower — the default 2x tolerates
machine-to-machine variance while catching real regressions. The
disabled observability hooks, the disabled profiling hooks and the
comm-codec bookkeeping are gated against tighter fractional budgets
on the fresh run.

When a kernel trips the gate, the failure is triaged at function
level: a fresh cProfile capture of the regressed kernel is diffed
against the baseline's embedded ``profiles`` section (written by
``bench_perf.py --profile``) and the ranked hotspot diff is printed —
or a fresh hotspot table when the baseline carries no profiles.
Gated series with nothing to compare against (a baseline predating a
section, an empty fresh section) are printed as *skipped*, so a pass
can never silently mean "nothing was gated"; a baseline with no
kernel timings at all fails outright.

The out-of-core scale sweep is gated for *sublinearity*: for every
algorithm whose sweep series spans at least a 100x edge-count ratio,
the traced peak memory of the largest decade must stay within
``sqrt(edge ratio)`` of the smallest decade's (with a 1 MiB floor so
timer-scale allocations don't trip it). A pipeline whose peak memory
grew linearly with the stream would blow this bound by 10x at a 100x
span. The check runs against both the fresh sweep (fast algorithms,
up to 10^6 edges) and the committed latest report, whose full-sweep
series carries the 10^7 decade.

Opt-in from pytest via the ``perf`` marker::

    PYTHONPATH=src python -m pytest -m perf tests/test_perf_gate.py

Usage::

    python scripts/check_perf.py [--baseline FILE] [--threshold 2.0]
"""

from __future__ import annotations

import argparse
import math
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_perf import (  # noqa: E402
    SCALE_SWEEP_QUICK_ALGOS,
    latest_report,
    load_series,
    run_bench,
)


#: Kernels faster than this are dominated by call overhead and timer
#: noise; the ratio test is applied against at least this much time.
MIN_GATED_SECONDS = 0.01

#: Disabled-hook budget: running with ``--obs-level off`` (the default)
#: may cost at most this fraction over a hook-free build.
OBS_OFF_MAX_OVERHEAD = 0.03
#: ...unless the absolute delta is below this floor, where the timer
#: cannot resolve the difference anyway.
OBS_OFF_ABS_FLOOR_SECONDS = 0.01

#: Disabled ``profile_scope`` budget: the profiling hooks share the
#: obs hooks' off-path bar — at most max(3%, 10ms) over a hook-free
#: build, so they can live on the hot paths unconditionally.
PROFILING_OFF_MAX_OVERHEAD = OBS_OFF_MAX_OVERHEAD
PROFILING_OFF_ABS_FLOOR_SECONDS = OBS_OFF_ABS_FLOOR_SECONDS

#: Kernel hotspot diffs printed per gate failure (the rest are listed
#: by name only — a broad regression has one cause, not thirty).
MAX_HOTSPOT_DIFFS = 3

#: Comm-codec budget: a codec is modelled (ratio arithmetic, never a
#: real quantisation pass), so enabling one may add at most this
#: fraction of bookkeeping over the null-codec cell...
COMM_CODEC_MAX_OVERHEAD = 0.25
#: ...with the same timer-resolution escape hatch as the obs gate.
COMM_CODEC_ABS_FLOOR_SECONDS = 0.01

#: The out-of-core sweep is only gate-worthy across at least this
#: edge-count ratio between its smallest and largest decades.
SWEEP_MIN_SPAN = 100
#: Traced peaks below this are allocator noise; the sublinearity
#: ratio is taken against at least this much memory.
SWEEP_PEAK_FLOOR_BYTES = 1 << 20


def check_scale_sweep(report: dict, label: str) -> list:
    """Sublinearity check: regressions for the ``scale_sweep`` section.

    For each algorithm (and the end-to-end ``pipeline`` entry)
    spanning at least :data:`SWEEP_MIN_SPAN` in edges, the largest
    decade's traced peak must not exceed ``sqrt(edge ratio)`` times
    the smallest decade's. Linear growth fails by a wide margin;
    chunk-bounded growth passes by one.
    """
    regressions = []
    sweep = report.get("scale_sweep")
    if not sweep or not sweep.get("series"):
        return [f"{label}: no scale_sweep series to gate"]
    peaks: dict = {}
    for entry in sweep["series"]:
        records = dict(entry.get("algorithms", {}))
        if entry.get("pipeline"):
            records["pipeline"] = entry["pipeline"]
        for name, record in records.items():
            peaks.setdefault(name, []).append(
                (entry["edges"], record["memory"]["traced_peak_bytes"])
            )
    gated = 0
    for name, points in sorted(peaks.items()):
        points.sort()
        lo_edges, lo_peak = points[0]
        hi_edges, hi_peak = points[-1]
        if hi_edges < SWEEP_MIN_SPAN * lo_edges:
            continue
        gated += 1
        allowed = math.sqrt(hi_edges / lo_edges) * max(
            lo_peak, SWEEP_PEAK_FLOOR_BYTES
        )
        if hi_peak > allowed:
            regressions.append(
                f"{label}/{name}: peak memory not sublinear in edges: "
                f"{lo_edges:,} edges -> {lo_peak / 2**20:.1f} MiB but "
                f"{hi_edges:,} edges -> {hi_peak / 2**20:.1f} MiB "
                f"(allowed {allowed / 2**20:.1f} MiB)"
            )
    if not gated:
        regressions.append(
            f"{label}: scale sweep spans less than "
            f"{SWEEP_MIN_SPAN}x in edges; nothing to gate"
        )
    return regressions


def skipped_sections(baseline: dict, fresh: dict) -> list:
    """Gated series with no data to gate against — never silent.

    A baseline that predates a gated section (or an empty fresh
    section) means that series simply is not being gated this run;
    the gate prints these so a "pass" can't silently mean "nothing
    was compared".
    """
    skipped = []
    if not baseline.get("kernels"):
        skipped.append("kernels: baseline has no kernel timings")
    if not baseline.get("sampling"):
        skipped.append("sampling: baseline has no sampling benchmark")
    for section in (
        "obs_overhead", "profiling_overhead", "comm_codecs"
    ):
        if not fresh.get(section):
            skipped.append(f"{section}: fresh run produced no data")
    return skipped


def compare(
    baseline: dict,
    fresh: dict,
    threshold: float,
    floor: float = MIN_GATED_SECONDS,
    regressed_kernels: list = None,
) -> list:
    """Return a list of human-readable regression descriptions.

    ``regressed_kernels``, when given, collects the ``GRAPH/name``
    keys of kernels that tripped the ratio gate, so the caller can
    print function-level hotspot diffs for them.
    """
    regressions = []

    def check(name: str, old: float, new: float) -> bool:
        if new > threshold * max(old, floor):
            regressions.append(
                f"{name}: {old:.4f}s -> {new:.4f}s "
                f"({new / old:.1f}x > {threshold:.1f}x threshold)"
            )
            return True
        return False

    for name, entry in baseline.get("kernels", {}).items():
        fresh_entry = fresh["kernels"].get(name)
        if fresh_entry is None:
            regressions.append(f"{name}: kernel missing from fresh run")
            continue
        if check(name, entry["seconds"], fresh_entry["seconds"]):
            if regressed_kernels is not None:
                regressed_kernels.append(name)
    base_sampling = baseline.get("sampling")
    if base_sampling:
        check(
            "sampling",
            base_sampling["seconds"],
            fresh["sampling"]["seconds"],
        )
    hdrf = fresh.get("hdrf_vs_reference", {})
    if not hdrf.get("identical", False):
        regressions.append(
            "hdrf_vs_reference: vectorised and reference assignments differ"
        )
    overhead = fresh.get("obs_overhead")
    if overhead:
        plain = overhead["plain_seconds"]
        delta = overhead["off_seconds"] - plain
        budget = max(
            OBS_OFF_MAX_OVERHEAD * plain, OBS_OFF_ABS_FLOOR_SECONDS
        )
        if delta > budget:
            regressions.append(
                f"obs_overhead: disabled hooks cost "
                f"{delta:.4f}s over the {plain:.4f}s plain run "
                f"({delta / plain * 100:.1f}% > "
                f"{OBS_OFF_MAX_OVERHEAD * 100:.0f}% budget)"
            )
    profiling = fresh.get("profiling_overhead")
    if profiling:
        plain = profiling["plain_seconds"]
        delta = profiling["off_seconds"] - plain
        budget = max(
            PROFILING_OFF_MAX_OVERHEAD * plain,
            PROFILING_OFF_ABS_FLOOR_SECONDS,
        )
        if delta > budget:
            regressions.append(
                f"profiling_overhead: disabled profile_scope hooks "
                f"cost {delta:.4f}s over the {plain:.4f}s plain run "
                f"({delta / plain * 100:.1f}% > "
                f"{PROFILING_OFF_MAX_OVERHEAD * 100:.0f}% budget)"
            )
    # Gated on the fresh run only, so committed baselines that predate
    # the comm_codecs section still gate cleanly.
    codecs = fresh.get("comm_codecs")
    if codecs:
        base = codecs["seconds"]["none"]
        budget = max(
            COMM_CODEC_MAX_OVERHEAD * base, COMM_CODEC_ABS_FLOOR_SECONDS
        )
        for name, seconds in sorted(codecs["seconds"].items()):
            if name == "none":
                continue
            delta = seconds - base
            if delta > budget:
                regressions.append(
                    f"comm_codecs/{name}: codec bookkeeping costs "
                    f"{delta:.4f}s over the {base:.4f}s null-codec run "
                    f"({delta / base * 100:.1f}% > "
                    f"{COMM_CODEC_MAX_OVERHEAD * 100:.0f}% budget)"
                )
    return regressions


def print_hotspot_diffs(baseline: dict, regressed_kernels: list) -> None:
    """Function-level triage for kernels that tripped the gate.

    Captures a fresh profile of each regressed kernel and diffs it
    against the baseline's embedded ``profiles`` section (written by
    ``bench_perf.py --profile``); a baseline without profiles still
    gets a fresh hotspot table, so the failure is never opaque.
    """
    if not regressed_kernels:
        return
    from bench_perf import profile_kernel

    from repro.obs.profiling import Profile, profile_diff, render_diff

    base_profiles = baseline.get("profiles") or {}
    for kernel in regressed_kernels[:MAX_HOTSPOT_DIFFS]:
        try:
            fresh_profile = profile_kernel(kernel)
        except Exception as error:  # noqa: BLE001 - triage must not mask
            print(f"\ncould not profile {kernel}: {error}")
            continue
        section = base_profiles.get(kernel)
        if section:
            diff = profile_diff(
                Profile.from_dict(section), fresh_profile
            )
            print(f"\nhotspot diff for {kernel} (baseline -> fresh):")
            print(render_diff(diff))
        else:
            print(
                f"\nno baseline profile for {kernel} (rerun "
                f"bench_perf.py --profile); fresh hotspots:"
            )
            print(fresh_profile.top_table(10))
    rest = len(regressed_kernels) - MAX_HOTSPOT_DIFFS
    if rest > 0:
        print(f"\n({rest} more regressed kernels not profiled)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=os.path.join(_REPO_ROOT, "BENCH_partitioning.json"),
    )
    parser.add_argument("--threshold", type=float, default=2.0)
    args = parser.parse_args(argv)

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run scripts/bench_perf.py")
        return 1
    baseline = latest_report(load_series(args.baseline))
    if not baseline:
        print(f"{args.baseline}: empty history series; nothing to gate on")
        return 1

    fresh = run_bench(
        repeats=1, scale_sweep_algos=SCALE_SWEEP_QUICK_ALGOS
    )
    regressed_kernels: list = []
    regressions = compare(
        baseline, fresh, args.threshold,
        regressed_kernels=regressed_kernels,
    )
    regressions += check_scale_sweep(fresh, "fresh")
    regressions += check_scale_sweep(baseline, "baseline")

    skipped = skipped_sections(baseline, fresh)
    if skipped:
        print("skipped series (no data to gate):")
        for line in skipped:
            print(f"  {line}")
    if not baseline.get("kernels"):
        print("nothing was gated: baseline has no kernel timings")
        return 1

    if regressions:
        print("perf regressions detected:")
        for line in regressions:
            print(f"  {line}")
        print_hotspot_diffs(baseline, regressed_kernels)
        return 1
    print(
        f"perf gate passed: {len(baseline.get('kernels', {}))} kernels "
        f"within {args.threshold:.1f}x of baseline; out-of-core peak "
        f"memory sublinear across the scale sweep"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
