"""Perf regression gate.

Runs a fresh (quick) ``bench_perf`` pass and compares every kernel
timing against the *latest entry* of the committed
``BENCH_partitioning.json`` history series (falling back to the
retained ``baseline`` report when the history is empty; legacy flat
schema-1 files still work). Fails (exit code 1) when any kernel is
more than ``--threshold`` times slower — the default 2x tolerates
machine-to-machine variance while catching real regressions.

Opt-in from pytest via the ``perf`` marker::

    PYTHONPATH=src python -m pytest -m perf tests/test_perf_gate.py

Usage::

    python scripts/check_perf.py [--baseline FILE] [--threshold 2.0]
"""

from __future__ import annotations

import argparse
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_perf import latest_report, load_series, run_bench  # noqa: E402


#: Kernels faster than this are dominated by call overhead and timer
#: noise; the ratio test is applied against at least this much time.
MIN_GATED_SECONDS = 0.01

#: Disabled-hook budget: running with ``--obs-level off`` (the default)
#: may cost at most this fraction over a hook-free build.
OBS_OFF_MAX_OVERHEAD = 0.03
#: ...unless the absolute delta is below this floor, where the timer
#: cannot resolve the difference anyway.
OBS_OFF_ABS_FLOOR_SECONDS = 0.01


def compare(
    baseline: dict,
    fresh: dict,
    threshold: float,
    floor: float = MIN_GATED_SECONDS,
) -> list:
    """Return a list of human-readable regression descriptions."""
    regressions = []

    def check(name: str, old: float, new: float) -> None:
        if new > threshold * max(old, floor):
            regressions.append(
                f"{name}: {old:.4f}s -> {new:.4f}s "
                f"({new / old:.1f}x > {threshold:.1f}x threshold)"
            )

    for name, entry in baseline.get("kernels", {}).items():
        fresh_entry = fresh["kernels"].get(name)
        if fresh_entry is None:
            regressions.append(f"{name}: kernel missing from fresh run")
            continue
        check(name, entry["seconds"], fresh_entry["seconds"])
    base_sampling = baseline.get("sampling")
    if base_sampling:
        check(
            "sampling",
            base_sampling["seconds"],
            fresh["sampling"]["seconds"],
        )
    hdrf = fresh.get("hdrf_vs_reference", {})
    if not hdrf.get("identical", False):
        regressions.append(
            "hdrf_vs_reference: vectorised and reference assignments differ"
        )
    overhead = fresh.get("obs_overhead")
    if overhead:
        plain = overhead["plain_seconds"]
        delta = overhead["off_seconds"] - plain
        budget = max(
            OBS_OFF_MAX_OVERHEAD * plain, OBS_OFF_ABS_FLOOR_SECONDS
        )
        if delta > budget:
            regressions.append(
                f"obs_overhead: disabled hooks cost "
                f"{delta:.4f}s over the {plain:.4f}s plain run "
                f"({delta / plain * 100:.1f}% > "
                f"{OBS_OFF_MAX_OVERHEAD * 100:.0f}% budget)"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=os.path.join(_REPO_ROOT, "BENCH_partitioning.json"),
    )
    parser.add_argument("--threshold", type=float, default=2.0)
    args = parser.parse_args(argv)

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run scripts/bench_perf.py")
        return 1
    baseline = latest_report(load_series(args.baseline))
    if not baseline:
        print(f"{args.baseline}: empty history series; nothing to gate on")
        return 1

    fresh = run_bench(repeats=1)
    regressions = compare(baseline, fresh, args.threshold)
    if regressions:
        print("perf regressions detected:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(
        f"perf gate passed: {len(baseline.get('kernels', {}))} kernels "
        f"within {args.threshold:.1f}x of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
