"""Comm-axis smoke for CI (docs/communication.md).

Runs a tiny codecs x refresh-interval sweep through
``run_full_sweep.py`` and fails (exit 1) unless the exported records
show what the compression model promises:

1. within every grid cell, wire traffic shrinks strictly monotonically
   along the codec ladder (none > fp16 > int8 > topk);
2. the bookkeeping balances — ``network_bytes + traffic_saved_bytes``
   is the same raw volume for every codec of a cell (per-epoch means);
3. the baseline codec saves nothing and reports zero accuracy-proxy
   error, every real codec reports both;
4. DistGNN's ``refresh_interval=2`` cells move strictly less than
   their r=1 counterparts (stale epochs skip halo syncs).

Usage::

    PYTHONPATH=src python scripts/check_comm.py [--out DIR]
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path

CODEC_LADDER = ("none", "fp16", "int8", "topk")


def run_sweep(out_dir: Path) -> None:
    command = [
        sys.executable, "scripts/run_full_sweep.py", "--quick",
        "--graphs", "OR", "--machines", "2", "--scale", "tiny",
        "--epochs", "2", "--compression", ",".join(CODEC_LADDER),
        "--refresh-interval", "1,2", "--out", str(out_dir),
    ]
    subprocess.run(command, check=True)


def cell_key(record) -> tuple:
    comm = record.comm_config
    return (
        record.partitioner, record.num_machines, record.params.label(),
        comm.refresh_interval if comm else 1,
    )


def check_records(path: Path, check_refresh: bool) -> int:
    from repro.experiments import load_records

    records = load_records(path)
    cells: dict = {}
    for record in records:
        comm = record.comm_config
        codec = comm.compression if comm else "none"
        cells.setdefault(cell_key(record), {})[codec] = record

    failures = 0
    for key, by_codec in sorted(cells.items()):
        wire = [by_codec[name].network_bytes for name in CODEC_LADDER]
        if not all(a > b for a, b in zip(wire, wire[1:])):
            print(f"FAIL {path.name} {key}: wire not monotone {wire}")
            failures += 1
        raw = [
            by_codec[name].network_bytes
            + by_codec[name].traffic_saved_bytes
            for name in CODEC_LADDER
        ]
        if max(raw) - min(raw) > 1e-6 * max(raw):
            print(f"FAIL {path.name} {key}: raw volume drifts {raw}")
            failures += 1
        base = by_codec["none"]
        if base.traffic_saved_bytes > 0 and key[3] == 1:
            print(f"FAIL {path.name} {key}: baseline saved bytes")
            failures += 1
        for name in CODEC_LADDER[1:]:
            record = by_codec[name]
            if record.traffic_saved_bytes <= 0:
                print(f"FAIL {path.name} {key} {name}: nothing saved")
                failures += 1
            if record.accuracy_proxy_error <= 0:
                print(f"FAIL {path.name} {key} {name}: zero error")
                failures += 1

    if check_refresh:
        for key, by_codec in sorted(cells.items()):
            if key[3] != 2:
                continue
            fresh = cells[key[:3] + (1,)]
            for name, record in by_codec.items():
                if record.network_bytes >= fresh[name].network_bytes:
                    print(
                        f"FAIL {path.name} {key} {name}: r=2 moved "
                        "no less than r=1"
                    )
                    failures += 1

    print(
        f"{path.name}: {len(cells)} cells x {len(CODEC_LADDER)} codecs "
        f"checked, {failures} failure(s)"
    )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=None,
        help="sweep output dir (default: a fresh temp dir)",
    )
    args = parser.parse_args()

    if args.out is None:
        scratch = tempfile.TemporaryDirectory(prefix="comm-smoke-")
        out_dir = Path(scratch.name)
    else:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)

    run_sweep(out_dir)
    failures = check_records(out_dir / "sweep_distgnn.json", True)
    failures += check_records(out_dir / "sweep_distdgl.json", False)
    if failures:
        print(f"comm smoke FAILED with {failures} failure(s)")
        return 1
    print("comm smoke ok: monotone traffic reduction, balanced books")
    return 0


if __name__ == "__main__":
    sys.exit(main())
