"""Fail when public API in ``src/repro`` lacks docstrings.

Walks every module under ``src/repro`` with :mod:`ast` and reports:

- modules without a module docstring,
- public classes (name not starting with ``_``) without a class
  docstring,
- public functions and methods without a docstring.

Nested functions and anything whose name starts with an underscore are
exempt. CI runs this as part of the docs job; run it locally with::

    python scripts/check_docstrings.py

Exit status is the number of offenders (0 = clean), capped at 1 for
shell friendliness.
"""

from __future__ import annotations

import ast
import os
import sys

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src",
    "repro",
)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_body(body, qualifier, relpath, problems) -> None:
    """Collect undocumented public defs in a module or class body."""
    for node in body:
        if isinstance(node, _FUNCTION_NODES):
            if _is_public(node.name) and ast.get_docstring(node) is None:
                problems.append(
                    f"{relpath}:{node.lineno}: public function "
                    f"{qualifier}{node.name}() has no docstring"
                )
        elif isinstance(node, ast.ClassDef):
            if _is_public(node.name):
                if ast.get_docstring(node) is None:
                    problems.append(
                        f"{relpath}:{node.lineno}: public class "
                        f"{qualifier}{node.name} has no docstring"
                    )
                _check_body(
                    node.body, f"{qualifier}{node.name}.", relpath, problems
                )


def check_file(path: str, root: str) -> list:
    """Return the list of docstring problems in one source file."""
    relpath = os.path.relpath(path, os.path.dirname(root))
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{relpath}:1: module has no docstring")
    _check_body(tree.body, "", relpath, problems)
    return problems


def main(argv=None) -> int:
    root = argv[0] if argv else SRC_ROOT
    problems = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                problems.extend(
                    check_file(os.path.join(dirpath, filename), root)
                )
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} undocumented public definitions",
              file=sys.stderr)
        return 1
    print("all public definitions are documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
