"""Regenerate EXPERIMENTS.md from benchmark results + live measurements.

Run after ``pytest benchmarks/ --benchmark-only`` (which populates
``benchmarks/results/``)::

    python scripts/build_experiments_report.py

The report has three parts: a headline paper-vs-measured table computed
live (cheap, partition-cache backed), the per-artifact reproduction index
with embedded measured series, and the documented deviations.
"""

from __future__ import annotations

import os
import sys

from repro.distgnn import DistGnnEngine
from repro.experiments import (
    TrainingParams,
    cached_edge_partition,
    run_distdgl,
    run_distgnn,
)
from repro.experiments.paper_reference import (
    DISTDGL_HIDDEN_DIM_SPEEDUPS,
    DISTGNN_OR_MEAN_SPEEDUPS,
    DISTGNN_RF_PCT_OF_RANDOM,
    REPLICATION_FACTOR_OR_32,
    TABLE_4_AMORTIZATION,
)
from repro.graph import load_dataset, random_split
from repro.partitioning import replication_factor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")

ARTIFACTS = [
    ("Figure 2", "fig02_OR", "RF per partitioner/k: HEP100 lowest, Random highest, RF grows with k", "reproduced"),
    ("Figure 3", "fig03", "RF vs traffic: R^2 >= 0.98 (ours >= 0.95 asserted, ~1.0 measured)", "reproduced"),
    ("Figure 4", "fig04_OR", "2PS-L/HEP vertex-imbalanced (1.18-2.44); Random/DBH/HDRF balanced", "reproduced"),
    ("Figure 5", "fig05", "memory-utilization balance tracks vertex balance", "reproduced"),
    ("Figure 6", "fig06_OR", "streaming time flat in k; HDRF grows (O(k) scoring); hybrid slowest", "reproduced"),
    ("Figure 7", "fig07", "DistGNN speedups: HEP >> streaming, grow with k, parameter-insensitive", "reproduced (magnitudes compressed, see Deviations)"),
    ("Figure 8", "fig08", "lower RF -> higher speedup; 2PS-L's vertex imbalance costs it", "reproduced"),
    ("Figure 9", "fig09", "memory in % of Random: HEP strongest; spread across parameters; RF~memory R^2 >= 0.99", "reproduced"),
    ("Figure 10", "fig10a", "memory effectiveness rises with feature size and hidden dim; layers matter iff hidden >> features", "reproduced"),
    ("Figure 11", "fig11a", "DistGNN effectiveness rises with scale-out (speedup, memory, RF%)", "reproduced"),
    ("Table 4", "tab04", "amortization within a few epochs; DBH fastest", "reproduced"),
    ("Figure 12", "fig12_OR", "edge-cut: KaHIP/METIS lowest, Random highest, DI far below power-law graphs", "reproduced"),
    ("Figure 13", "fig13", "training-vertex balance near 1 for random split (ByteGNN by design)", "reproduced"),
    ("Figure 14", "fig14_OR", "mini-batch input-vertex imbalance, growing with k", "reproduced"),
    ("Figure 15", "fig15_OR", "KaHIP by far the slowest partitioner; streaming orders faster", "reproduced"),
    ("Figure 16", "fig16", "DistDGL speedups moderate (<3.5), KaHIP/METIS lead, visible parameter spread", "reproduced"),
    ("Figure 17", "fig17", "per-worker training-time imbalance for every partitioner", "reproduced (smaller magnitude)"),
    ("Figure 18", "fig18_4machines", "speedup grows with feature size", "reproduced"),
    ("Figure 19", "fig19_EU", "fetch grows with feature size and dominates at 512; DI sampling-bound", "reproduced (DI at fs=512: fetch comparable, see Deviations)"),
    ("Figure 20", "fig20_4machines", "speedup falls as hidden dimension grows", "reproduced"),
    ("Figure 21", "fig21_metis", "all phases grow with layers; gains concentrate in sample+fetch", "reproduced"),
    ("Figure 22", "fig22", "hidden dim raises compute only; data phases flat", "reproduced"),
    ("Figure 23", "fig23_4machines", "layer count barely moves effectiveness", "reproduced"),
    ("Figure 24", "fig24a", "scale-out erodes DistDGL effectiveness (except DI); relative metrics degrade", "reproduced"),
    ("Figure 25", "fig25_sage", "fetch scales down sharply with machines; GAT heavier than SAGE", "reproduced"),
    ("Table 5", "tab05", "KaHIP amortizes orders slower than METIS; LDG near-instant", "reproduced"),
    ("Figure 26", "fig26a", "bigger batches -> relatively less traffic/remote vertices; speedup up at fs=512", "reproduced (sweep truncated at paper-8192, see Deviations)"),
    ("Ablation: comm model", "ablation_comm_model", "bisection vs per-port fabric; HEP's RF advantage needs overlap", "extension"),
    ("Ablation: HEP refinement", "ablation_hep_refinement", "in-memory refinement lowers RF, never hurts", "extension"),
    ("Ablation: KaHIP effort", "ablation_kahip_effort", "repetitions: cut never worse, time grows", "extension"),
    ("Ablation: extensions", "ablation_extensions_cut", "Fennel/reLDG/NE vs the studied set", "extension"),
    ("Ablation: OOM on DI", "ablation_oom", "Random OOMs where HEP fits (paper Section 4.3)", "extension"),
    ("Ablation: bandwidth", "ablation_bandwidth", "slower network -> partitioning matters more", "extension"),
    ("Ablation: ByteGNN hops", "ablation_bytegnn_hops", "block depth moves locality", "extension"),
    ("Ablation: architectures", "ablation_architectures", "GAT's compute dilutes the partitioner gain", "extension"),
    ("Ablation: feature cache", "ablation_feature_cache", "degree cache cuts traffic, narrows partitioner gap", "extension"),
    ("Scale robustness", "scale_robustness", "headline orderings hold at 3x graph scale", "extension"),
]


def headline_rows():
    or_graph = load_dataset("OR", "small")
    split = random_split(or_graph, seed=7)
    rows = []

    rf_random = replication_factor(
        cached_edge_partition(or_graph, "random", 32)[0]
    )
    rf_hep = replication_factor(
        cached_edge_partition(or_graph, "hep100", 32)[0]
    )
    rows.append((
        "RF on OR @ 32 partitions (HEP100 / Random)",
        f"{REPLICATION_FACTOR_OR_32['hep100']} / "
        f"{REPLICATION_FACTOR_OR_32['random']}",
        f"{rf_hep:.2f} / {rf_random:.2f}",
    ))
    rows.append((
        "RF as % of Random @ 32 (HEP100)",
        f"{DISTGNN_RF_PCT_OF_RANDOM['hep100'][1]:.0f}%",
        f"{100 * rf_hep / rf_random:.0f}%",
    ))

    params = TrainingParams(feature_size=64, hidden_dim=64, num_layers=3)
    base = run_distgnn(or_graph, "random", 16, params)
    for name in ("hdrf", "hep100"):
        record = run_distgnn(or_graph, name, 16, params)
        rows.append((
            f"DistGNN speedup on OR @ 16 machines ({name})",
            f"{DISTGNN_OR_MEAN_SPEEDUPS[(name, 16)]:.2f}x",
            f"{base.epoch_seconds / record.epoch_seconds:.2f}x",
        ))

    hep_partition, _ = cached_edge_partition(or_graph, "hep100", 16)
    rnd_partition, _ = cached_edge_partition(or_graph, "random", 16)
    mem_hep = DistGnnEngine(hep_partition, 64, 64, 3).total_memory()
    mem_rnd = DistGnnEngine(rnd_partition, 64, 64, 3).total_memory()
    rows.append((
        "DistGNN memory saved by HEP100 on OR @ 16",
        "60%",
        f"{100 * (1 - mem_hep / mem_rnd):.0f}%",
    ))

    amort = TABLE_4_AMORTIZATION["OR"]["dbh"]
    rows.append((
        "Table 4 ordering: DBH amortizes fastest on OR",
        f"{amort:.2f} epochs (fastest)",
        "fastest (see tab04 artifact)",
    ))

    for hd, paper in zip((16, 512), DISTDGL_HIDDEN_DIM_SPEEDUPS["kahip"]):
        p = TrainingParams(
            feature_size=64, hidden_dim=hd, num_layers=3,
            global_batch_size=64,
        )
        mine = run_distdgl(or_graph, "kahip", 4, p, split=split)
        base_d = run_distdgl(or_graph, "random", 4, p, split=split)
        rows.append((
            f"DistDGL KaHIP speedup @ hidden={hd} (4 machines)",
            f"{paper:.2f}x",
            f"{base_d.epoch_seconds / mine.epoch_seconds:.2f}x",
        ))
    return rows


def main() -> int:
    if not os.path.isdir(RESULTS_DIR):
        print("run `pytest benchmarks/ --benchmark-only` first",
              file=sys.stderr)
        return 1

    lines = []
    lines.append("# EXPERIMENTS — paper vs measured\n")
    lines.append(
        "Regenerate with `pytest benchmarks/ --benchmark-only` followed by\n"
        "`python scripts/build_experiments_report.py`. Paper values are the\n"
        "authors' 32-machine/real-graph measurements; ours come from the\n"
        "scaled-down simulation (see DESIGN.md) — orderings and trends are\n"
        "the comparison targets, not absolute magnitudes.\n"
    )

    lines.append("\n## Headline comparison\n")
    lines.append("| quantity | paper | measured |")
    lines.append("|---|---|---|")
    for name, paper, measured in headline_rows():
        lines.append(f"| {name} | {paper} | {measured} |")

    lines.append("\n## Per-artifact reproduction index\n")
    lines.append("| artifact | expected shape | status |")
    lines.append("|---|---|---|")
    for artifact, _key, shape, status in ARTIFACTS:
        lines.append(f"| {artifact} | {shape} | {status} |")

    lines.append("\n## Measured series (from benchmarks/results/)\n")
    for artifact, key, _shape, _status in ARTIFACTS:
        path = os.path.join(RESULTS_DIR, f"{key}.txt")
        if not os.path.exists(path):
            lines.append(f"### {artifact}\n\n*(missing: run the benchmark)*\n")
            continue
        with open(path) as handle:
            body = handle.read().strip()
        lines.append(f"### {artifact} (`{key}`)\n")
        lines.append("```")
        lines.append(body)
        lines.append("```\n")

    lines.append("\n## Documented deviations\n")
    lines.append(
        "- **Magnitudes are compressed.** Our graphs are ~10^3 smaller, so\n"
        "  quality gaps between partitioners (and hence speedups) are\n"
        "  smaller than the paper's 10.4x/3.5x maxima; every *ordering* and\n"
        "  *trend* asserted by the benchmarks holds.\n"
        "- **DI edge-cut is ~0.04-0.10, not <0.001**: a 90x90 lattice has\n"
        "  proportionally more boundary than a 24M-vertex road network. At\n"
        "  feature size 512 this lets DI's fetch phase catch up with\n"
        "  sampling (Figure 19b holds for feature sizes <= 64).\n"
        "- **Figure 26 sweeps paper batch sizes 512-8192** (scaled /64);\n"
        "  larger scaled batches would cover most of our 400-vertex\n"
        "  training set, a saturation regime the paper never enters.\n"
        "- **2PS-L on EU does not slow down** (paper: 0.92x): its vertex\n"
        "  imbalance on our EU stand-in (~1.5) is milder than on the real\n"
        "  Eu-2015-tpd; the imbalance -> lower-speedup mechanism is still\n"
        "  visible (Figures 4/8).\n"
        "- **Partitioning times** are measured wall seconds of our Python\n"
        "  implementations; `CostModel.partitioning_time_scale` maps them\n"
        "  onto the simulated axis (amortization *rankings* are\n"
        "  scale-free).\n"
    )

    output = os.path.join(REPO_ROOT, "EXPERIMENTS.md")
    with open(output, "w") as handle:
        handle.write("\n".join(lines))
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
