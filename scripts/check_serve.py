"""Headless smoke for the ``repro serve`` daemon (the CI serve job).

Boots a real daemon as a subprocess, drives it purely over HTTP, and
fails (exit 1) unless the whole lifecycle is clean:

1. start ``repro serve`` on a free port with a fresh data dir;
2. submit a tiny two-cell job (``POST /jobs``) and poll it to
   completion;
3. fetch the records and verify they match a serial in-process run of
   the same grid byte-for-byte;
4. resubmit the identical spec as a second tenant and verify it is
   served entirely from the dedup cache (no fresh compute);
5. run ``repro obs watch --once`` over the job's bus directory —
   the replayed streams must parse and show the completed sweep;
6. scrape ``GET /metrics`` + ``GET /healthz`` (the daemon runs with
   ``--obs-level metrics``) and reconcile the exposed counters with
   the scheduler's own queue accounting;
7. ``POST /profile?seconds=0.2`` — the thread sampler must return a
   ``mode="sample"`` profile and ``/healthz`` must report the
   profiler idle again with its sample accounting intact;
8. render one ``repro obs top --once`` frame against the live daemon;
9. ``POST /shutdown`` and verify the daemon exits cleanly (no orphan
   workers, bus streams flushed and closed on disk).

Usage::

    PYTHONPATH=src python scripts/check_serve.py
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import time

from repro.costmodel import DEFAULT_COST_MODEL
from repro.experiments import (
    TrainingParams,
    records_to_json,
    run_distgnn_grid,
)
from repro.graph import load_dataset
from repro.obs.serve_metrics import parse_prometheus_totals
from repro.serve import ServeClient

SPEC = {
    "engine": "distgnn",
    "graph": "OR",
    "partitioners": ["random", "hep100"],
    "machines": [2],
    "params": [{"num_layers": 2}],
    "scale": "tiny",
    "tenant": "smoke",
}


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _fail(message: str) -> "NoReturn":  # noqa: F821 (doc type)
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> int:
    """Run the smoke; exit non-zero on the first broken contract."""
    port = _free_port()
    data_dir = tempfile.mkdtemp(prefix="serve-smoke-")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port), "--workers", "1",
            "--data-dir", data_dir, "--obs-level", "metrics",
        ],
        env=env,
    )
    client = ServeClient(f"http://127.0.0.1:{port}", timeout=10.0)
    try:
        for _ in range(100):
            try:
                client.healthz()
                break
            except OSError:
                if daemon.poll() is not None:
                    _fail("daemon exited before becoming healthy")
                time.sleep(0.1)
        else:
            _fail("daemon never became healthy")

        job = client.submit(SPEC)
        print(f"submitted {job['id']} ({job['cells_total']} cells)")
        done = client.wait(job["id"], timeout=300)
        if done["state"] != "done":
            _fail(f"job ended {done['state']!r}: {done.get('error')}")

        served = client.job(job["id"], records=True)["records"]
        graph = load_dataset("OR", "tiny", seed=0)
        serial = run_distgnn_grid(
            graph, ["random", "hep100"], [2],
            [TrainingParams(num_layers=2)], 0, DEFAULT_COST_MODEL,
            num_epochs=1,
        )
        # ``partitioning_seconds`` is the one *measured* wall-clock
        # field in a record; the daemon and this script run in
        # different processes (separate partition caches), so it is
        # normalised out here. Every simulated quantity must still be
        # byte-identical (the in-repo tests assert full identity
        # within one process, where the shared cache covers it too).
        def _normalised(payload):
            entries = []
            for entry in payload:
                data = dict(entry["data"])
                data["partitioning_seconds"] = 0.0
                entries.append({"kind": entry["kind"], "data": data})
            return json.dumps(entries, sort_keys=True)

        if _normalised(served) != _normalised(
            json.loads(records_to_json(serial))
        ):
            _fail("served records diverge from the serial grid")
        print(f"records match serial grid ({len(served)} records)")

        again = client.submit(dict(SPEC, tenant="smoke-2"))
        if again["state"] != "done":
            _fail(f"resubmission not cache-served: {again['state']}")
        if again["dedup_hits"] != again["cells_total"]:
            _fail(
                "resubmission recomputed cells: "
                f"{again['dedup_hits']}/{again['cells_total']} hits"
            )
        queue = client.queue()
        if queue["cells_computed_total"] != job["cells_total"]:
            _fail(
                "dedup accounting off: computed "
                f"{queue['cells_computed_total']} cells for "
                f"{2 * job['cells_total']} submitted"
            )
        print(
            f"dedup ok: {queue['dedup_hits_total']} hits, "
            f"{queue['cells_computed_total']} cells computed"
        )

        bus_dir = done["bus_dir"]
        watch = subprocess.run(
            [
                sys.executable, "-m", "repro", "obs", "watch",
                bus_dir, "--once", "--no-ansi",
            ],
            env=env, capture_output=True, text=True, timeout=120,
        )
        if watch.returncode != 0:
            _fail(f"obs watch failed:\n{watch.stdout}\n{watch.stderr}")
        if "[complete]" not in watch.stdout:
            _fail(f"obs watch does not show completion:\n{watch.stdout}")
        print("obs watch renders the completed job from its bus")

        totals = parse_prometheus_totals(client.metrics())
        queue = client.queue()
        checks = {
            "serve.cells_computed": queue["cells_computed_total"],
            "serve.dedup_hits": queue["dedup_hits_total"],
            "serve.cell_cache_size": queue["cached_cells"],
            "serve.jobs_admitted": 2,
            "serve.jobs_finished": 2,
            "serve.queue_depth_total": 0,
        }
        for name, expected in checks.items():
            if totals.get(name) != expected:
                _fail(
                    f"/metrics does not reconcile: {name} = "
                    f"{totals.get(name)}, scheduler says {expected}"
                )
        if totals.get("serve.admission_to_first_record_seconds", 0) <= 0:
            _fail("first-record latency never observed")
        health = client.healthz()
        if health.get("status") != "ok" or not health.get("started"):
            _fail(f"healthz not healthy: {health}")
        if health.get("scheduler_heartbeat_age_seconds") is None:
            _fail("healthz reports no scheduler heartbeat")
        print(
            "metrics reconcile: "
            f"{int(totals['serve.cells_computed'])} computed, "
            f"{int(totals['serve.dedup_hits'])} dedup hits, "
            f"{int(totals['serve.http_requests'])} http requests"
        )

        profile = client.profile(seconds=0.2)
        if profile.get("mode") != "sample":
            _fail(f"POST /profile returned mode {profile.get('mode')!r}")
        if float(profile.get("seconds", 0.0)) <= 0:
            _fail("POST /profile reports a zero-length capture window")
        health = client.healthz()
        profiler = health.get("profiler")
        if not isinstance(profiler, dict):
            _fail(f"healthz reports no profiler state: {health}")
        if profiler.get("sampling") is not False:
            _fail(f"profiler still sampling after capture: {profiler}")
        if int(profiler.get("samples_collected", -1)) < 0:
            _fail(f"profiler sample accounting missing: {profiler}")
        print(
            "POST /profile sampled the daemon "
            f"({int(profiler['samples_collected'])} samples collected)"
        )

        top = subprocess.run(
            [
                sys.executable, "-m", "repro", "obs", "top",
                client.base_url, "--once", "--no-ansi",
                "--rules", "examples/serve_rules.json",
            ],
            env=env, capture_output=True, text=True, timeout=120,
        )
        if top.returncode != 0:
            _fail(f"obs top failed:\n{top.stdout}\n{top.stderr}")
        if "serve: ok" not in top.stdout:
            _fail(f"obs top frame missing health line:\n{top.stdout}")
        print("obs top renders a live ops frame")

        client.shutdown()
        deadline = time.monotonic() + 60
        while daemon.poll() is None:
            if time.monotonic() > deadline:
                daemon.kill()
                _fail("daemon did not exit within 60s of /shutdown")
            time.sleep(0.1)
        if daemon.returncode != 0:
            _fail(f"daemon exited {daemon.returncode}")
        # Bus streams were flushed and closed: every line parses.
        for name in os.listdir(bus_dir):
            path = os.path.join(bus_dir, name)
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    json.loads(line)
        print("clean shutdown; bus streams fully flushed")
        print("serve smoke OK")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
